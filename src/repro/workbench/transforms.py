"""The declarative transform pipeline.

Characteristic 2 asks for a spectrum of transformation mechanisms: "simple
transformations ... specified using a simple drag-and-drop GUI, while more
complex ones could use a scripting language ... ultimately, one must be able
to construct general transformations in a conventional programming
language."  A :class:`Pipeline` is the engine under all three: its steps are
declarative objects (what a GUI would emit), :class:`MapColumn` and
:class:`AddColumn` accept arbitrary Python callables (the scripting level),
and :class:`ScriptStep` is the full-programming-language escape hatch.

Every step knows how to update the run's :class:`~repro.workbench.lineage.
Lineage`; only :class:`ScriptStep` can break row provenance, and only when
it changes the row count -- making the paper's ETL-versus-declarative
lineage argument directly measurable (E10).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Sequence

from repro.core.errors import TransformError
from repro.core.records import Row, Table
from repro.core.schema import DataType, Field, Schema
from repro.workbench.lineage import Lineage


class TransformStep(abc.ABC):
    """One declarative transformation over a table."""

    @abc.abstractmethod
    def apply(self, table: Table, lineage: Lineage) -> Table:
        """Return the transformed table, updating ``lineage`` in place."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One line shown in lineage explanations and GUIs."""


class RenameColumns(TransformStep):
    """Rename columns per an old -> new mapping."""

    def __init__(self, mapping: dict[str, str]) -> None:
        self.mapping = dict(mapping)

    def apply(self, table: Table, lineage: Lineage) -> Table:
        renamed = table.extended()
        renamed.schema = table.schema.rename_fields(self.mapping)
        for old, new in self.mapping.items():
            lineage.record_rename(old, new, self.describe())
        return renamed

    def describe(self) -> str:
        pairs = ", ".join(f"{o}->{n}" for o, n in sorted(self.mapping.items()))
        return f"rename({pairs})"


class ProjectColumns(TransformStep):
    """Keep only the named columns, in the given order."""

    def __init__(self, names: Sequence[str]) -> None:
        self.names = list(names)

    def apply(self, table: Table, lineage: Lineage) -> Table:
        dropped = tuple(n for n in table.schema.field_names if n not in self.names)
        lineage.record_drop(dropped)
        return table.project(self.names)

    def describe(self) -> str:
        return f"project({', '.join(self.names)})"


class DropColumns(TransformStep):
    """Remove the named columns."""

    def __init__(self, names: Sequence[str]) -> None:
        self.names = list(names)

    def apply(self, table: Table, lineage: Lineage) -> Table:
        keep = [n for n in table.schema.field_names if n not in set(self.names)]
        lineage.record_drop(tuple(self.names))
        return table.project(keep)

    def describe(self) -> str:
        return f"drop({', '.join(self.names)})"


_DEFAULT_CASTERS: dict[DataType, Callable[[Any], Any]] = {
    DataType.STRING: str,
    DataType.TEXT: str,
    DataType.INTEGER: lambda v: int(float(v)),
    DataType.FLOAT: float,
    DataType.TIMESTAMP: float,
    DataType.BOOLEAN: lambda v: str(v).lower() in ("true", "yes", "1"),
}


class CastColumn(TransformStep):
    """Cast one column to a data type, optionally with a custom converter.

    None passes through; conversion failures raise
    :class:`~repro.core.errors.TransformError` with the offending value.
    """

    def __init__(
        self,
        name: str,
        dtype: DataType,
        converter: Callable[[Any], Any] | None = None,
    ) -> None:
        self.name = name
        self.dtype = dtype
        self.converter = converter or _DEFAULT_CASTERS.get(dtype)
        if self.converter is None:
            raise TransformError(
                f"no default converter to {dtype.value}; pass one explicitly"
            )

    def apply(self, table: Table, lineage: Lineage) -> Table:
        index = table.schema.index_of(self.name)
        new_rows = []
        for row in table.rows:
            value = row[index]
            if value is not None:
                try:
                    value = self.converter(value)
                except Exception as error:
                    raise TransformError(
                        f"cannot cast {row[index]!r} in column {self.name!r} "
                        f"to {self.dtype.value}: {error}"
                    ) from error
            new_rows.append(row[:index] + (value,) + row[index + 1:])
        new_field = Field(self.name, self.dtype, nullable=True)
        fields = list(table.schema.fields)
        fields[index] = new_field
        result = Table(Schema(table.schema.name, tuple(fields)), validate=False)
        result.rows = new_rows
        lineage.record_derivation(self.name, (self.name,), self.describe())
        return result

    def describe(self) -> str:
        return f"cast({self.name} as {self.dtype.value})"


class MapColumn(TransformStep):
    """Apply a function to one column's values (None passes through)."""

    def __init__(
        self,
        name: str,
        fn: Callable[[Any], Any],
        description: str = "",
        dtype: DataType | None = None,
    ) -> None:
        self.name = name
        self.fn = fn
        self.description = description or f"map({name})"
        self.dtype = dtype

    def apply(self, table: Table, lineage: Lineage) -> Table:
        index = table.schema.index_of(self.name)
        new_rows = [
            row[:index]
            + ((self.fn(row[index]) if row[index] is not None else None),)
            + row[index + 1:]
            for row in table.rows
        ]
        fields = list(table.schema.fields)
        if self.dtype is not None:
            fields[index] = Field(self.name, self.dtype, nullable=True)
        result = Table(Schema(table.schema.name, tuple(fields)), validate=False)
        result.rows = new_rows
        lineage.record_derivation(self.name, (self.name,), self.describe())
        return result

    def describe(self) -> str:
        return self.description


class AddColumn(TransformStep):
    """Append a computed column (the function sees the whole row)."""

    def __init__(
        self,
        name: str,
        dtype: DataType,
        fn: Callable[[Row], Any],
        inputs: Sequence[str] = (),
        description: str = "",
    ) -> None:
        self.name = name
        self.dtype = dtype
        self.fn = fn
        self.inputs = tuple(inputs)
        self.description = description or f"add({name})"

    def apply(self, table: Table, lineage: Lineage) -> Table:
        schema = table.schema.extend([Field(self.name, self.dtype, nullable=True)])
        result = Table(schema, validate=False)
        result.rows = [
            row + (self.fn(Row(table.schema, row)),) for row in table.rows
        ]
        lineage.record_derivation(self.name, self.inputs, self.describe())
        return result

    def describe(self) -> str:
        return self.description


class SplitColumn(TransformStep):
    """Split one string column into several new columns."""

    def __init__(
        self,
        name: str,
        into: Sequence[str],
        splitter: "Callable[[str], Sequence[Any]] | str" = " ",
        drop_source: bool = True,
    ) -> None:
        self.name = name
        self.into = list(into)
        self.splitter = splitter
        self.drop_source = drop_source

    def _split(self, value: str) -> list[Any]:
        if callable(self.splitter):
            parts = list(self.splitter(value))
        else:
            parts = value.split(self.splitter)
        parts = parts[:len(self.into)]
        parts.extend([None] * (len(self.into) - len(parts)))
        return parts

    def apply(self, table: Table, lineage: Lineage) -> Table:
        index = table.schema.index_of(self.name)
        new_fields = [Field(n, DataType.STRING, nullable=True) for n in self.into]
        schema = table.schema.extend(new_fields)
        result = Table(schema, validate=False)
        result.rows = [
            row + tuple(self._split(row[index]) if row[index] is not None else [None] * len(self.into))
            for row in table.rows
        ]
        for new_name in self.into:
            lineage.record_derivation(new_name, (self.name,), self.describe())
        if self.drop_source:
            return DropColumns([self.name]).apply(result, lineage)
        return result

    def describe(self) -> str:
        return f"split({self.name} into {', '.join(self.into)})"


class MergeColumns(TransformStep):
    """Combine several columns into one new column."""

    def __init__(
        self,
        inputs: Sequence[str],
        output: str,
        joiner: "Callable[[Sequence[Any]], Any] | str" = " ",
        dtype: DataType = DataType.STRING,
        drop_inputs: bool = True,
    ) -> None:
        self.inputs = list(inputs)
        self.output = output
        self.joiner = joiner
        self.dtype = dtype
        self.drop_inputs = drop_inputs

    def _join(self, values: Sequence[Any]) -> Any:
        if callable(self.joiner):
            return self.joiner(values)
        return self.joiner.join("" if v is None else str(v) for v in values)

    def apply(self, table: Table, lineage: Lineage) -> Table:
        indexes = [table.schema.index_of(n) for n in self.inputs]
        schema = table.schema.extend([Field(self.output, self.dtype, nullable=True)])
        result = Table(schema, validate=False)
        result.rows = [
            row + (self._join([row[i] for i in indexes]),) for row in table.rows
        ]
        lineage.record_derivation(self.output, tuple(self.inputs), self.describe())
        if self.drop_inputs:
            return DropColumns(self.inputs).apply(result, lineage)
        return result

    def describe(self) -> str:
        return f"merge({', '.join(self.inputs)} into {self.output})"


class FilterRows(TransformStep):
    """Keep only rows satisfying a predicate."""

    def __init__(self, predicate: Callable[[Row], bool], description: str = "") -> None:
        self.predicate = predicate
        self.description = description or "filter(rows)"

    def apply(self, table: Table, lineage: Lineage) -> Table:
        kept_indices = [
            i
            for i, values in enumerate(table.rows)
            if self.predicate(Row(table.schema, values))
        ]
        result = Table(table.schema, validate=False)
        result.rows = [table.rows[i] for i in kept_indices]
        lineage.record_filter(kept_indices, self.describe())
        return result

    def describe(self) -> str:
        return self.description


class ScriptStep(TransformStep):
    """The escape hatch: an arbitrary table-to-table function.

    Column lineage is annotated with the script name on every column; if the
    script changes the row count, row provenance cannot be maintained and
    the lineage is marked broken -- exactly the property that distinguishes
    a pile of ETL code from declarative transforms (§3.2 C5).
    """

    def __init__(self, fn: Callable[[Table], Table], description: str = "script") -> None:
        self.fn = fn
        self.description = description

    def apply(self, table: Table, lineage: Lineage) -> Table:
        result = self.fn(table)
        if not isinstance(result, Table):
            raise TransformError(
                f"script step {self.description!r} must return a Table"
            )
        before_columns = set(table.schema.field_names)
        after_columns = set(result.schema.field_names)
        lineage.record_drop(tuple(before_columns - after_columns))
        for name in sorted(after_columns):
            if name in before_columns:
                lineage.record_derivation(name, (name,), self.describe())
            else:
                lineage.record_derivation(name, (), self.describe())
        if len(result) != len(table):
            lineage.mark_broken(self.description)
        return result

    def describe(self) -> str:
        return f"script({self.description})"


class TransformResult:
    """A pipeline run's output table plus its lineage."""

    def __init__(self, table: Table, lineage: Lineage) -> None:
        self.table = table
        self.lineage = lineage


class Pipeline:
    """An ordered list of transform steps applied as one unit."""

    def __init__(self, name: str, steps: Sequence[TransformStep] = ()) -> None:
        self.name = name
        self.steps: list[TransformStep] = list(steps)

    def add(self, step: TransformStep) -> "Pipeline":
        self.steps.append(step)
        return self

    def run(self, table: Table, source_name: str | None = None) -> TransformResult:
        """Apply every step, threading lineage through."""
        lineage = Lineage(
            source_name or table.schema.name, len(table), table.schema.field_names
        )
        current = table
        for step in self.steps:
            current = step.apply(current, lineage)
        return TransformResult(current, lineage)

    def describe(self) -> list[str]:
        return [step.describe() for step in self.steps]

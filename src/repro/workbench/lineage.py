"""Data lineage through transform pipelines.

The paper's sharpest criticism of warehouse ETL (§3.2 C5): "the ETL tools
gave up on data independence, leading to nasty problems of data lineage
through arbitrary code."  The workbench keeps lineage as a first-class
artifact: every :class:`~repro.workbench.transforms.Pipeline` run produces a
:class:`Lineage` that can answer, for any cell of the output,

* *which source row produced this row* (:meth:`Lineage.origin_of`), and
* *through which transformations did this column pass*
  (:meth:`Lineage.explain`).

Opaque script steps that change the row count mark the lineage *broken* --
the honest answer an imperative ETL job gives -- which is precisely the
contrast experiment E10 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RowOrigin:
    """Where one output row came from."""

    source: str
    row_index: int


@dataclass
class ColumnTrace:
    """The derivation chain of one output column, newest step last."""

    source_columns: tuple[str, ...]
    steps: list[str] = field(default_factory=list)


class Lineage:
    """Provenance for one pipeline run."""

    def __init__(self, source_name: str, row_count: int, columns: tuple[str, ...]) -> None:
        self.source_name = source_name
        self.row_origins: list[RowOrigin] = [
            RowOrigin(source_name, i) for i in range(row_count)
        ]
        self.columns: dict[str, ColumnTrace] = {
            name: ColumnTrace((name,)) for name in columns
        }
        self.broken = False
        self.break_reason = ""

    # -- queries -------------------------------------------------------------

    def origin_of(self, row_index: int) -> RowOrigin:
        """The source row behind output row ``row_index``."""
        if self.broken:
            raise LookupError(
                f"lineage was broken by {self.break_reason!r}; "
                "row provenance is unavailable"
            )
        return self.row_origins[row_index]

    def explain(self, column: str) -> list[str]:
        """Human-readable derivation of ``column``, source first."""
        if column not in self.columns:
            raise LookupError(f"no lineage for column {column!r}")
        trace = self.columns[column]
        sources = ", ".join(trace.source_columns) or "(constant)"
        lines = [f"source {self.source_name}({sources})"]
        lines.extend(trace.steps)
        return lines

    def source_columns_of(self, column: str) -> tuple[str, ...]:
        """The original source columns feeding ``column``."""
        if column not in self.columns:
            raise LookupError(f"no lineage for column {column!r}")
        return self.columns[column].source_columns

    # -- mutation hooks used by transform steps ---------------------------------

    def record_rename(self, old: str, new: str, description: str) -> None:
        trace = self.columns.pop(old)
        trace.steps.append(description)
        self.columns[new] = trace

    def record_derivation(
        self, output: str, inputs: tuple[str, ...], description: str
    ) -> None:
        """Column ``output`` now derives from ``inputs`` via a step."""
        source_columns: list[str] = []
        steps: list[str] = []
        for name in inputs:
            trace = self.columns.get(name)
            if trace is None:
                continue
            for source_column in trace.source_columns:
                if source_column not in source_columns:
                    source_columns.append(source_column)
            for step in trace.steps:
                if step not in steps:
                    steps.append(step)
        steps.append(description)
        self.columns[output] = ColumnTrace(tuple(source_columns), steps)

    def record_drop(self, names: tuple[str, ...]) -> None:
        for name in names:
            self.columns.pop(name, None)

    def record_filter(self, kept_indices: list[int], description: str) -> None:
        self.row_origins = [self.row_origins[i] for i in kept_indices]
        for trace in self.columns.values():
            trace.steps.append(description)

    def record_step_on_all(self, description: str) -> None:
        for trace in self.columns.values():
            trace.steps.append(description)

    def mark_broken(self, reason: str) -> None:
        """An opaque step destroyed row-level provenance (the ETL failure)."""
        self.broken = True
        self.break_reason = reason
        self.row_origins = []

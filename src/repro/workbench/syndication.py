"""Custom syndication: buyer-dependent content and per-recipient formats.

Characteristic 4: "many sellers have pricing schemes that are
buyer-dependent ... in some cases seats are 'made available' to top-tier
customers even when there are no seats left ... both pricing and
availability can be functionally specified by business rules."  And on
formatting: integrators may accept whatever arrives ("receiver-makes-right")
or legislate an XML format suppliers must produce ("sender-makes-right").

* :class:`PricingRule` / :class:`AvailabilityRule` -- ordered business rules
  keyed on the recipient and the row.
* :class:`Recipient` -- a buyer (tier, currency, output format, optionally a
  legislated XML format).
* :class:`Syndicator` -- applies the matching rules and renders the chosen
  format: relational rows, CSV, canonical XML, or the recipient's
  legislated XML.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import SyndicationError
from repro.core.records import Table
from repro.xmlkit.model import XmlElement

RowDict = dict[str, Any]


@dataclass(frozen=True)
class LegislatedFormat:
    """A sender-makes-right XML contract: tags plus output->source mapping."""

    root_tag: str
    row_tag: str
    field_map: dict[str, str]  # output element name -> source column


@dataclass
class Recipient:
    """One buyer receiving a syndicated catalog."""

    name: str
    tier: str = "standard"  # e.g. standard | preferred | platinum
    currency: str = "USD"
    output_format: str = "rows"  # rows | csv | xml
    legislated: LegislatedFormat | None = None


@dataclass
class PricingRule:
    """Adjusts price when ``applies(recipient, row)`` holds.

    Matching rules compose in ascending ``priority`` order (lower first),
    each transforming the price produced by the previous one.
    """

    name: str
    applies: Callable[[Recipient, RowDict], bool]
    adjust: Callable[[float, RowDict], float]
    priority: int = 100

    @classmethod
    def tier_discount(cls, tier: str, percent: float, priority: int = 100) -> "PricingRule":
        """Convenience: ``percent``% off for one tier."""
        factor = 1.0 - percent / 100.0
        return cls(
            name=f"{tier}-{percent:g}pct-discount",
            applies=lambda recipient, row: recipient.tier == tier,
            adjust=lambda price, row: price * factor,
            priority=priority,
        )


@dataclass
class AvailabilityRule:
    """Adjusts the quantity shown when ``applies(recipient, row)`` holds."""

    name: str
    applies: Callable[[Recipient, RowDict], bool]
    adjust: Callable[[int, RowDict], int]
    priority: int = 100

    @classmethod
    def bump_for_tier(cls, tier: str, reserve_column: str = "reserve_qty", priority: int = 100) -> "AvailabilityRule":
        """The airline "bumping" rule: when sold out, top-tier buyers still
        see the reserve held back for them."""
        return cls(
            name=f"bump-{tier}",
            applies=lambda recipient, row: recipient.tier == tier,
            adjust=lambda qty, row: qty if qty > 0 else int(row.get(reserve_column) or 0),
            priority=priority,
        )


@dataclass
class SyndicationResult:
    """The syndicated table plus its rendered payload."""

    recipient: str
    table: Table
    payload: Any  # Table | str (csv) | XmlElement
    output_format: str


class Syndicator:
    """Applies business rules and renders recipient-specific output."""

    def __init__(
        self,
        pricing_rules: list[PricingRule] | None = None,
        availability_rules: list[AvailabilityRule] | None = None,
        exchange_rates: dict[str, float] | None = None,
        price_column: str = "price",
        qty_column: str = "qty",
        currency_column: str = "currency",
    ) -> None:
        """``exchange_rates[c]`` is reference units per one unit of currency
        ``c`` (any reference works; only ratios are used).  When provided and
        the table has a ``currency_column``, each recipient receives prices
        in their own currency."""
        self.pricing_rules = sorted(pricing_rules or [], key=lambda r: (r.priority, r.name))
        self.availability_rules = sorted(
            availability_rules or [], key=lambda r: (r.priority, r.name)
        )
        self.exchange_rates = {
            c.upper(): r for c, r in (exchange_rates or {}).items()
        }
        self.price_column = price_column
        self.qty_column = qty_column
        self.currency_column = currency_column

    def _convert_currency(self, row: RowDict, recipient: Recipient) -> None:
        source = row.get(self.currency_column)
        price = row.get(self.price_column)
        target = recipient.currency.upper()
        if not self.exchange_rates or source is None or price is None:
            return
        source = str(source).upper()
        if source == target:
            return
        if source not in self.exchange_rates or target not in self.exchange_rates:
            raise SyndicationError(
                f"no exchange rate to convert {source} -> {target} "
                f"for recipient {recipient.name!r}"
            )
        row[self.price_column] = price * self.exchange_rates[source] / self.exchange_rates[target]
        row[self.currency_column] = target

    # -- rule application ----------------------------------------------------

    def _adjusted_rows(self, table: Table, recipient: Recipient) -> list[RowDict]:
        rows = table.to_dicts()
        for row in rows:
            self._convert_currency(row, recipient)
            price = row.get(self.price_column)
            if price is not None:
                for rule in self.pricing_rules:
                    if rule.applies(recipient, row):
                        price = rule.adjust(price, row)
                row[self.price_column] = round(price, 4)
            qty = row.get(self.qty_column)
            if qty is not None:
                for rule in self.availability_rules:
                    if rule.applies(recipient, row):
                        qty = rule.adjust(qty, row)
                row[self.qty_column] = qty
        return rows

    # -- rendering ------------------------------------------------------------

    def syndicate(self, table: Table, recipient: Recipient) -> SyndicationResult:
        """Produce ``recipient``'s personalized view of ``table``."""
        rows = self._adjusted_rows(table, recipient)
        adjusted = Table.from_dicts(table.schema, rows)

        if recipient.output_format == "rows":
            payload: Any = adjusted
        elif recipient.output_format == "csv":
            payload = self._to_csv(adjusted)
        elif recipient.output_format == "xml":
            payload = self._to_xml(adjusted, recipient)
        else:
            raise SyndicationError(
                f"recipient {recipient.name!r} wants unknown format "
                f"{recipient.output_format!r}"
            )
        return SyndicationResult(recipient.name, adjusted, payload, recipient.output_format)

    def _to_csv(self, table: Table) -> str:
        def cell(value: Any) -> str:
            text = "" if value is None else str(value)
            if any(c in text for c in ',"\n'):
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(table.schema.field_names)]
        for row in table.rows:
            lines.append(",".join(cell(v) for v in row))
        return "\n".join(lines) + "\n"

    def _to_xml(self, table: Table, recipient: Recipient) -> XmlElement:
        if recipient.legislated is not None:
            return self._to_legislated_xml(table, recipient.legislated)
        root = XmlElement("catalog", {"recipient": recipient.name})
        for row in table.to_dicts():
            item = root.element("item")
            for name, value in row.items():
                child = item.element(name)
                if value is not None:
                    child.append(str(value))
        return root

    def _to_legislated_xml(self, table: Table, contract: LegislatedFormat) -> XmlElement:
        missing = [
            column
            for column in contract.field_map.values()
            if not table.schema.has_field(column)
        ]
        if missing:
            raise SyndicationError(
                f"legislated format needs source columns {missing!r} "
                "that the catalog does not have (supplier enablement gap)"
            )
        root = XmlElement(contract.root_tag)
        for row in table.to_dicts():
            element = root.element(contract.row_tag)
            for output_name, column in contract.field_map.items():
                child = element.element(output_name)
                value = row[column]
                if value is not None:
                    child.append(str(value))
        return root

"""Hierarchical taxonomies (the UN/SPSC model).

Characteristic 3: taxonomies are "usually arranged in a semantic hierarchy
... a query to a hierarchical taxonomy of part names should return all parts
at the matching levels as well as those below them", and "taxonomies should
be browseable and searchable in the same manner as the data itself".

A :class:`Taxonomy` is a forest of coded categories.  Products (any
hashable ids) are *assigned* to categories; :meth:`items_under` implements
the paper's descendant-inclusive retrieval, and :meth:`expand_query`
produces extra search terms for :class:`repro.ir.search.CatalogSearch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.core.errors import TaxonomyError


@dataclass
class TaxonomyNode:
    """One category: a stable code, a human label, and tree links."""

    code: str
    label: str
    parent: "TaxonomyNode | None" = None
    children: list["TaxonomyNode"] = field(default_factory=list)

    def ancestors(self) -> Iterator["TaxonomyNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["TaxonomyNode"]:
        for child in self.children:
            yield child
            yield from child.descendants()

    @property
    def path(self) -> list[str]:
        """Labels from root to this node (for display/browse)."""
        labels = [ancestor.label for ancestor in self.ancestors()]
        labels.reverse()
        labels.append(self.label)
        return labels

    def __repr__(self) -> str:
        return f"TaxonomyNode({self.code!r}, {self.label!r})"


class Taxonomy:
    """A named forest of categories with product assignments."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: dict[str, TaxonomyNode] = {}
        self._roots: list[TaxonomyNode] = []
        self._assignments: dict[str, set[Hashable]] = {}

    # -- construction -----------------------------------------------------

    def add_category(self, code: str, label: str, parent_code: str | None = None) -> TaxonomyNode:
        if code in self._nodes:
            raise TaxonomyError(f"category code {code!r} already exists in {self.name!r}")
        parent = None
        if parent_code is not None:
            parent = self.node(parent_code)
        node = TaxonomyNode(code, label, parent)
        self._nodes[code] = node
        if parent is None:
            self._roots.append(node)
        else:
            parent.children.append(node)
        return node

    # -- lookup & browse -----------------------------------------------------

    def node(self, code: str) -> TaxonomyNode:
        if code not in self._nodes:
            raise TaxonomyError(f"no category {code!r} in taxonomy {self.name!r}")
        return self._nodes[code]

    @property
    def roots(self) -> list[TaxonomyNode]:
        return list(self._roots)

    def all_nodes(self) -> list[TaxonomyNode]:
        return list(self._nodes.values())

    def browse(self, code: str | None = None) -> list[TaxonomyNode]:
        """The children of ``code`` (or the roots) -- one browse step."""
        if code is None:
            return self.roots
        return list(self.node(code).children)

    def search_labels(self, text: str) -> list[TaxonomyNode]:
        """Categories whose label contains ``text`` (case-insensitive)."""
        needle = text.lower().strip()
        return [n for n in self._nodes.values() if needle in n.label.lower()]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, code: str) -> bool:
        return code in self._nodes

    # -- product assignment & retrieval ----------------------------------------

    def assign(self, code: str, item_id: Hashable) -> None:
        """Classify one product under a category."""
        self.node(code)  # validates
        self._assignments.setdefault(code, set()).add(item_id)

    def assigned_to(self, code: str) -> set[Hashable]:
        """Products assigned to exactly this category."""
        self.node(code)
        return set(self._assignments.get(code, set()))

    def items_under(self, code: str) -> set[Hashable]:
        """Products at this category *and all descendants* (§3.1 C3)."""
        node = self.node(code)
        items = set(self._assignments.get(code, set()))
        for descendant in node.descendants():
            items |= self._assignments.get(descendant.code, set())
        return items

    # -- query expansion ---------------------------------------------------------

    def expand_query(self, text: str) -> set[str]:
        """Extra search terms for a phrase matching category labels.

        For every category whose label contains the phrase (or any single
        token of it), contribute the labels of that category and its
        descendants.  This is how a query for "refills" reaches both "ink
        refills" and "lead refills" products.
        """
        matches: list[TaxonomyNode] = []
        needle = text.lower().strip()
        if needle:
            matches.extend(self.search_labels(needle))
            for token in needle.split():
                matches.extend(self.search_labels(token))
        terms: set[str] = set()
        for node in matches:
            terms.add(node.label.lower())
            for descendant in node.descendants():
                terms.add(descendant.label.lower())
        return terms

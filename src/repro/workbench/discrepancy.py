"""Discrepancy detection: rules that find data problems and guide fixes.

The Cohera Workbench "includes rules for detecting data discrepancies and
guiding the content manager through the task of fixing them" (§4).  A
:class:`DiscrepancyDetector` runs a rule set over a table and produces a
:class:`DiscrepancyReport` listing every finding with its row, column,
severity and (when the rule can propose one) a suggested fix the manager
can apply with one call.
"""

from __future__ import annotations

import abc
import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.records import Row, Table


@dataclass(frozen=True)
class Discrepancy:
    """One detected problem."""

    rule: str
    row_index: int
    column: str
    message: str
    severity: str = "warning"  # "warning" | "error"
    suggested_value: Any = None
    has_suggestion: bool = False


class DiscrepancyRule(abc.ABC):
    """One check over a table."""

    name: str

    @abc.abstractmethod
    def check(self, table: Table) -> list[Discrepancy]:
        ...


class MissingValueRule(DiscrepancyRule):
    """Flags None (or blank string) values in a required column."""

    def __init__(self, column: str, default: Any = None) -> None:
        self.column = column
        self.default = default
        self.name = f"missing({column})"

    def check(self, table: Table) -> list[Discrepancy]:
        index = table.schema.index_of(self.column)
        findings = []
        for i, row in enumerate(table.rows):
            value = row[index]
            if value is None or (isinstance(value, str) and not value.strip()):
                findings.append(
                    Discrepancy(
                        self.name, i, self.column,
                        f"row {i}: {self.column!r} is missing",
                        severity="error",
                        suggested_value=self.default,
                        has_suggestion=self.default is not None,
                    )
                )
        return findings


class RangeRule(DiscrepancyRule):
    """Flags numeric values outside [minimum, maximum]."""

    def __init__(
        self,
        column: str,
        minimum: float | None = None,
        maximum: float | None = None,
        clamp: bool = False,
    ) -> None:
        self.column = column
        self.minimum = minimum
        self.maximum = maximum
        self.clamp = clamp
        self.name = f"range({column})"

    def check(self, table: Table) -> list[Discrepancy]:
        index = table.schema.index_of(self.column)
        findings = []
        for i, row in enumerate(table.rows):
            value = row[index]
            if value is None or not isinstance(value, (int, float)) or math.isnan(value):
                continue
            clamped = value
            if self.minimum is not None and value < self.minimum:
                clamped = self.minimum
            if self.maximum is not None and value > self.maximum:
                clamped = self.maximum
            if clamped != value:
                findings.append(
                    Discrepancy(
                        self.name, i, self.column,
                        f"row {i}: {self.column}={value!r} outside "
                        f"[{self.minimum}, {self.maximum}]",
                        suggested_value=clamped if self.clamp else None,
                        has_suggestion=self.clamp,
                    )
                )
        return findings


class FormatRule(DiscrepancyRule):
    """Flags string values not matching a regular expression."""

    def __init__(self, column: str, pattern: str, normalizer: Callable[[str], str] | None = None) -> None:
        self.column = column
        self.pattern = re.compile(pattern)
        self.normalizer = normalizer
        self.name = f"format({column})"

    def check(self, table: Table) -> list[Discrepancy]:
        index = table.schema.index_of(self.column)
        findings = []
        for i, row in enumerate(table.rows):
            value = row[index]
            if value is None or not isinstance(value, str):
                continue
            if self.pattern.fullmatch(value):
                continue
            suggestion = None
            if self.normalizer is not None:
                candidate = self.normalizer(value)
                if self.pattern.fullmatch(candidate):
                    suggestion = candidate
            findings.append(
                Discrepancy(
                    self.name, i, self.column,
                    f"row {i}: {self.column}={value!r} does not match expected format",
                    suggested_value=suggestion,
                    has_suggestion=suggestion is not None,
                )
            )
        return findings


class DuplicateKeyRule(DiscrepancyRule):
    """Flags rows whose key columns repeat an earlier row's key."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)
        self.name = f"duplicate({', '.join(columns)})"

    def check(self, table: Table) -> list[Discrepancy]:
        indexes = [table.schema.index_of(c) for c in self.columns]
        seen: dict[tuple, int] = {}
        findings = []
        for i, row in enumerate(table.rows):
            key = tuple(row[j] for j in indexes)
            if key in seen:
                findings.append(
                    Discrepancy(
                        self.name, i, self.columns[0],
                        f"row {i}: key {key!r} duplicates row {seen[key]}",
                        severity="error",
                    )
                )
            else:
                seen[key] = i
        return findings


class CrossFieldRule(DiscrepancyRule):
    """Flags rows violating an arbitrary cross-column invariant."""

    def __init__(self, name: str, predicate: Callable[[Row], bool], message: str) -> None:
        self.name = name
        self.predicate = predicate
        self.message = message

    def check(self, table: Table) -> list[Discrepancy]:
        findings = []
        for i, row in enumerate(table):
            if not self.predicate(row):
                findings.append(
                    Discrepancy(self.name, i, "*", f"row {i}: {self.message}")
                )
        return findings


@dataclass
class DiscrepancyReport:
    """All findings of one detector run, with fix support."""

    findings: list[Discrepancy]

    def __len__(self) -> int:
        return len(self.findings)

    def errors(self) -> list[Discrepancy]:
        return [f for f in self.findings if f.severity == "error"]

    def fixable(self) -> list[Discrepancy]:
        return [f for f in self.findings if f.has_suggestion]

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


class DiscrepancyDetector:
    """Runs a rule set and (optionally) applies suggested fixes."""

    def __init__(self, rules: Sequence[DiscrepancyRule] = ()) -> None:
        self.rules: list[DiscrepancyRule] = list(rules)

    def add_rule(self, rule: DiscrepancyRule) -> "DiscrepancyDetector":
        self.rules.append(rule)
        return self

    def run(self, table: Table) -> DiscrepancyReport:
        findings: list[Discrepancy] = []
        for rule in self.rules:
            findings.extend(rule.check(table))
        findings.sort(key=lambda f: (f.row_index, f.column, f.rule))
        return DiscrepancyReport(findings)

    @staticmethod
    def apply_fixes(table: Table, findings: Sequence[Discrepancy]) -> Table:
        """Return a copy of ``table`` with all suggested values applied."""
        rows = [list(row) for row in table.rows]
        for finding in findings:
            if not finding.has_suggestion:
                continue
            column_index = table.schema.index_of(finding.column)
            rows[finding.row_index][column_index] = finding.suggested_value
        fixed = Table(table.schema, validate=False)
        fixed.rows = [tuple(row) for row in rows]
        return fixed

"""Cohera Workbench analog: mapping, transformation and syndication tooling.

The Workbench is where content managers "model, map, transform and syndicate
content" (§4).  Each module here is one of its tools:

* :mod:`repro.workbench.transforms` -- a declarative transform pipeline
  (Characteristic 2's homogenization), with a scripting escape hatch.
* :mod:`repro.workbench.lineage` -- per-row, per-column provenance carried
  through every pipeline, preserving the data independence the paper says
  ETL tools "gave up on" (§3.2 C5).
* :mod:`repro.workbench.normalize` -- currency, unit and delivery-time
  semantics (dollars vs francs, "two day delivery").
* :mod:`repro.workbench.synonyms` -- synonym tables ("India ink" = "black
  ink").
* :mod:`repro.workbench.taxonomy` -- hierarchical taxonomies (UN/SPSC-like)
  with browse, search and query expansion (Characteristic 3).
* :mod:`repro.workbench.matching` -- the semi-automatic taxonomy and schema
  matcher: system suggestions + human accept/edit, the loop §3.1 C3 calls
  "absolutely critical".
* :mod:`repro.workbench.discrepancy` -- rules that detect data problems and
  guide the content manager through fixing them.
* :mod:`repro.workbench.syndication` -- custom syndication: buyer-dependent
  pricing/availability rules and per-recipient output formats
  (Characteristic 4).
"""

from repro.workbench.discrepancy import (
    CrossFieldRule,
    DiscrepancyDetector,
    DiscrepancyReport,
    DuplicateKeyRule,
    FormatRule,
    MissingValueRule,
    RangeRule,
)
from repro.workbench.lineage import Lineage, RowOrigin
from repro.workbench.matching import (
    MatchDecision,
    MatchSession,
    MatchSuggestion,
    SchemaMatcher,
    TaxonomyMatcher,
)
from repro.workbench.normalize import (
    CurrencyNormalizer,
    DeliveryPolicy,
    DeliveryTimeNormalizer,
    UnitNormalizer,
)
from repro.workbench.synonyms import SynonymTable
from repro.workbench.taxonomy import Taxonomy, TaxonomyNode
from repro.workbench.transforms import (
    AddColumn,
    CastColumn,
    DropColumns,
    FilterRows,
    MapColumn,
    MergeColumns,
    Pipeline,
    ProjectColumns,
    RenameColumns,
    ScriptStep,
    SplitColumn,
)
from repro.workbench.syndication import (
    AvailabilityRule,
    PricingRule,
    Recipient,
    Syndicator,
)
from repro.workbench.workflow import (
    StepResult,
    Workflow,
    WorkflowContext,
    WorkflowRun,
    WorkflowStep,
)

__all__ = [
    "CrossFieldRule",
    "DiscrepancyDetector",
    "DiscrepancyReport",
    "DuplicateKeyRule",
    "FormatRule",
    "MissingValueRule",
    "RangeRule",
    "Lineage",
    "RowOrigin",
    "MatchDecision",
    "MatchSession",
    "MatchSuggestion",
    "SchemaMatcher",
    "TaxonomyMatcher",
    "CurrencyNormalizer",
    "DeliveryPolicy",
    "DeliveryTimeNormalizer",
    "UnitNormalizer",
    "SynonymTable",
    "Taxonomy",
    "TaxonomyNode",
    "AddColumn",
    "CastColumn",
    "DropColumns",
    "FilterRows",
    "MapColumn",
    "MergeColumns",
    "Pipeline",
    "ProjectColumns",
    "RenameColumns",
    "ScriptStep",
    "SplitColumn",
    "AvailabilityRule",
    "PricingRule",
    "Recipient",
    "Syndicator",
    "StepResult",
    "Workflow",
    "WorkflowContext",
    "WorkflowRun",
    "WorkflowStep",
]

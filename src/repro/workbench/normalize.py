"""Normalizers for semantic heterogeneity.

Characteristic 2's examples, implemented literally:

* "a US supplier quotes product prices in dollars, while a French supplier
  quotes prices in francs" -- :class:`CurrencyNormalizer` parses each
  supplier's price *format* and converts to the integrator's currency.
* "companies often mean very different things by 'two day delivery'" --
  :class:`DeliveryTimeNormalizer` resolves a supplier's delivery quote
  against that supplier's declared :class:`DeliveryPolicy` into comparable
  calendar hours.
* :class:`UnitNormalizer` converts measurement units (inches vs millimetres,
  pounds vs kilograms, packs vs eaches).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.core.errors import TransformError
from repro.core.values import Money

_SYMBOLS = {"$": "USD", "€": "EUR", "£": "GBP", "F": "FRF", "¥": "JPY"}

# Matches the three sitegen styles and common real-world variants:
#   "$5.00"  "F5.00"  "USD 5.00"  "5,00 FRF"  "5.00USD"
_PRICE_PATTERNS = [
    re.compile(r"^\s*(?P<sym>[$€£¥F])\s*(?P<amt>[\d.,]+)\s*$"),
    re.compile(r"^\s*(?P<code>[A-Za-z]{3})\s*(?P<amt>[\d.,]+)\s*$"),
    re.compile(r"^\s*(?P<amt>[\d.,]+)\s*(?P<code>[A-Za-z]{3})\s*$"),
    re.compile(r"^\s*(?P<amt>[\d.,]+)\s*$"),
]


def parse_price(text: str, default_currency: str = "USD") -> Money:
    """Parse a supplier-formatted price string into :class:`Money`.

    Handles currency symbols, ISO-code prefixes/suffixes, thousands
    separators and the European decimal comma.
    """
    for pattern in _PRICE_PATTERNS:
        match = pattern.match(text)
        if not match:
            continue
        groups = match.groupdict()
        amount_text = groups["amt"]
        if "," in amount_text and "." not in amount_text:
            amount_text = amount_text.replace(",", ".")
        else:
            amount_text = amount_text.replace(",", "")
        try:
            amount = float(amount_text)
        except ValueError:
            continue
        if groups.get("sym"):
            currency = _SYMBOLS.get(groups["sym"], default_currency)
        elif groups.get("code"):
            currency = groups["code"].upper()
        else:
            currency = default_currency
        return Money(amount, currency)
    raise TransformError(f"cannot parse price {text!r}")


class CurrencyNormalizer:
    """Converts Money (or supplier price strings) into one target currency."""

    def __init__(self, target_currency: str, rates_to_target: dict[str, float]) -> None:
        """``rates_to_target[c]`` is target units per one unit of ``c``."""
        self.target_currency = target_currency.upper()
        self.rates = {c.upper(): r for c, r in rates_to_target.items()}
        self.rates.setdefault(self.target_currency, 1.0)

    def normalize(self, value: "Money | str", default_currency: str = "USD") -> Money:
        money = value if isinstance(value, Money) else parse_price(value, default_currency)
        if money.currency == self.target_currency:
            return money
        if money.currency not in self.rates:
            raise TransformError(
                f"no exchange rate from {money.currency} to {self.target_currency}"
            )
        return money.convert(self.target_currency, self.rates[money.currency]).rounded(4)


class UnitNormalizer:
    """Converts measurements to canonical units via a factor table.

    Ships with length (m), mass (kg) and count (each) families; suppliers'
    idiosyncratic units (``"pack of 12"``) can be registered per supplier.
    """

    _BUILTIN = {
        # length -> metres
        "m": ("length", 1.0), "meter": ("length", 1.0), "cm": ("length", 0.01),
        "mm": ("length", 0.001), "in": ("length", 0.0254), "inch": ("length", 0.0254),
        "ft": ("length", 0.3048), "foot": ("length", 0.3048),
        # mass -> kilograms
        "kg": ("mass", 1.0), "g": ("mass", 0.001), "lb": ("mass", 0.45359237),
        "oz": ("mass", 0.028349523),
        # count -> eaches
        "each": ("count", 1.0), "ea": ("count", 1.0), "pair": ("count", 2.0),
        "dozen": ("count", 12.0), "gross": ("count", 144.0),
    }

    def __init__(self) -> None:
        self._units: dict[str, tuple[str, float]] = dict(self._BUILTIN)

    def register(self, unit: str, family: str, factor: float) -> None:
        """Register a custom unit (e.g. ``("pack12", "count", 12.0)``)."""
        if factor <= 0:
            raise TransformError(f"non-positive unit factor {factor!r}")
        self._units[unit.lower()] = (family, factor)

    def family_of(self, unit: str) -> str:
        return self._lookup(unit)[0]

    def to_canonical(self, quantity: float, unit: str) -> float:
        """Convert ``quantity unit`` into the family's canonical unit."""
        return quantity * self._lookup(unit)[1]

    def convert(self, quantity: float, from_unit: str, to_unit: str) -> float:
        from_family, from_factor = self._lookup(from_unit)
        to_family, to_factor = self._lookup(to_unit)
        if from_family != to_family:
            raise TransformError(
                f"cannot convert {from_unit!r} ({from_family}) "
                f"to {to_unit!r} ({to_family})"
            )
        return quantity * from_factor / to_factor

    def _lookup(self, unit: str) -> tuple[str, float]:
        key = unit.lower().strip()
        if key not in self._units:
            raise TransformError(f"unknown unit {unit!r}")
        return self._units[key]


class DeliveryPolicy(enum.Enum):
    """What a supplier means by "N day delivery" (the FedEx example)."""

    CALENDAR_DAYS = "calendar"
    BUSINESS_DAYS = "business"
    CALENDAR_EXCEPT_SUNDAY = "calendar-except-sunday"


@dataclass(frozen=True)
class _PolicyModel:
    """Average calendar-hours one quoted 'day' costs under a policy.

    Computed as the long-run expectation over a uniformly random start day:
    a business day averages 7/5 calendar days, a Sunday-excluded day 7/6.
    """

    hours_per_quoted_day: float


_POLICY_MODELS = {
    DeliveryPolicy.CALENDAR_DAYS: _PolicyModel(24.0),
    DeliveryPolicy.BUSINESS_DAYS: _PolicyModel(24.0 * 7 / 5),
    DeliveryPolicy.CALENDAR_EXCEPT_SUNDAY: _PolicyModel(24.0 * 7 / 6),
}

_DELIVERY_RE = re.compile(r"(?P<n>\d+)\s*(?:-)?\s*(day|days|business day|business days)", re.I)


class DeliveryTimeNormalizer:
    """Resolves supplier delivery quotes into comparable calendar hours."""

    def __init__(self, supplier_policies: dict[str, DeliveryPolicy] | None = None) -> None:
        self.supplier_policies = dict(supplier_policies or {})

    def register(self, supplier: str, policy: DeliveryPolicy) -> None:
        self.supplier_policies[supplier] = policy

    def normalize(self, supplier: str, quote: "str | int | float") -> float:
        """Expected calendar hours for ``quote`` from ``supplier``.

        ``quote`` may be a number of days or free text like "2 day
        delivery".  The supplier's policy defaults to calendar days.
        """
        if isinstance(quote, (int, float)):
            days = float(quote)
        else:
            match = _DELIVERY_RE.search(quote)
            if not match:
                raise TransformError(f"cannot parse delivery quote {quote!r}")
            days = float(match.group("n"))
        policy = self.supplier_policies.get(supplier, DeliveryPolicy.CALENDAR_DAYS)
        return days * _POLICY_MODELS[policy].hours_per_quoted_day

"""Multi-step content workflows.

Characteristic 2: "some transformations require a multi-step workflow.  A
transformation infrastructure that supports all these options is
important."  And §4 describes the Workbench as "a graphical content
workflow".

A :class:`Workflow` is a DAG of named steps.  Each step's action receives a
shared :class:`WorkflowContext` (a dict-like scratchpad carrying tables,
reports, whatever the steps exchange) plus the outputs of the steps it
depends on.  Running a workflow executes steps in dependency order; a
failing step marks its transitive dependents *skipped* rather than
aborting the whole run, so a content manager sees everything that could
still be done (one supplier's broken feed must not stall the other 59,999).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.errors import TransformError


class WorkflowContext(dict):
    """Shared scratchpad passed to every step."""


StepAction = Callable[[WorkflowContext, dict[str, Any]], Any]


@dataclass
class WorkflowStep:
    name: str
    action: StepAction
    depends_on: tuple[str, ...] = ()


@dataclass
class StepResult:
    name: str
    status: str  # "ok" | "failed" | "skipped"
    output: Any = None
    error: str = ""


@dataclass
class WorkflowRun:
    """The record of one execution."""

    workflow: str
    results: dict[str, StepResult] = field(default_factory=dict)

    def output_of(self, name: str) -> Any:
        result = self.results[name]
        if result.status != "ok":
            raise TransformError(
                f"step {name!r} did not complete (status {result.status!r})"
            )
        return result.output

    @property
    def succeeded(self) -> bool:
        return all(r.status == "ok" for r in self.results.values())

    def counts(self) -> dict[str, int]:
        tally = {"ok": 0, "failed": 0, "skipped": 0}
        for result in self.results.values():
            tally[result.status] += 1
        return tally


class Workflow:
    """A named DAG of content-processing steps."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._steps: dict[str, WorkflowStep] = {}

    def step(
        self, name: str, depends_on: "list[str] | tuple[str, ...]" = ()
    ) -> Callable[[StepAction], StepAction]:
        """Decorator registration: ``@workflow.step("normalize", ["scrape"])``."""

        def register(action: StepAction) -> StepAction:
            self.add_step(WorkflowStep(name, action, tuple(depends_on)))
            return action

        return register

    def add_step(self, step: WorkflowStep) -> None:
        if step.name in self._steps:
            raise TransformError(f"duplicate workflow step {step.name!r}")
        for dependency in step.depends_on:
            if dependency not in self._steps:
                raise TransformError(
                    f"step {step.name!r} depends on unknown step {dependency!r} "
                    "(add dependencies before dependents)"
                )
        self._steps[step.name] = step

    def topological_order(self) -> list[str]:
        """Steps in a valid execution order (insertion order is one, since
        dependencies must exist at registration time)."""
        return list(self._steps)

    def run(self, context: WorkflowContext | None = None) -> WorkflowRun:
        """Execute the DAG; failures skip their transitive dependents."""
        context = context if context is not None else WorkflowContext()
        run = WorkflowRun(self.name)
        for name in self.topological_order():
            step = self._steps[name]
            blocked = [
                d for d in step.depends_on if run.results[d].status != "ok"
            ]
            if blocked:
                run.results[name] = StepResult(
                    name, "skipped",
                    error=f"upstream not ok: {', '.join(sorted(blocked))}",
                )
                continue
            upstream = {d: run.results[d].output for d in step.depends_on}
            try:
                output = step.action(context, upstream)
            except Exception as error:  # a step failing is data, not a crash
                run.results[name] = StepResult(name, "failed", error=str(error))
                continue
            run.results[name] = StepResult(name, "ok", output=output)
        return run

"""Semi-automatic taxonomy and schema matching.

§3.1 C3: "When a new taxonomy is to be added to an integrated model, matches
need to be found, conflicts identified, and ambiguities resolved ...
Semi-automatic schemes that combine system suggestions with user editing are
absolutely critical here."

:class:`TaxonomyMatcher` scores every (source category, master category)
pair on up to three signals -- label similarity, structural (parent label)
similarity, and instance overlap -- and classifies each source category as
*auto* (confident single match), *review* (plausible candidates, human must
choose), *conflict* (two candidates too close to call), or *unmatched*.
:class:`MatchSession` is the human-in-the-loop workflow around the
suggestions; the number of decisions it forces a human to make is exactly
what experiment E7 measures against an all-manual baseline.

:class:`SchemaMatcher` applies the same machinery to field names between two
relational schemas (Characteristic 2's mapping problem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.errors import TaxonomyError
from repro.core.schema import Schema
from repro.ir.fuzzy import combined_similarity
from repro.workbench.taxonomy import Taxonomy, TaxonomyNode


@dataclass
class MatchSuggestion:
    """The system's proposal for one source category (or field)."""

    source_code: str
    source_label: str
    candidates: list[tuple[str, float]]  # (master code, score), best first
    status: str  # "auto" | "review" | "conflict" | "unmatched"

    @property
    def best(self) -> str | None:
        return self.candidates[0][0] if self.candidates else None

    @property
    def best_score(self) -> float:
        return self.candidates[0][1] if self.candidates else 0.0


def _instance_overlap(a: set[Hashable], b: set[Hashable]) -> float:
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


class TaxonomyMatcher:
    """Scores source categories against a master taxonomy.

    Signal weights are exposed so E7 can ablate: name-only matching versus
    name+structure versus name+structure+instances.
    """

    def __init__(
        self,
        master: Taxonomy,
        auto_threshold: float = 0.85,
        review_threshold: float = 0.45,
        conflict_margin: float = 0.05,
        name_weight: float = 0.6,
        structure_weight: float = 0.25,
        instance_weight: float = 0.15,
        candidate_limit: int = 3,
    ) -> None:
        self.master = master
        self.auto_threshold = auto_threshold
        self.review_threshold = review_threshold
        self.conflict_margin = conflict_margin
        self.name_weight = name_weight
        self.structure_weight = structure_weight
        self.instance_weight = instance_weight
        self.candidate_limit = candidate_limit

    def _score(
        self,
        source_node: TaxonomyNode,
        master_node: TaxonomyNode,
        source_items: set[Hashable],
        master_items: set[Hashable],
    ) -> float:
        total_weight = self.name_weight + self.structure_weight + self.instance_weight
        name_score = combined_similarity(source_node.label, master_node.label)

        structure_score = 0.0
        if source_node.parent is not None and master_node.parent is not None:
            structure_score = combined_similarity(
                source_node.parent.label, master_node.parent.label
            )
        elif source_node.parent is None and master_node.parent is None:
            structure_score = 1.0  # both are roots

        instance_score = _instance_overlap(source_items, master_items)
        weighted = (
            self.name_weight * name_score
            + self.structure_weight * structure_score
            + self.instance_weight * instance_score
        )
        return weighted / total_weight if total_weight else 0.0

    def suggest(
        self,
        source: Taxonomy,
        source_items: dict[str, set[Hashable]] | None = None,
        master_items: dict[str, set[Hashable]] | None = None,
    ) -> list[MatchSuggestion]:
        """One suggestion per source category, in taxonomy order.

        ``source_items``/``master_items`` optionally map category codes to
        sets of comparable instance keys (normalized product names work
        well); when omitted the instance signal contributes zero.
        """
        source_items = source_items or {}
        master_items = master_items or {}
        master_nodes = self.master.all_nodes()
        suggestions = []
        for source_node in source.all_nodes():
            scored = []
            for master_node in master_nodes:
                score = self._score(
                    source_node,
                    master_node,
                    source_items.get(source_node.code, set()),
                    master_items.get(master_node.code, set()),
                )
                scored.append((master_node.code, score))
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            candidates = [
                (code, score)
                for code, score in scored[:self.candidate_limit]
                if score >= self.review_threshold
            ]
            suggestions.append(
                MatchSuggestion(
                    source_node.code,
                    source_node.label,
                    candidates,
                    self._classify(candidates),
                )
            )
        return suggestions

    def _classify(self, candidates: list[tuple[str, float]]) -> str:
        if not candidates:
            return "unmatched"
        best_score = candidates[0][1]
        if len(candidates) > 1 and best_score - candidates[1][1] < self.conflict_margin:
            return "conflict"
        if best_score >= self.auto_threshold:
            return "auto"
        return "review"


@dataclass
class MatchDecision:
    """The recorded outcome for one source category."""

    source_code: str
    master_code: str | None
    action: str  # "auto" | "accepted" | "edited" | "rejected"


class MatchSession:
    """The human-in-the-loop workflow over a suggestion list.

    Auto suggestions are applied immediately; everything else waits in
    :meth:`pending` until the content manager calls :meth:`accept`,
    :meth:`edit` or :meth:`reject`.  ``human_decisions`` counts the manual
    interventions -- the cost metric of E7.
    """

    def __init__(self, master: Taxonomy, suggestions: list[MatchSuggestion]) -> None:
        self.master = master
        self.suggestions = {s.source_code: s for s in suggestions}
        self.decisions: dict[str, MatchDecision] = {}
        self.human_decisions = 0
        for suggestion in suggestions:
            if suggestion.status == "auto":
                self.decisions[suggestion.source_code] = MatchDecision(
                    suggestion.source_code, suggestion.best, "auto"
                )

    def pending(self) -> list[MatchSuggestion]:
        """Suggestions still awaiting a human decision, worst-first."""
        waiting = [
            s for code, s in self.suggestions.items() if code not in self.decisions
        ]
        waiting.sort(key=lambda s: (s.best_score, s.source_code))
        return waiting

    def accept(self, source_code: str) -> MatchDecision:
        """Human accepts the system's top suggestion."""
        suggestion = self._suggestion(source_code)
        if suggestion.best is None:
            raise TaxonomyError(
                f"cannot accept {source_code!r}: the system has no candidate"
            )
        return self._decide(source_code, suggestion.best, "accepted")

    def edit(self, source_code: str, master_code: str) -> MatchDecision:
        """Human overrides with an explicit master category."""
        self.master.node(master_code)  # validate
        return self._decide(source_code, master_code, "edited")

    def reject(self, source_code: str) -> MatchDecision:
        """Human declares the category unmappable."""
        self._suggestion(source_code)
        return self._decide(source_code, None, "rejected")

    def mapping(self) -> dict[str, str]:
        """The final source-code -> master-code map (decided pairs only)."""
        return {
            code: decision.master_code
            for code, decision in self.decisions.items()
            if decision.master_code is not None
        }

    def is_complete(self) -> bool:
        return not self.pending()

    def _suggestion(self, source_code: str) -> MatchSuggestion:
        if source_code not in self.suggestions:
            raise TaxonomyError(f"unknown source category {source_code!r}")
        return self.suggestions[source_code]

    def _decide(self, source_code: str, master_code: str | None, action: str) -> MatchDecision:
        decision = MatchDecision(source_code, master_code, action)
        previously_decided = source_code in self.decisions
        self.decisions[source_code] = decision
        if not previously_decided or action != "auto":
            self.human_decisions += 1
        return decision


class SchemaMatcher:
    """Suggests field correspondences between two relational schemas.

    Three signals, mirroring Characteristic 2's "data-driven mappings":
    string similarity of the field names, full token containment
    (``qty`` is inside ``stock_qty``), and an optional synonym table of
    known field-name equivalences (``sku`` = ``part_num``) that a vertical
    accumulates over time.
    """

    def __init__(
        self,
        auto_threshold: float = 0.85,
        review_threshold: float = 0.4,
        synonyms=None,
    ) -> None:
        self.auto_threshold = auto_threshold
        self.review_threshold = review_threshold
        self.synonyms = synonyms  # duck-typed: needs are_synonyms(a, b)

    def _field_score(self, source_name: str, target_name: str) -> float:
        from repro.ir.tokenize import tokenize

        score = combined_similarity(source_name, target_name)
        source_tokens = set(tokenize(source_name))
        target_tokens = set(tokenize(target_name))
        if source_tokens and target_tokens:
            containment = len(source_tokens & target_tokens) / min(
                len(source_tokens), len(target_tokens)
            )
            if containment == 1.0:
                score = max(score, 0.8)
        if self.synonyms is not None and self.synonyms.are_synonyms(
            source_name, target_name
        ):
            score = max(score, 0.95)
        return score

    def suggest(self, source: Schema, target: Schema) -> list[MatchSuggestion]:
        suggestions = []
        for source_field in source.fields:
            scored = []
            for target_field in target.fields:
                score = self._field_score(source_field.name, target_field.name)
                if source_field.dtype is target_field.dtype:
                    score = min(1.0, score + 0.1)  # type agreement bonus
                scored.append((target_field.name, score))
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            candidates = [
                (name, score) for name, score in scored[:3]
                if score >= self.review_threshold
            ]
            if not candidates:
                status = "unmatched"
            elif candidates[0][1] >= self.auto_threshold:
                status = "auto"
            else:
                status = "review"
            suggestions.append(
                MatchSuggestion(source_field.name, source_field.name, candidates, status)
            )
        return suggestions

"""Synonym tables.

"A query for 'India ink' should return the same answer as one for 'black
ink'" (§3.2 C7).  A :class:`SynonymTable` holds equivalence groups of terms
or phrases; lookups are case-insensitive and whitespace-normalized.  The
table doubles as a *data-driven mapping* for the transform pipeline
(Characteristic 2's "synonym tables ... form another step in data
integration"): :meth:`canonical` rewrites any member to its group's
canonical term.
"""

from __future__ import annotations

from typing import Iterable


def _normalize(term: str) -> str:
    return " ".join(term.lower().split())


class SynonymTable:
    """Equivalence groups of terms, with a canonical member per group."""

    def __init__(self) -> None:
        self._group_of: dict[str, int] = {}
        self._groups: list[list[str]] = []
        self._canonical: list[str] = []

    def add_group(self, terms: Iterable[str], canonical: str | None = None) -> None:
        """Register an equivalence group.

        ``canonical`` defaults to the first term.  If any term already
        belongs to a group, the groups are merged (the existing canonical
        wins unless ``canonical`` is given explicitly).
        """
        normalized = [_normalize(t) for t in terms if _normalize(t)]
        if not normalized:
            raise ValueError("synonym group needs at least one non-empty term")
        canonical_term = _normalize(canonical) if canonical else normalized[0]

        existing_groups = {
            self._group_of[t] for t in normalized if t in self._group_of
        }
        if existing_groups:
            target = min(existing_groups)
            # Merge any other touched groups into the target.
            for group_id in sorted(existing_groups - {target}, reverse=True):
                for term in self._groups[group_id]:
                    self._group_of[term] = target
                self._groups[target].extend(self._groups[group_id])
                self._groups[group_id] = []
        else:
            target = len(self._groups)
            self._groups.append([])
            self._canonical.append(canonical_term)

        for term in normalized:
            if term not in self._group_of:
                self._group_of[term] = target
                self._groups[target].append(term)
        if canonical:
            self._canonical[target] = canonical_term
            if canonical_term not in self._group_of:
                self._group_of[canonical_term] = target
                self._groups[target].append(canonical_term)

    def expand(self, term: str) -> set[str]:
        """All members of ``term``'s group (or just the term if unknown)."""
        normalized = _normalize(term)
        group_id = self._group_of.get(normalized)
        if group_id is None:
            return {normalized} if normalized else set()
        return set(self._groups[group_id])

    def canonical(self, term: str) -> str:
        """The canonical member of ``term``'s group (the term if unknown)."""
        normalized = _normalize(term)
        group_id = self._group_of.get(normalized)
        if group_id is None:
            return normalized
        return self._canonical[group_id]

    def are_synonyms(self, a: str, b: str) -> bool:
        normalized_a, normalized_b = _normalize(a), _normalize(b)
        if normalized_a == normalized_b:
            return True
        group_a = self._group_of.get(normalized_a)
        return group_a is not None and group_a == self._group_of.get(normalized_b)

    def __len__(self) -> int:
        return sum(1 for g in self._groups if g)

    def __contains__(self, term: str) -> bool:
        return _normalize(term) in self._group_of

"""DOM node types and navigation for parsed HTML.

Wrappers in :mod:`repro.connect.wrapper` extract catalog fields by walking
this tree, so the navigation API mirrors what screen-scraping code needs:
descendant search by tag/attribute/class, visible-text extraction, and a
tiny CSS-like ``select`` (tag, ``.class``, ``#id``, descendant combinator).
"""

from __future__ import annotations

from typing import Callable, Iterator


class Node:
    """Base class for all DOM nodes."""

    parent: "Element | None" = None


class TextNode(Node):
    """A run of character data."""

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return f"TextNode({self.text!r})"


class Comment(Node):
    """An HTML comment; kept so wrappers can key off template markers."""

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return f"Comment({self.text!r})"


class Element(Node):
    """An element with a tag, attributes and ordered children."""

    def __init__(self, tag: str, attrs: dict[str, str] | None = None) -> None:
        self.tag = tag.lower()
        self.attrs: dict[str, str] = dict(attrs or {})
        self.children: list[Node] = []

    # -- tree building -----------------------------------------------------

    def append(self, node: Node) -> Node:
        node.parent = self
        self.children.append(node)
        return node

    # -- attribute conveniences ---------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        return self.attrs.get(name.lower(), default)

    @property
    def element_id(self) -> str | None:
        return self.attrs.get("id")

    @property
    def classes(self) -> list[str]:
        return self.attrs.get("class", "").split()

    def has_class(self, name: str) -> bool:
        return name in self.classes

    # -- traversal -----------------------------------------------------------

    def iter_children_elements(self) -> Iterator["Element"]:
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def iter_descendants(self) -> Iterator[Node]:
        """Yield all descendant nodes in document order."""
        for child in self.children:
            yield child
            if isinstance(child, Element):
                yield from child.iter_descendants()

    def iter_descendant_elements(self) -> Iterator["Element"]:
        for node in self.iter_descendants():
            if isinstance(node, Element):
                yield node

    def find_all(
        self,
        tag: str | None = None,
        attrs: dict[str, str] | None = None,
        class_name: str | None = None,
        predicate: Callable[["Element"], bool] | None = None,
    ) -> list["Element"]:
        """Return descendant elements matching all given criteria."""
        matches = []
        for element in self.iter_descendant_elements():
            if tag is not None and element.tag != tag.lower():
                continue
            if attrs is not None and any(
                element.attrs.get(k) != v for k, v in attrs.items()
            ):
                continue
            if class_name is not None and not element.has_class(class_name):
                continue
            if predicate is not None and not predicate(element):
                continue
            matches.append(element)
        return matches

    def find(
        self,
        tag: str | None = None,
        attrs: dict[str, str] | None = None,
        class_name: str | None = None,
        predicate: Callable[["Element"], bool] | None = None,
    ) -> "Element | None":
        """Return the first matching descendant element, or None."""
        for element in self.find_all(tag, attrs, class_name, predicate):
            return element
        return None

    # -- CSS-like selection ----------------------------------------------------

    def select(self, selector: str) -> list["Element"]:
        """Evaluate a tiny CSS-like selector against this subtree.

        Supported: ``tag``, ``.class``, ``#id``, ``tag.class``, ``tag#id``
        and whitespace descendant combinators (``table.catalog tr td``).
        """
        parts = selector.split()
        if not parts:
            return []
        current: list[Element] = [self]
        for part in parts:
            next_matches: list[Element] = []
            seen: set[int] = set()
            for scope in current:
                for element in scope.iter_descendant_elements():
                    if id(element) in seen:
                        continue
                    if _matches_simple_selector(element, part):
                        seen.add(id(element))
                        next_matches.append(element)
            current = next_matches
        return current

    # -- text extraction ----------------------------------------------------------

    def get_text(self, separator: str = "", strip: bool = True) -> str:
        """Return the concatenated visible text of this subtree."""
        pieces = []
        for node in self.iter_descendants():
            if isinstance(node, TextNode):
                text = node.text.strip() if strip else node.text
                if text:
                    pieces.append(text)
        return separator.join(pieces)

    def __repr__(self) -> str:
        return f"Element(<{self.tag}>, attrs={self.attrs!r}, children={len(self.children)})"


def _matches_simple_selector(element: Element, selector: str) -> bool:
    """Match one compound selector like ``td.price`` or ``#main``."""
    tag = ""
    conditions: list[tuple[str, str]] = []
    buffer = ""
    mode = "tag"
    for char in selector:
        if char in ".#":
            if mode == "tag":
                tag = buffer
            else:
                conditions.append((mode, buffer))
            buffer = ""
            mode = "class" if char == "." else "id"
        else:
            buffer += char
    if mode == "tag":
        tag = buffer
    else:
        conditions.append((mode, buffer))

    if tag and tag != "*" and element.tag != tag.lower():
        return False
    for kind, value in conditions:
        if kind == "class" and not element.has_class(value):
            return False
        if kind == "id" and element.element_id != value:
            return False
    return True

"""A tolerant HTML tokenizer and tree builder.

Supplier sites in the simulated web (and in the real world the paper
describes) emit imperfect HTML.  This parser never raises on malformed
markup; its recovery rules are the pragmatic subset a screen-scraper needs:

* void elements (``<br>``, ``<img>``, ...) never take children;
* an unexpected close tag pops up to its nearest matching open tag, or is
  ignored if no such tag is open;
* ``<li>``, ``<tr>``, ``<td>``, ``<th>``, ``<option>`` and ``<p>`` implicitly
  close a previous unclosed sibling of the same kind;
* ``<script>``/``<style>`` content is treated as raw text;
* unterminated documents close all open elements at end of input.
"""

from __future__ import annotations

import re
from html import unescape

from repro.htmlkit.dom import Comment, Element, TextNode

VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"}
)

RAW_TEXT_ELEMENTS = frozenset({"script", "style"})

# When a tag in this map opens, any open element whose tag is in the mapped
# set is implicitly closed first (the common malformed-table/list pattern).
IMPLICIT_CLOSERS: dict[str, frozenset[str]] = {
    "li": frozenset({"li"}),
    "option": frozenset({"option"}),
    "p": frozenset({"p"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
    "tr": frozenset({"td", "th", "tr"}),
}

_ATTR_RE = re.compile(
    r"""([a-zA-Z_:][-a-zA-Z0-9_:.]*)       # attribute name
        (?:\s*=\s*
            (?:"([^"]*)"                   # double-quoted value
              |'([^']*)'                   # single-quoted value
              |([^\s>]+)                   # unquoted value
            )
        )?""",
    re.VERBOSE,
)


def _parse_attributes(text: str) -> dict[str, str]:
    """Parse the attribute portion of a start tag into a dict."""
    attrs: dict[str, str] = {}
    for match in _ATTR_RE.finditer(text):
        name = match.group(1).lower()
        value = match.group(2) or match.group(3) or match.group(4) or ""
        attrs[name] = unescape(value)
    return attrs


def parse_html(markup: str) -> Element:
    """Parse ``markup`` into a DOM tree rooted at a synthetic ``document``.

    Always succeeds; malformed input yields the best-effort tree described
    in the module docstring.
    """
    root = Element("document")
    stack: list[Element] = [root]
    position = 0
    length = len(markup)

    def flush_text(text: str) -> None:
        if text:
            stack[-1].append(TextNode(unescape(text)))

    while position < length:
        lt = markup.find("<", position)
        if lt == -1:
            flush_text(markup[position:])
            break
        flush_text(markup[position:lt])

        # Comment
        if markup.startswith("<!--", lt):
            end = markup.find("-->", lt + 4)
            if end == -1:
                stack[-1].append(Comment(markup[lt + 4:]))
                break
            stack[-1].append(Comment(markup[lt + 4:end]))
            position = end + 3
            continue

        # Doctype / processing instruction: skip to '>'
        if markup.startswith("<!", lt) or markup.startswith("<?", lt):
            end = markup.find(">", lt)
            position = length if end == -1 else end + 1
            continue

        gt = markup.find(">", lt)
        if gt == -1:
            # Trailing '<' garbage: treat as text.
            flush_text(markup[lt:])
            break
        tag_body = markup[lt + 1:gt].strip()
        position = gt + 1

        if not tag_body:
            continue

        if tag_body.startswith("/"):
            _handle_close_tag(stack, tag_body[1:].strip().lower())
            continue

        self_closing = tag_body.endswith("/")
        if self_closing:
            tag_body = tag_body[:-1].rstrip()
        name_match = re.match(r"[a-zA-Z][-a-zA-Z0-9_:]*", tag_body)
        if not name_match:
            # '<' followed by a non-tag (e.g. "< 5"): treat literally.
            flush_text(markup[lt:gt + 1])
            continue
        tag = name_match.group(0).lower()
        attrs = _parse_attributes(tag_body[name_match.end():])

        closers = IMPLICIT_CLOSERS.get(tag)
        if closers:
            while len(stack) > 1 and stack[-1].tag in closers:
                stack.pop()

        element = Element(tag, attrs)
        stack[-1].append(element)

        if self_closing or tag in VOID_ELEMENTS:
            continue

        if tag in RAW_TEXT_ELEMENTS:
            close = markup.lower().find(f"</{tag}", position)
            if close == -1:
                element.append(TextNode(markup[position:]))
                break
            element.append(TextNode(markup[position:close]))
            end = markup.find(">", close)
            position = length if end == -1 else end + 1
            continue

        stack.append(element)

    return root


def _handle_close_tag(stack: list[Element], tag: str) -> None:
    """Pop the stack to the nearest matching open tag; ignore if absent."""
    for depth in range(len(stack) - 1, 0, -1):
        if stack[depth].tag == tag:
            del stack[depth:]
            return
    # No matching open tag: tolerate and ignore.



"""A small, tolerant HTML parser and DOM.

The paper's Cohera Connect wraps supplier *web sites*: wrappers "can operate
either on regular expressions or by navigating the Document Object Model
(DOM) corresponding to a document" (§4).  Real supplier HTML is messy --
unclosed tags, unquoted attributes, inconsistent casing -- so this parser is
deliberately tolerant: it never raises on malformed markup, it recovers the
most plausible tree, exactly what a commercial screen-scraper needs.

Use :func:`parse_html` to get an :class:`~repro.htmlkit.dom.Element` tree,
then navigate with ``find``/``find_all``/``select``.
"""

from repro.htmlkit.dom import Comment, Element, Node, TextNode
from repro.htmlkit.parser import parse_html

__all__ = ["Comment", "Element", "Node", "TextNode", "parse_html"]

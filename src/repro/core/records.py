"""Tables: the unit of content flowing through the system.

A :class:`Table` binds a :class:`~repro.core.schema.Schema` to a list of
positional rows.  Connectors emit tables, the workbench transforms tables,
and the federation's physical operators produce and consume tables.

Rows are stored as tuples for compactness; :class:`Row` offers a dict-like
view when name-based access is more readable.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.errors import SchemaError
from repro.core.schema import Schema


class Row(Mapping[str, Any]):
    """An immutable, name-addressable view over one positional row."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Sequence[Any]) -> None:
        self._schema = schema
        self._values = tuple(values)

    def __getitem__(self, name: str) -> Any:
        return self._values[self._schema.index_of(name)]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.field_names)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values_tuple(self) -> tuple[Any, ...]:
        return self._values

    @property
    def schema(self) -> Schema:
        return self._schema

    def to_dict(self) -> dict[str, Any]:
        return dict(zip(self._schema.field_names, self._values))

    def __repr__(self) -> str:
        return f"Row({self.to_dict()!r})"


class Table:
    """A schema plus an ordered list of conforming rows.

    Construction validates every row against the schema (catching type
    drift at subsystem boundaries, where it is cheap to diagnose).  Use
    ``validate=False`` only on hot internal paths that construct rows from
    already-validated tables.
    """

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Sequence[Any]] = (),
        validate: bool = True,
    ) -> None:
        self.schema = schema
        self.rows: list[tuple[Any, ...]] = [tuple(r) for r in rows]
        if validate:
            for row in self.rows:
                schema.validate_row(row)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_dicts(cls, schema: Schema, dicts: Iterable[Mapping[str, Any]]) -> "Table":
        """Build a table from mappings; missing keys become None."""
        names = schema.field_names
        rows = [tuple(d.get(name) for name in names) for d in dicts]
        return cls(schema, rows)

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        for values in self.rows:
            yield Row(self.schema, values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.schema.field_names == other.schema.field_names and self.rows == other.rows

    def column(self, name: str) -> list[Any]:
        """Return all values of one column, in row order."""
        index = self.schema.index_of(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.field_names
        return [dict(zip(names, row)) for row in self.rows]

    # -- relational-ish operations used throughout the system ---------------

    def project(self, names: Sequence[str]) -> "Table":
        """Return a table keeping only the columns in ``names``."""
        indexes = [self.schema.index_of(n) for n in names]
        projected = Table(self.schema.project(names), validate=False)
        projected.rows = [tuple(row[i] for i in indexes) for row in self.rows]
        return projected

    def where(self, predicate: Callable[[Row], bool]) -> "Table":
        """Return a table with only rows satisfying ``predicate``."""
        kept = Table(self.schema, validate=False)
        kept.rows = [
            values for values in self.rows if predicate(Row(self.schema, values))
        ]
        return kept

    def extended(self, table_name: str | None = None) -> "Table":
        """Return a shallow copy (rows shared) optionally renaming the schema."""
        copy = Table(
            Schema(table_name or self.schema.name, self.schema.fields),
            validate=False,
        )
        copy.rows = list(self.rows)
        return copy

    def union_all(self, other: "Table") -> "Table":
        """Concatenate two union-compatible tables."""
        if not self.schema.union_compatible(other.schema):
            raise SchemaError(
                f"tables {self.schema.name!r} and {other.schema.name!r} "
                "are not union-compatible"
            )
        combined = Table(self.schema, validate=False)
        combined.rows = self.rows + other.rows
        return combined

    def sorted_by(self, name: str, descending: bool = False) -> "Table":
        """Return a copy sorted by one column (None sorts first)."""
        index = self.schema.index_of(name)
        ordered = Table(self.schema, validate=False)
        ordered.rows = sorted(
            self.rows,
            key=lambda row: (row[index] is not None, row[index]),
            reverse=descending,
        )
        return ordered

    def limit(self, n: int) -> "Table":
        """Return a copy with at most the first ``n`` rows."""
        if n < 0:
            raise ValueError(f"negative limit {n!r}")
        head = Table(self.schema, validate=False)
        head.rows = self.rows[:n]
        return head

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={len(self.rows)})"

"""The Cohera analog: one object wiring Connect + Workbench + Integrate.

:class:`ContentIntegrationSystem` is the highest-level API of the
reproduction and the entry point the examples use.  A typical integrator
session:

1. :meth:`add_compute_sites` -- stand up the federation's machines.
2. :meth:`register_supplier` / :meth:`scrape_supplier` -- wrap each
   supplier's (simulated) web site and pull their raw catalog.
3. :meth:`normalize` -- run the raw rows through a workbench pipeline
   (currency to USD, canonical columns) with lineage.
4. :meth:`publish_catalog` -- fragment/replicate the integrated catalog
   across sites and build its text index.
5. :meth:`query` / :meth:`search` / :meth:`xpath_query` /
   :meth:`syndicate` -- serve buyers.
"""

from __future__ import annotations

from typing import Sequence

from repro.connect.simweb import SimulatedWeb, WebClient
from repro.connect.sitegen import SupplierSite
from repro.connect.wrapper import (
    DomWrapper,
    PageWrapper,
    RegexWrapper,
    WebSourceWrapper,
    int_coercer,
)
from repro.core.errors import QueryError, WrapperError
from repro.core.records import Table
from repro.core.schema import DataType, Field, Schema
from repro.federation.catalog import FederationCatalog
from repro.federation.engine import FederatedEngine
from repro.ir.search import SearchMode
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.sim.rng import RngRegistry
from repro.workbench.normalize import CurrencyNormalizer, parse_price
from repro.workbench.syndication import Recipient, Syndicator
from repro.workbench.synonyms import SynonymTable
from repro.workbench.taxonomy import Taxonomy
from repro.workbench.transforms import (
    AddColumn,
    CastColumn,
    FilterRows,
    MapColumn,
    Pipeline,
)

CATALOG_SCHEMA = Schema(
    "catalog",
    (
        Field("sku", DataType.STRING, nullable=False),
        Field("name", DataType.STRING),
        Field("price", DataType.FLOAT),
        Field("currency", DataType.STRING),
        Field("qty", DataType.INTEGER),
        Field("supplier", DataType.STRING),
    ),
)


def default_wrapper(layout: str) -> PageWrapper:
    """The trained wrapper for each generated supplier-site layout."""
    if layout == "table":
        return DomWrapper(
            "tr.item",
            {"sku": "td.sku", "name": "td.name", "price": "td.price", "qty": "td.qty"},
        )
    if layout == "divs":
        return DomWrapper(
            "div.product",
            {"sku": "b.sku", "name": "div.title", "price": "div.cost", "qty": "i.qty"},
        )
    if layout == "dl":
        return RegexWrapper(
            r"<dt class='sku'>(?P<sku>[^<]+)</dt>"
            r"<dd><span class='name'>(?P<name>[^<]+)</span>[^<]*"
            r"<span class='price'>(?P<price>[^<]+)</span>[^<]*"
            r"<span class='qty'>(?P<qty>[^<]+)</span>"
        )
    raise WrapperError(f"no trained wrapper for layout {layout!r}")


class ContentIntegrationSystem:
    """The full content integration stack behind one facade."""

    def __init__(self, seed: int = 0) -> None:
        self.clock = SimClock()
        self.rng = RngRegistry(seed)
        self.loop = EventLoop(self.clock)
        self.web = SimulatedWeb(self.clock)
        self.catalog = FederationCatalog(self.clock)
        self.engine = FederatedEngine(self.catalog)
        self.suppliers: dict[str, SupplierSite] = {}
        self.synonyms: SynonymTable | None = None
        self.taxonomy: Taxonomy | None = None
        self.currency = CurrencyNormalizer(
            "USD", {"FRF": 0.14, "EUR": 1.1, "GBP": 1.5}
        )
        self.syndicator = Syndicator()

    # -- machines ------------------------------------------------------------

    def add_compute_sites(self, count: int, prefix: str = "site", **site_kwargs) -> list[str]:
        names = [f"{prefix}-{i:03d}" for i in range(count)]
        for name in names:
            self.catalog.make_site(name, **site_kwargs)
        return names

    # -- Connect ---------------------------------------------------------------

    def register_supplier(self, supplier: SupplierSite) -> None:
        self.web.register(supplier.site)
        self.suppliers[supplier.host] = supplier

    def scrape_supplier(self, host: str, supplier_name: str | None = None) -> Table:
        """Scrape one registered supplier into raw rows (strings + ints)."""
        supplier = self.suppliers.get(host)
        if supplier is None:
            raise QueryError(f"supplier {host!r} is not registered")
        wrapper = WebSourceWrapper(
            supplier_name or host,
            WebClient(self.web),
            supplier.catalog_url(),
            default_wrapper(supplier.layout),
            coercers={"qty": int_coercer},
            login=(
                (supplier.login_url(), {"user": supplier.username,
                                        "password": supplier.password})
                if supplier.requires_login
                else None
            ),
        )
        return wrapper.fetch().table

    def onboard_from_listing(
        self,
        listing,
        credentials: tuple[str, str] | None = None,
    ) -> Table:
        """Scrape and normalize a supplier straight from its registry listing.

        The high-level supplier-enablement path (§3.1 C2/C4): the UDDI-like
        :class:`~repro.connect.registry.SupplierListing` carries everything
        needed -- catalog URL, layout hint, currency -- so onboarding is one
        call instead of a hand-written wrapper plus transformations.
        ``credentials`` is (user, password) for login-protected sites.
        """
        login = None
        if listing.requires_login:
            if credentials is None:
                raise WrapperError(
                    f"listing {listing.supplier!r} requires login credentials"
                )
            login = (
                f"http://{listing.host}/login",
                {"user": credentials[0], "password": credentials[1]},
            )
        wrapper = WebSourceWrapper(
            listing.supplier,
            WebClient(self.web),
            listing.catalog_url,
            default_wrapper(listing.layout_hint),
            coercers={"qty": int_coercer},
            login=login,
        )
        raw = wrapper.fetch().table
        return self.normalize(raw, listing.supplier, listing.currency)

    # -- Workbench ---------------------------------------------------------------

    def normalization_pipeline(self, supplier_name: str, default_currency: str) -> Pipeline:
        """The standard raw-scrape -> canonical-catalog pipeline."""
        currency = self.currency

        return Pipeline(
            f"normalize-{supplier_name}",
            [
                CastColumn(
                    "price",
                    DataType.FLOAT,
                    converter=lambda text: currency.normalize(
                        parse_price(str(text), default_currency)
                    ).amount,
                ),
                MapColumn("name", lambda n: " ".join(str(n).lower().split()),
                          description="lowercase+squeeze(name)"),
                AddColumn("currency", DataType.STRING, lambda row: "USD",
                          description="constant currency=USD"),
                AddColumn("supplier", DataType.STRING,
                          lambda row, name=supplier_name: name,
                          description=f"constant supplier={supplier_name}"),
                FilterRows(lambda row: row["sku"] is not None and row["sku"] != "",
                           "require sku"),
            ],
        )

    def normalize(self, raw: Table, supplier_name: str, default_currency: str = "USD") -> Table:
        result = self.normalization_pipeline(supplier_name, default_currency).run(
            raw, source_name=supplier_name
        )
        ordered = result.table.project(
            ["sku", "name", "price", "currency", "qty", "supplier"]
        )
        return ordered.extended("catalog")

    # -- Integrate -----------------------------------------------------------------

    def publish_catalog(
        self,
        table: Table,
        fragment_count: int,
        placement: Sequence[Sequence[str]],
        table_name: str = "catalog",
    ) -> None:
        """Fragment/replicate the integrated catalog and index its text."""
        named = table.extended(table_name)
        self.catalog.load_fragmented(named, fragment_count, placement)
        self.catalog.build_text_index(table_name, "name", named, "sku")
        if self.synonyms is not None or self.taxonomy is not None:
            self.engine.set_vocabulary(
                synonyms=self.synonyms,
                taxonomy_expander=(
                    self.taxonomy.expand_query if self.taxonomy is not None else None
                ),
            )

    def set_vocabulary(self, synonyms: SynonymTable | None, taxonomy: Taxonomy | None) -> None:
        self.synonyms = synonyms
        self.taxonomy = taxonomy
        self.engine.set_vocabulary(
            synonyms=synonyms,
            taxonomy_expander=taxonomy.expand_query if taxonomy is not None else None,
        )

    def query(self, sql: str, **kwargs):
        return self.engine.query(sql, **kwargs)

    def search(self, query_text: str, mode: SearchMode = SearchMode.FULL,
               table_name: str = "catalog", limit: int = 10):
        return self.engine.search(table_name, query_text, mode=mode, limit=limit)

    def xpath_query(self, table_name: str, path: str):
        return self.engine.xpath_query(table_name, path)

    # -- Syndication --------------------------------------------------------------------

    def syndicate(self, recipient: Recipient, table_name: str = "catalog"):
        """Publish the integrated catalog to one buyer under the rules."""
        result = self.engine.query(f"select * from {table_name}")
        return self.syndicator.syndicate(result.table, recipient)

"""Typed relational schemas.

Characteristic 3 requires a content integrator to support "a multitude of
schemas" rather than one rigid master schema, so schemas here are cheap,
first-class values: they can be projected, renamed, extended and compared,
and every :class:`~repro.core.records.Table` carries one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.errors import SchemaError
from repro.core.values import Money


class DataType(enum.Enum):
    """Logical column types understood across the whole system."""

    STRING = "string"
    TEXT = "text"  # unstructured prose; eligible for IR indexing
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    MONEY = "money"
    TIMESTAMP = "timestamp"  # simulated seconds (float)

    def validate(self, value: Any) -> bool:
        """Return True if ``value`` conforms to this type (None always does)."""
        if value is None:
            return True
        if self in (DataType.STRING, DataType.TEXT):
            return isinstance(value, str)
        if self is DataType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self in (DataType.FLOAT, DataType.TIMESTAMP):
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.BOOLEAN:
            return isinstance(value, bool)
        if self is DataType.MONEY:
            return isinstance(value, Money)
        raise AssertionError(f"unhandled data type {self!r}")


@dataclass(frozen=True)
class Field:
    """One named, typed column of a schema."""

    name: str
    dtype: DataType
    nullable: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid field name {self.name!r}")

    def renamed(self, new_name: str) -> "Field":
        """Return a copy of this field with a different name."""
        return Field(new_name, self.dtype, self.nullable, self.description)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named fields.

    Schemas are immutable; all mutating-looking operations return new
    schemas.  Field order matters: it defines the positional layout of rows
    in :class:`~repro.core.records.Table`.
    """

    name: str
    fields: tuple[Field, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", tuple(self.fields))
        seen: set[str] = set()
        for f in self.fields:
            if f.name in seen:
                raise SchemaError(f"duplicate field {f.name!r} in schema {self.name!r}")
            seen.add(f.name)

    # -- lookup ----------------------------------------------------------

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def field_named(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise SchemaError(f"schema {self.name!r} has no field {name!r}")

    def index_of(self, name: str) -> int:
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise SchemaError(f"schema {self.name!r} has no field {name!r}")

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    # -- algebra ----------------------------------------------------------

    def project(self, names: Sequence[str], new_name: str | None = None) -> "Schema":
        """Return a schema keeping only ``names``, in the given order."""
        return Schema(
            new_name or self.name,
            tuple(self.field_named(n) for n in names),
        )

    def rename_fields(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with fields renamed per ``mapping`` (old -> new)."""
        missing = set(mapping) - set(self.field_names)
        if missing:
            raise SchemaError(f"cannot rename missing fields {sorted(missing)!r}")
        return Schema(
            self.name,
            tuple(f.renamed(mapping.get(f.name, f.name)) for f in self.fields),
        )

    def extend(self, new_fields: Iterable[Field], new_name: str | None = None) -> "Schema":
        """Return a schema with ``new_fields`` appended."""
        return Schema(new_name or self.name, self.fields + tuple(new_fields))

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a schema without the fields in ``names``."""
        drop_set = set(names)
        missing = drop_set - set(self.field_names)
        if missing:
            raise SchemaError(f"cannot drop missing fields {sorted(missing)!r}")
        return Schema(self.name, tuple(f for f in self.fields if f.name not in drop_set))

    def prefixed(self, prefix: str) -> "Schema":
        """Return a schema with every field name prefixed (for joins)."""
        return Schema(
            self.name,
            tuple(f.renamed(f"{prefix}{f.name}") for f in self.fields),
        )

    def union_compatible(self, other: "Schema") -> bool:
        """True when the two schemas have the same field names and types."""
        return self.field_names == other.field_names and tuple(
            f.dtype for f in self.fields
        ) == tuple(f.dtype for f in other.fields)

    # -- validation --------------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> None:
        """Raise :class:`SchemaError` unless ``row`` conforms to this schema."""
        if len(row) != len(self.fields):
            raise SchemaError(
                f"row has {len(row)} values, schema {self.name!r} "
                f"has {len(self.fields)} fields"
            )
        for f, value in zip(self.fields, row):
            if value is None and not f.nullable:
                raise SchemaError(f"field {f.name!r} is not nullable")
            if not f.dtype.validate(value):
                raise SchemaError(
                    f"value {value!r} does not conform to "
                    f"{f.dtype.value} field {f.name!r}"
                )

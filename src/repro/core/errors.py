"""Exception hierarchy for the content integration system.

Every error raised by :mod:`repro` derives from
:class:`ContentIntegrationError`, so applications can catch one base class at
their integration boundary while tests assert on precise subclasses.
"""

from __future__ import annotations


class ContentIntegrationError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ContentIntegrationError):
    """A schema is malformed, or data does not conform to its schema."""


class QueryError(ContentIntegrationError):
    """A query is syntactically or semantically invalid."""


class WrapperError(ContentIntegrationError):
    """A wrapper failed to fetch or parse content from a source."""


class SourceUnavailableError(ContentIntegrationError):
    """A federated data source (site or web endpoint) is down.

    Carries the source name so availability experiments can attribute the
    failure.
    """

    def __init__(self, source: str, message: str = "") -> None:
        self.source = source
        super().__init__(message or f"source {source!r} is unavailable")


class TransformError(ContentIntegrationError):
    """A workbench transformation could not be applied to a value or row."""


class TaxonomyError(ContentIntegrationError):
    """A taxonomy operation referenced a missing or conflicting category."""


class SyndicationError(ContentIntegrationError):
    """A syndication rule set is inconsistent or a recipient is unknown."""

"""Exception hierarchy for the content integration system.

Every error raised by :mod:`repro` derives from
:class:`ContentIntegrationError`, so applications can catch one base class at
their integration boundary while tests assert on precise subclasses.
"""

from __future__ import annotations


class ContentIntegrationError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ContentIntegrationError):
    """A schema is malformed, or data does not conform to its schema."""


class QueryError(ContentIntegrationError):
    """A query is syntactically or semantically invalid."""


class WrapperError(ContentIntegrationError):
    """A wrapper failed to fetch or parse content from a source."""


class SourceUnavailableError(ContentIntegrationError):
    """A federated data source (site or web endpoint) is down.

    Carries the source name -- and, when known, the site and fragment the
    failed access targeted -- so availability experiments and the failover
    machinery can attribute the failure precisely.
    """

    def __init__(
        self,
        source: str,
        message: str = "",
        site: "str | None" = None,
        fragment: "str | None" = None,
    ) -> None:
        self.source = source
        self.site = site if site is not None else source
        self.fragment = fragment
        super().__init__(message or f"source {source!r} is unavailable")


class PartialFailureError(QueryError):
    """A query could not reach every fragment it needed.

    Raised by the executor when, even after failover and retries, some
    fragment has no live replica (and the caller did not opt into a
    degraded answer with ``degraded_ok=True``).  Structured so callers can
    see exactly *what* is unreachable instead of a bare source error:

    * ``unreachable_fragments`` -- ``"table/fragment_id"`` names;
    * ``dead_sites`` -- the sites whose failure caused it;
    * ``retries_used`` -- failover attempts spent before giving up.
    """

    def __init__(
        self,
        unreachable_fragments: "list[str]",
        dead_sites: "list[str]",
        retries_used: int = 0,
        message: str = "",
    ) -> None:
        self.unreachable_fragments = list(unreachable_fragments)
        self.dead_sites = list(dead_sites)
        self.retries_used = retries_used
        super().__init__(
            message
            or (
                f"fragments {self.unreachable_fragments} unreachable "
                f"(dead sites: {self.dead_sites}, "
                f"retries used: {retries_used}); "
                "pass degraded_ok=True for a partial answer"
            )
        )


class QueryRejectedError(QueryError):
    """Admission control shed a query at submit time.

    Raised by the workload manager when a tenant's bounded queue is already
    full (load shedding keeps overload from growing queues without limit).
    Carries the tenant and the limit that was hit so callers can back off or
    resubmit under a different tenant.
    """

    def __init__(self, tenant: str, queue_limit: int, message: str = "") -> None:
        self.tenant = tenant
        self.queue_limit = queue_limit
        super().__init__(
            message
            or (
                f"tenant {tenant!r} queue is full "
                f"(queue_limit={queue_limit}); query rejected"
            )
        )


class QueryTimeoutError(QueryError):
    """A queued query's deadline expired before a slot freed.

    Raised (via the query handle) by the workload manager when a submission
    waited longer than its ``deadline`` without being dispatched.  Carries
    the tenant, the deadline, and how long the query actually waited.
    """

    def __init__(
        self,
        tenant: str,
        deadline: float,
        waited: float,
        message: str = "",
    ) -> None:
        self.tenant = tenant
        self.deadline = deadline
        self.waited = waited
        super().__init__(
            message
            or (
                f"query for tenant {tenant!r} timed out in queue after "
                f"{waited:.3f}s (deadline {deadline:.3f}s)"
            )
        )


class TransformError(ContentIntegrationError):
    """A workbench transformation could not be applied to a value or row."""


class TaxonomyError(ContentIntegrationError):
    """A taxonomy operation referenced a missing or conflicting category."""


class SyndicationError(ContentIntegrationError):
    """A syndication rule set is inconsistent or a recipient is unknown."""

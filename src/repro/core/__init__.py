"""Core data model: schemas, records, tables and the system facade.

The paper's §3.1 themes call for "a simple, powerful framework for internal
content representation at the integrator".  This package is that framework:

* :class:`~repro.core.schema.Schema` / :class:`~repro.core.schema.Field` --
  typed relational schemas with projection/rename algebra.
* :class:`~repro.core.records.Table` -- an ordered collection of typed rows
  bound to a schema; the unit of content flowing between connectors, the
  workbench and the federation.
* :class:`~repro.core.values.Money` -- a currency-tagged amount, the canonical
  example of semantic heterogeneity in the paper (dollars vs francs).
* :class:`~repro.core.system.ContentIntegrationSystem` -- the top-level
  facade wiring Connect + Workbench + Integrate together (the "Cohera"
  analog).
"""

from repro.core.errors import (
    ContentIntegrationError,
    QueryError,
    SchemaError,
    SourceUnavailableError,
    TransformError,
    WrapperError,
)
from repro.core.records import Row, Table
from repro.core.schema import DataType, Field, Schema
from repro.core.values import Money

__all__ = [
    "ContentIntegrationError",
    "QueryError",
    "SchemaError",
    "SourceUnavailableError",
    "TransformError",
    "WrapperError",
    "Row",
    "Table",
    "DataType",
    "Field",
    "Schema",
    "Money",
]

"""Value types with cross-enterprise semantics.

The paper's Characteristic 2 opens with the canonical example: "a US supplier
quotes product prices in dollars, while a French supplier quotes prices in
francs".  :class:`Money` makes the currency explicit so the workbench can
normalize it, and refuses arithmetic across currencies so heterogeneity can
never be silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import TransformError


@dataclass(frozen=True, order=False)
class Money:
    """An amount tagged with its ISO-4217-style currency code.

    Comparison and arithmetic are only defined within a single currency;
    mixing currencies raises :class:`~repro.core.errors.TransformError`.
    Use :meth:`convert` (with an explicit rate) or the workbench's
    :class:`~repro.workbench.normalize.CurrencyNormalizer` to cross
    currencies.
    """

    amount: float
    currency: str

    def __post_init__(self) -> None:
        if not self.currency or not self.currency.isalpha():
            raise TransformError(f"invalid currency code {self.currency!r}")
        object.__setattr__(self, "currency", self.currency.upper())

    def _check_currency(self, other: "Money", op: str) -> None:
        if self.currency != other.currency:
            raise TransformError(
                f"cannot {op} {self.currency} and {other.currency}; "
                "normalize currencies first"
            )

    def __add__(self, other: "Money") -> "Money":
        self._check_currency(other, "add")
        return Money(self.amount + other.amount, self.currency)

    def __sub__(self, other: "Money") -> "Money":
        self._check_currency(other, "subtract")
        return Money(self.amount - other.amount, self.currency)

    def __mul__(self, factor: float) -> "Money":
        return Money(self.amount * factor, self.currency)

    __rmul__ = __mul__

    def __lt__(self, other: "Money") -> bool:
        self._check_currency(other, "compare")
        return self.amount < other.amount

    def __le__(self, other: "Money") -> bool:
        self._check_currency(other, "compare")
        return self.amount <= other.amount

    def __gt__(self, other: "Money") -> bool:
        self._check_currency(other, "compare")
        return self.amount > other.amount

    def __ge__(self, other: "Money") -> bool:
        self._check_currency(other, "compare")
        return self.amount >= other.amount

    def convert(self, to_currency: str, rate: float) -> "Money":
        """Return this amount converted at an explicit exchange ``rate``.

        ``rate`` is units of ``to_currency`` per unit of ``self.currency``.
        """
        if rate <= 0:
            raise TransformError(f"non-positive exchange rate {rate!r}")
        return Money(self.amount * rate, to_currency)

    def rounded(self, digits: int = 2) -> "Money":
        """Return the amount rounded to ``digits`` decimal places."""
        return Money(round(self.amount, digits), self.currency)

    def __str__(self) -> str:
        return f"{self.amount:.2f} {self.currency}"

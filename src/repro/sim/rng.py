"""Named, independently seeded random streams.

A simulation touches randomness in many places: synthetic catalog content,
site failure times, query arrival order, price volatility.  If they all drew
from one shared generator, adding a draw in one subsystem would silently
reshuffle every other subsystem.  :class:`RngRegistry` avoids that by deriving
an independent :class:`random.Random` per dotted name from a single root
seed, so ``registry.stream("hotels.prices")`` is stable no matter what the
rest of the simulation does.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``.

    The derivation hashes the pair, so distinct names yield (with
    overwhelming probability) independent streams, and the mapping is stable
    across processes and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named deterministic random streams.

    >>> rng = RngRegistry(seed=42)
    >>> a = rng.stream("suppliers")
    >>> b = rng.stream("failures")
    >>> a is rng.stream("suppliers")   # streams are cached per name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) random stream for a dotted ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose root seed is derived from ``name``.

        Useful when handing a whole subsystem its own namespace of streams.
        """
        return RngRegistry(seed=derive_seed(self.seed, name))

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed!r}, streams={sorted(self._streams)!r})"

"""Lightweight metrics used by experiments to read out simulation results.

Benchmarks create one :class:`MetricsRegistry` per run, components record
into it, and the bench prints the registry summary as its result table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count (queries served, pages fetched...)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that may move in either direction."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass
class Histogram:
    """A collection of observations with summary statistics.

    Keeps all samples (simulations here are small enough) so experiments can
    compute exact percentiles.
    """

    name: str
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return self.total / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (0 <= q <= 100), nearest-rank."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q!r} out of range [0, 100]")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((s - mean) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(variance)


class MetricsRegistry:
    """A namespace of counters, gauges and histograms for one run."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def snapshot(self) -> dict[str, float]:
        """Return a flat ``{name: value}`` view (histograms report means)."""
        values: dict[str, float] = {}
        for name, counter in self._counters.items():
            values[name] = counter.value
        for name, gauge in self._gauges.items():
            values[name] = gauge.value
        for name, histogram in self._histograms.items():
            values[f"{name}.count"] = float(histogram.count)
            values[f"{name}.mean"] = histogram.mean
        return values

"""Lightweight metrics used by experiments to read out simulation results.

Benchmarks create one :class:`MetricsRegistry` per run, components record
into it, and the bench prints the registry summary as its result table.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

# Histograms keep at most this many raw samples by default.  Large enough
# that percentile error is negligible for experiment readouts, small enough
# that millions of observations (e.g. per-query latencies in the workload
# benchmarks) cost bounded memory.
DEFAULT_RESERVOIR_SIZE = 4096


@dataclass
class Counter:
    """A monotonically increasing count (queries served, pages fetched...)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that may move in either direction."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass
class Histogram:
    """A collection of observations with summary statistics.

    Count, total, mean, min, max and stddev are **exact** over every
    observation (maintained as running aggregates).  Raw samples are kept in
    a bounded **reservoir** (Vitter's Algorithm R, ``capacity`` samples, at
    least :data:`DEFAULT_RESERVOIR_SIZE` by default): up to ``capacity``
    observations the reservoir holds everything and percentiles are exact;
    beyond it, ``percentile`` is computed over a uniform random sample of
    everything seen, so it is an approximation whose error shrinks with
    capacity.  The reservoir's RNG is seeded from the histogram's name, so
    identical runs produce identical reservoirs.
    """

    name: str
    capacity: int = DEFAULT_RESERVOIR_SIZE
    samples: list[float] = field(default_factory=list)  # the reservoir

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"histogram {self.name!r} needs capacity >= 1")
        self._rng = random.Random(self.name)
        self._count = 0
        self._total = 0.0
        self._sumsq = 0.0
        self._min = math.nan
        self._max = math.nan
        # Samples passed at construction are replayed as observations so the
        # exact aggregates stay in sync with the reservoir.
        seeded, self.samples = list(self.samples), []
        for value in seeded:
            self.observe(value)

    def observe(self, value: float) -> None:
        self._count += 1
        self._total += value
        self._sumsq += value * value
        if self._count == 1:
            self._min = value
            self._max = value
        else:
            self._min = min(self._min, value)
            self._max = max(self._max, value)
        if len(self.samples) < self.capacity:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.capacity:
                self.samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if not self._count:
            return math.nan
        return self._total / self._count

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (0 <= q <= 100), nearest-rank.

        Exact while ``count <= capacity``; a reservoir-sample approximation
        beyond that.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q!r} out of range [0, 100]")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    @property
    def stddev(self) -> float:
        if self._count < 2:
            return 0.0
        mean = self.mean
        variance = max(0.0, (self._sumsq - self._count * mean * mean)) / (
            self._count - 1
        )
        return math.sqrt(variance)


class MetricsRegistry:
    """A namespace of counters, gauges and histograms for one run."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, capacity: int | None = None) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(
                name,
                capacity if capacity is not None else DEFAULT_RESERVOIR_SIZE,
            )
        return self._histograms[name]

    def snapshot(self) -> dict[str, float]:
        """Return a flat ``{name: value}`` view (histograms report means)."""
        values: dict[str, float] = {}
        for name, counter in self._counters.items():
            values[name] = counter.value
        for name, gauge in self._gauges.items():
            values[name] = gauge.value
        for name, histogram in self._histograms.items():
            values[f"{name}.count"] = float(histogram.count)
            values[f"{name}.mean"] = histogram.mean
        return values

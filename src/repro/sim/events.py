"""A discrete-event scheduler over :class:`~repro.sim.clock.SimClock`.

Recurring background activities -- warehouse refreshes, site failures and
repairs, supplier price updates -- are modeled as events on this loop.  The
loop pops events in timestamp order, advances the shared clock to each
event's time, and invokes its callback.  Callbacks may schedule further
events (that is how periodic activities recur).

Ties on timestamp are broken by insertion order: every event carries a
monotonically increasing sequence number and the heap orders on
``(time, sequence)``, so equal-timestamp events fire strictly FIFO -- even
events scheduled *during* a callback at the same instant run after everything
already queued for that instant.  The workload manager's schedulers depend on
this (a completion that frees a slot and the dispatch it triggers must
interleave identically under identical seeds); the guarantee is pinned by
regression tests in ``tests/test_sim_clock_events.py``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.clock import SimClock


@dataclass(order=True)
class ScheduledEvent:
    """An event queued on the loop; ordered by ``(time, sequence)``."""

    time: float
    sequence: int
    name: str = field(compare=False)
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True


class EventLoop:
    """A deterministic discrete-event loop bound to a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._queue: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self.fired = 0

    def schedule_at(
        self, time: float, callback: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.clock.now():
            raise ValueError(
                f"cannot schedule event {name!r} at {time!r}, "
                f"clock is already at {self.clock.now()!r}"
            )
        event = ScheduledEvent(time, next(self._sequence), name, callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: float, callback: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r} for event {name!r}")
        return self.schedule_at(self.clock.now() + delay, callback, name)

    def schedule_every(
        self, interval: float, callback: Callable[[], None], name: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback`` to recur every ``interval`` seconds.

        The first firing is one interval from now.  Cancelling the returned
        event stops the *next* firing only; use the wrapper returned by each
        subsequent firing via ``callback`` semantics if finer control is
        needed (the common idiom is to cancel and reschedule).
        """
        if interval <= 0:
            raise ValueError(f"non-positive interval {interval!r} for {name!r}")

        def fire_and_reschedule() -> None:
            callback()
            self.schedule_after(interval, fire_and_reschedule, name)

        return self.schedule_after(interval, fire_and_reschedule, name)

    def pending(self) -> int:
        """Return the number of live (non-cancelled) events queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def run_until(self, end_time: float) -> int:
        """Fire all events with ``time <= end_time``; return the count fired.

        The clock finishes exactly at ``end_time`` even if the last event is
        earlier, so callers can measure rates over a fixed window.
        """
        fired = 0
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            # Other actors (e.g. queries) may have advanced the shared clock
            # past this event's time; a late event fires immediately.
            if event.time > self.clock.now():
                self.clock.advance_to(event.time)
            event.callback()
            fired += 1
        if end_time > self.clock.now():
            self.clock.advance_to(end_time)
        self.fired += fired
        return fired

    def run_next(self) -> ScheduledEvent | None:
        """Fire the single next live event, or return None if queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time > self.clock.now():
                self.clock.advance_to(event.time)
            event.callback()
            self.fired += 1
            return event
        return None

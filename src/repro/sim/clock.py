"""A logical simulation clock.

All latency, staleness and uptime measurements in the reproduction are taken
against a :class:`SimClock` rather than the wall clock.  Components that
"spend time" (a wrapper fetching a page, a site executing an operator) call
:meth:`SimClock.advance` with the simulated cost; observers read
:meth:`SimClock.now`.
"""

from __future__ import annotations


class ClockError(Exception):
    """Raised on invalid clock manipulation (e.g. moving time backwards)."""


class SimClock:
    """A monotonically non-decreasing logical clock, measured in seconds.

    The clock starts at ``start`` (default ``0.0``).  Time only moves when a
    component explicitly advances it, which keeps simulations deterministic.

    >>> clock = SimClock()
    >>> clock.advance(2.5)
    2.5
    >>> clock.now()
    2.5
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time.

        ``seconds`` must be non-negative; a zero advance is allowed (it is
        how zero-cost bookkeeping operations express "no time passed").
        """
        if seconds < 0:
            raise ClockError(f"cannot advance clock by negative {seconds!r}s")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute ``timestamp``.

        Raises :class:`ClockError` if ``timestamp`` is in the past; advancing
        to the current time is a no-op.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {timestamp!r}"
            )
        self._now = float(timestamp)
        return self._now

    def elapsed_since(self, timestamp: float) -> float:
        """Return seconds elapsed between ``timestamp`` and now."""
        return self._now - timestamp

    def __repr__(self) -> str:
        return f"SimClock(now={self._now!r})"

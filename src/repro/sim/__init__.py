"""Deterministic simulation substrate.

Every component in :mod:`repro` that needs time or randomness gets it from
here, never from the wall clock or the global :mod:`random` state.  This is
what makes the benchmarks in ``benchmarks/`` reproducible bit-for-bit: a
simulation is fully determined by its seed and its schedule of events.

The substrate has four pieces:

* :class:`~repro.sim.clock.SimClock` -- a logical clock measured in seconds.
  Components *advance* it explicitly; nothing ever blocks.
* :class:`~repro.sim.rng.RngRegistry` -- a tree of named, independently
  seeded random streams, so adding randomness to one subsystem does not
  perturb another.
* :class:`~repro.sim.events.EventLoop` -- a discrete-event scheduler driving
  recurring activities (warehouse refreshes, failures, price updates).
* :class:`~repro.sim.metrics.MetricsRegistry` -- counters / gauges /
  histograms that experiments read out at the end of a run.
"""

from repro.sim.clock import SimClock
from repro.sim.events import EventLoop, ScheduledEvent
from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "SimClock",
    "EventLoop",
    "ScheduledEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RngRegistry",
    "derive_seed",
]

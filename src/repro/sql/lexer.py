"""The SQL lexer.

Produces a flat token stream for the recursive-descent parser.  Keywords are
case-insensitive; identifiers keep their original case (they are matched
case-sensitively against schema field names, which this codebase keeps
lowercase).  String literals use single quotes with ``''`` escaping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = frozenset(
    {
        "select", "from", "where", "join", "inner", "left", "outer", "on",
        "as", "and", "or",
        "not", "group", "by", "having", "order", "asc", "desc", "limit",
        "like", "in", "between", "contains", "is", "null", "true", "false",
        "distinct",
    }
)

PUNCTUATION = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+",
               "-", "/", ".", "?")


class SqlLexError(Exception):
    """Raised when the query contains characters the lexer cannot consume."""


@dataclass(frozen=True)
class Token:
    kind: str  # "keyword" | "ident" | "number" | "string" | "punct" | "eof"
    value: str
    position: int


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?([eE][+-]?\d+)?")


def tokenize_sql(text: str) -> list[Token]:
    """Tokenize ``text``; always ends with an ``eof`` token."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char == "-" and text.startswith("--", position):
            # Line comment: skip to (not past) the newline, which the
            # whitespace branch then consumes.  Matches the segment
            # scanner in repro.sql.sqltext, so the plan-cache normalizer
            # and the grammar agree on what is commentary.
            end = text.find("\n", position)
            position = length if end < 0 else end
            continue
        if char == "'":
            value, position = _read_string(text, position)
            tokens.append(Token("string", value, position))
            continue
        number_match = _NUMBER_RE.match(text, position)
        if number_match and char.isdigit():
            tokens.append(Token("number", number_match.group(0), position))
            position = number_match.end()
            continue
        ident_match = _IDENT_RE.match(text, position)
        if ident_match:
            word = ident_match.group(0)
            if word.lower() in KEYWORDS:
                tokens.append(Token("keyword", word.lower(), position))
            else:
                tokens.append(Token("ident", word, position))
            position = ident_match.end()
            continue
        for punct in PUNCTUATION:
            if text.startswith(punct, position):
                tokens.append(Token("punct", punct, position))
                position += len(punct)
                break
        else:
            raise SqlLexError(f"unexpected character {char!r} at offset {position}")
    tokens.append(Token("eof", "", length))
    return tokens


def _read_string(text: str, position: int) -> tuple[str, int]:
    """Read a single-quoted literal starting at ``position``."""
    assert text[position] == "'"
    pieces = []
    i = position + 1
    while i < len(text):
        char = text[i]
        if char == "'":
            if i + 1 < len(text) and text[i + 1] == "'":
                pieces.append("'")
                i += 2
                continue
            return "".join(pieces), i + 1
        pieces.append(char)
        i += 1
    raise SqlLexError(f"unterminated string literal at offset {position}")

"""Parameter binding for prepared statements.

A statement parsed with ``?`` placeholders carries :class:`~repro.sql.ast.Parameter`
nodes, numbered left to right.  Plans built from such a statement are
*templates*: parse + rewrite + optimize happen once, and each execution
substitutes that call's values with :func:`bind_plan` (or
:func:`bind_statement` for the subquery slow path) into a fresh copy, so
the prepared plan itself stays immutable and reusable.

Parameterized comparisons deliberately do **not** become source-level
pushdown predicates (those carry concrete values the optimizers feed to
zone maps and selectivity estimation); they travel as site filters
instead, which any binding-local conjunct may.  The prepared plan is
therefore a *generic* plan -- sound for every binding, priced without
value-specific pruning -- exactly the classic prepared-statement
trade-off.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.errors import QueryError
from repro.sql.ast import (
    Between,
    BinaryOp,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    JoinClause,
    Like,
    Literal,
    OrderItem,
    Parameter,
    SelectItem,
    SelectStatement,
    UnaryOp,
)
from repro.sql.planner import (
    AggregateNode,
    AggregateSplit,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanGovernance,
    ScanNode,
    SortNode,
)


def count_parameters(statement: SelectStatement) -> int:
    """How many distinct ``?`` placeholders ``statement`` carries."""
    indices: set[int] = set()
    _collect_statement(statement, indices)
    return len(indices)


def statement_has_subqueries(statement: SelectStatement) -> bool:
    """True if any ``IN (SELECT ...)`` appears anywhere in the statement.

    Subquery statements take the prepared slow path: the inner select
    materializes a data-dependent IN list, so the outer plan cannot be
    optimized once and reused -- each execution re-plans from a bound copy
    of the statement.
    """

    def expr_has(expr: Expr | None) -> bool:
        if expr is None:
            return False
        if isinstance(expr, InSubquery):
            return True
        for attr in ("left", "right", "operand", "low", "high"):
            child = getattr(expr, attr, None)
            if child is not None and not isinstance(child, str) and expr_has(child):
                return True
        for item in getattr(expr, "args", ()) or ():
            if expr_has(item):
                return True
        for item in getattr(expr, "items", ()) or ():
            if expr_has(item):
                return True
        return False

    if expr_has(statement.where) or expr_has(statement.having):
        return True
    if any(expr_has(item.expr) for item in statement.items):
        return True
    if any(expr_has(join.condition) for join in statement.joins):
        return True
    if any(expr_has(group) for group in statement.group_by):
        return True
    return any(expr_has(order.expr) for order in statement.order_by)


def _collect_statement(statement: SelectStatement, indices: set[int]) -> None:
    """Collect parameter indices from every expression position."""

    def walk(expr: Expr | None) -> None:
        for parameter in _parameters_in(expr):
            indices.add(parameter.index)

    for item in statement.items:
        walk(item.expr)
    for join in statement.joins:
        walk(join.condition)
    walk(statement.where)
    for group in statement.group_by:
        walk(group)
    walk(statement.having)
    for order in statement.order_by:
        walk(order.expr)


def _parameters_in(expr: Expr | None) -> list[Parameter]:
    found: list[Parameter] = []

    def walk(node: Expr | None) -> None:
        if node is None:
            return
        if isinstance(node, Parameter):
            found.append(node)
            return
        for attr in ("left", "right", "operand", "low", "high"):
            child = getattr(node, attr, None)
            if child is not None and not isinstance(child, str):
                walk(child)
        for item in getattr(node, "args", ()) or ():
            walk(item)
        for item in getattr(node, "items", ()) or ():
            walk(item)
        subquery = getattr(node, "subquery", None)
        if subquery is not None:
            sub_indices: set[int] = set()
            _collect_statement(subquery, sub_indices)
            found.extend(Parameter(i) for i in sub_indices)

    walk(expr)
    return found


def bind_expr(expr: Expr | None, values: Sequence[Any]) -> Expr | None:
    """A copy of ``expr`` with every Parameter replaced by its Literal."""
    if expr is None:
        return None
    if isinstance(expr, Parameter):
        return Literal(values[expr.index])
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, bind_expr(expr.left, values), bind_expr(expr.right, values)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, bind_expr(expr.operand, values))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(bind_expr(a, values) for a in expr.args),
            expr.star,
        )
    if isinstance(expr, InList):
        return InList(
            bind_expr(expr.operand, values),
            tuple(bind_expr(i, values) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, InSubquery):
        return InSubquery(
            bind_expr(expr.operand, values),
            bind_statement(expr.subquery, values),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            bind_expr(expr.operand, values),
            bind_expr(expr.low, values),
            bind_expr(expr.high, values),
            expr.negated,
        )
    if isinstance(expr, Like):
        # The pattern itself is a plain string (the grammar requires it).
        return Like(bind_expr(expr.operand, values), expr.pattern, expr.negated)
    # Literal, Column, Star are leaves.
    return expr


def bind_statement(
    statement: SelectStatement, values: Sequence[Any]
) -> SelectStatement:
    """A deep copy of ``statement`` with parameters bound to ``values``.

    Used by the prepared-statement slow path (statements with subqueries,
    which must re-plan per execution because the subquery materializes
    data-dependent IN lists).
    """
    return SelectStatement(
        items=[
            SelectItem(bind_expr(item.expr, values), item.alias)
            for item in statement.items
        ],
        table=statement.table,
        joins=[
            JoinClause(
                join.table, bind_expr(join.condition, values), join.join_type
            )
            for join in statement.joins
        ],
        where=bind_expr(statement.where, values),
        group_by=[bind_expr(g, values) for g in statement.group_by],
        having=bind_expr(statement.having, values),
        order_by=[
            OrderItem(bind_expr(o.expr, values), o.descending)
            for o in statement.order_by
        ],
        limit=statement.limit,
        distinct=statement.distinct,
    )


def bind_plan(node: PlanNode, values: Sequence[Any]) -> PlanNode:
    """A copy of a logical plan with parameters bound to ``values``.

    Scan annotations are copied, not shared: the bound plan is free to be
    mutated by execution-time passes without dirtying the prepared
    template.  Source-level pushdown predicates never contain parameters
    (see module docstring), so their list is shallow-copied.
    """
    if isinstance(node, ScanNode):
        governance = None
        if node.governance is not None:
            # Policy expressions never contain parameters (manifests hold
            # concrete values), but the lists must not be shared with the
            # prepared template.
            governance = ScanGovernance(
                node.governance.tenant,
                rls_pushed=list(node.governance.rls_pushed),
                rls_residual=list(node.governance.rls_residual),
                masks=dict(node.governance.masks),
            )
        return ScanNode(
            node.table,
            node.binding,
            pushdown=list(node.pushdown),
            site_filters=[bind_expr(e, values) for e in node.site_filters],
            needed_columns=(
                set(node.needed_columns)
                if node.needed_columns is not None
                else None
            ),
            text_filter=node.text_filter,
            governance=governance,
        )
    if isinstance(node, FilterNode):
        return FilterNode(
            bind_plan(node.child, values), bind_expr(node.condition, values)
        )
    if isinstance(node, JoinNode):
        return JoinNode(
            bind_plan(node.left, values),
            bind_plan(node.right, values),
            bind_expr(node.condition, values),
            node.join_type,
        )
    if isinstance(node, ProjectNode):
        return ProjectNode(
            bind_plan(node.child, values),
            [SelectItem(bind_expr(i.expr, values), i.alias) for i in node.items],
            node.distinct,
        )
    if isinstance(node, AggregateNode):
        bound = AggregateNode(
            bind_plan(node.child, values),
            [bind_expr(g, values) for g in node.group_by],
            [SelectItem(bind_expr(i.expr, values), i.alias) for i in node.items],
            bind_expr(node.having, values),
        )
        if node.split is not None:
            bound.split = AggregateSplit(
                calls=[bind_expr(c, values) for c in node.split.calls]
            )
        return bound
    if isinstance(node, SortNode):
        return SortNode(
            bind_plan(node.child, values),
            [OrderItem(bind_expr(o.expr, values), o.descending)
             for o in node.order_by],
        )
    if isinstance(node, LimitNode):
        return LimitNode(bind_plan(node.child, values), node.limit)
    raise QueryError(f"cannot bind parameters into plan node {node!r}")


def check_parameters(expected: int, values: Sequence[Any]) -> tuple:
    """Validate a binding's arity; returns the values as a tuple."""
    bound = tuple(values)
    if len(bound) != expected:
        raise QueryError(
            f"prepared statement takes {expected} parameter(s), "
            f"got {len(bound)}"
        )
    return bound

"""Expression evaluation over row environments.

An *environment* maps column names (both bare ``price`` and qualified
``h.price``) to values.  Null semantics follow pragmatic SQL behaviour:
comparisons against None are False (not unknown-propagating three-valued
logic -- a documented simplification), arithmetic with None yields None,
and ``IS NULL`` works as expected.

Scalar functions include the object-relational extensions of §4:
``fuzzy(a, b)`` returns :func:`repro.ir.fuzzy.combined_similarity` and
``match(column, query)`` is rewritten by the engine before evaluation (it
only appears here as a fallback substring check so local evaluation is still
meaningful).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping

from repro.core.errors import QueryError
from repro.ir.fuzzy import combined_similarity
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    Like,
    Literal,
    Parameter,
    Star,
    UnaryOp,
)

Env = Mapping[str, Any]


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a regex."""
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.IGNORECASE | re.DOTALL)


def _scalar_fuzzy(a: Any, b: Any) -> float:
    return combined_similarity(str(a or ""), str(b or ""))


def _scalar_match(value: Any, query: Any) -> bool:
    # Fallback behaviour when the engine has not rewritten MATCH into an IR
    # access path: case-insensitive all-terms containment.
    haystack = str(value or "").lower()
    return all(term in haystack for term in str(query or "").lower().split())


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "upper": lambda v: None if v is None else str(v).upper(),
    "lower": lambda v: None if v is None else str(v).lower(),
    "length": lambda v: None if v is None else len(str(v)),
    "abs": lambda v: None if v is None else abs(v),
    "round": lambda v, digits=0: None if v is None else round(v, int(digits)),
    "coalesce": lambda *vs: next((v for v in vs if v is not None), None),
    "fuzzy": _scalar_fuzzy,
    "match": _scalar_match,
}


def evaluate(expr: Expr, env: Env) -> Any:
    """Evaluate ``expr`` against one row environment."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Column):
        key = expr.qualified
        if key in env:
            return env[key]
        if expr.qualifier is None and expr.name in env:
            return env[expr.name]
        raise QueryError(f"unknown column {key!r}")
    if isinstance(expr, Star):
        raise QueryError("'*' is only valid in a SELECT list")
    if isinstance(expr, BinaryOp):
        return _binary(expr, env)
    if isinstance(expr, UnaryOp):
        return _unary(expr, env)
    if isinstance(expr, FuncCall):
        return _call(expr, env)
    if isinstance(expr, InList):
        value = evaluate(expr.operand, env)
        if value is None:
            return False
        hit = any(evaluate(item, env) == value for item in expr.items)
        return hit != expr.negated
    if isinstance(expr, Between):
        value = evaluate(expr.operand, env)
        if value is None:
            return False
        low = evaluate(expr.low, env)
        high = evaluate(expr.high, env)
        hit = low <= value <= high
        return hit != expr.negated
    if isinstance(expr, Like):
        value = evaluate(expr.operand, env)
        if value is None:
            return False
        hit = like_to_regex(expr.pattern).fullmatch(str(value)) is not None
        return hit != expr.negated
    if isinstance(expr, InSubquery):
        raise QueryError(
            "IN (SELECT ...) must be rewritten by the federated engine "
            "before row evaluation; evaluate() only sees closed expressions"
        )
    if isinstance(expr, Parameter):
        raise QueryError(
            f"unbound parameter ?{expr.index + 1}: a prepared statement was "
            "executed without binding its values"
        )
    raise QueryError(f"cannot evaluate expression {expr!r}")


def _binary(expr: BinaryOp, env: Env) -> Any:
    op = expr.op
    if op == "and":
        return bool(evaluate(expr.left, env)) and bool(evaluate(expr.right, env))
    if op == "or":
        return bool(evaluate(expr.left, env)) or bool(evaluate(expr.right, env))

    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)

    if op in ("=", "!="):
        if left is None or right is None:
            equal = left is None and right is None
        else:
            equal = left == right
        return equal if op == "=" else not equal
    if op in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return False
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        except TypeError as error:
            raise QueryError(
                f"cannot compare {left!r} {op} {right!r}: {error}"
            ) from error
    if op == "contains":
        if left is None or right is None:
            return False
        return str(right).lower() in str(left).lower()
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if right == 0:
                raise QueryError("division by zero")
            return left / right
        except TypeError as error:
            raise QueryError(
                f"bad arithmetic {left!r} {op} {right!r}: {error}"
            ) from error
    raise QueryError(f"unknown operator {op!r}")


def _unary(expr: UnaryOp, env: Env) -> Any:
    if expr.op == "not":
        return not bool(evaluate(expr.operand, env))
    if expr.op == "-":
        value = evaluate(expr.operand, env)
        return None if value is None else -value
    if expr.op == "is-null":
        return evaluate(expr.operand, env) is None
    if expr.op == "is-not-null":
        return evaluate(expr.operand, env) is not None
    raise QueryError(f"unknown unary operator {expr.op!r}")


def _call(expr: FuncCall, env: Env) -> Any:
    if expr.star:
        raise QueryError(f"{expr.name}(*) is only valid as an aggregate")
    fn = SCALAR_FUNCTIONS.get(expr.name)
    if fn is None:
        raise QueryError(f"unknown function {expr.name!r}")
    args = [evaluate(arg, env) for arg in expr.args]
    return fn(*args)

"""Recursive-descent parser for the SQL subset.

Grammar (in precedence order for expressions)::

    statement  := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                  [GROUP BY expr_list [HAVING expr]]
                  [ORDER BY order_list] [LIMIT n]
    join       := [INNER] JOIN table_ref ON expr
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive [comparison | LIKE | IN | BETWEEN | IS [NOT] NULL
                  | CONTAINS]
    additive   := multiplicative (('+'|'-') multiplicative)*
    multiplicative := primary (('*'|'/') primary)*
    primary    := literal | column | func '(' args ')' | '(' expr ')' | '-' primary
"""

from __future__ import annotations

from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    JoinClause,
    Like,
    Literal,
    OrderItem,
    Parameter,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.lexer import Token, tokenize_sql

_COMPARISONS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class SqlParseError(Exception):
    """Raised on a syntactically invalid query; carries token position."""


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0
        # ``?`` placeholders are numbered left to right in parse order,
        # shared across subqueries (one parameter list per statement).
        self.parameter_count = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.value in words

    def at_punct(self, *values: str) -> bool:
        token = self.peek()
        return token.kind == "punct" and token.value in values

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise SqlParseError(
                f"expected {word.upper()} at offset {self.peek().position}, "
                f"found {self.peek().value!r}"
            )
        return self.advance()

    def expect_punct(self, value: str) -> Token:
        if not self.at_punct(value):
            raise SqlParseError(
                f"expected {value!r} at offset {self.peek().position}, "
                f"found {self.peek().value!r}"
            )
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "ident":
            raise SqlParseError(
                f"expected identifier at offset {token.position}, found {token.value!r}"
            )
        return self.advance()

    # -- statement -----------------------------------------------------------

    def parse_statement(self, require_eof: bool = True) -> SelectStatement:
        self.expect_keyword("select")
        distinct = False
        if self.at_keyword("distinct"):
            self.advance()
            distinct = True
        items = self._select_items()
        self.expect_keyword("from")
        table = self._table_ref()
        joins = []
        while self.at_keyword("join", "inner", "left"):
            join_type = "inner"
            if self.at_keyword("inner"):
                self.advance()
            elif self.at_keyword("left"):
                self.advance()
                join_type = "left"
                if self.at_keyword("outer"):
                    self.advance()
            self.expect_keyword("join")
            join_table = self._table_ref()
            self.expect_keyword("on")
            condition = self.parse_expr()
            joins.append(JoinClause(join_table, condition, join_type))

        where = None
        if self.at_keyword("where"):
            self.advance()
            where = self.parse_expr()

        group_by: list[Expr] = []
        having = None
        if self.at_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.at_punct(","):
                self.advance()
                group_by.append(self.parse_expr())
            if self.at_keyword("having"):
                self.advance()
                having = self.parse_expr()

        order_by: list[OrderItem] = []
        if self.at_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            order_by.append(self._order_item())
            while self.at_punct(","):
                self.advance()
                order_by.append(self._order_item())

        limit = None
        if self.at_keyword("limit"):
            self.advance()
            token = self.peek()
            if token.kind != "number" or "." in token.value:
                raise SqlParseError(f"LIMIT needs an integer at offset {token.position}")
            limit = int(self.advance().value)

        if require_eof and self.peek().kind != "eof":
            raise SqlParseError(
                f"unexpected trailing input at offset {self.peek().position}: "
                f"{self.peek().value!r}"
            )
        return SelectStatement(
            items=items,
            table=table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _select_items(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self.at_punct(","):
            self.advance()
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self.at_punct("*"):
            self.advance()
            return SelectItem(Star())
        expr = self.parse_expr()
        # "alias.*" parses as Column(alias) '.' '*'
        if isinstance(expr, Column) and expr.qualifier is None and self.at_punct("."):
            next_token = self.tokens[self.position + 1]
            if next_token.kind == "punct" and next_token.value == "*":
                self.advance()
                self.advance()
                return SelectItem(Star(qualifier=expr.name))
        alias = None
        if self.at_keyword("as"):
            self.advance()
            alias = self.expect_ident().value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        name = self.expect_ident().value
        alias = None
        if self.at_keyword("as"):
            self.advance()
            alias = self.expect_ident().value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return TableRef(name, alias)

    def _order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.at_keyword("asc"):
            self.advance()
        elif self.at_keyword("desc"):
            self.advance()
            descending = True
        return OrderItem(expr, descending)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.at_keyword("or"):
            self.advance()
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self.at_keyword("and"):
            self.advance()
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self.at_keyword("not"):
            self.advance()
            return UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()

        if self.peek().kind == "punct" and self.peek().value in _COMPARISONS:
            op = self.advance().value
            if op == "<>":
                op = "!="
            return BinaryOp(op, left, self._additive())

        negated = False
        if self.at_keyword("not"):
            # NOT LIKE / NOT IN / NOT BETWEEN
            self.advance()
            negated = True
            if not self.at_keyword("like", "in", "between"):
                raise SqlParseError(
                    f"expected LIKE/IN/BETWEEN after NOT at offset {self.peek().position}"
                )

        if self.at_keyword("like"):
            self.advance()
            token = self.peek()
            if token.kind != "string":
                raise SqlParseError(f"LIKE needs a string pattern at offset {token.position}")
            return Like(left, self.advance().value, negated)

        if self.at_keyword("in"):
            self.advance()
            self.expect_punct("(")
            if self.at_keyword("select"):
                subquery = self.parse_statement(require_eof=False)
                self.expect_punct(")")
                return InSubquery(left, subquery, negated)
            items = [self.parse_expr()]
            while self.at_punct(","):
                self.advance()
                items.append(self.parse_expr())
            self.expect_punct(")")
            return InList(left, tuple(items), negated)

        if self.at_keyword("between"):
            self.advance()
            low = self._additive()
            self.expect_keyword("and")
            high = self._additive()
            return Between(left, low, high, negated)

        if self.at_keyword("contains"):
            self.advance()
            return BinaryOp("contains", left, self._additive())

        if self.at_keyword("is"):
            self.advance()
            is_negated = False
            if self.at_keyword("not"):
                self.advance()
                is_negated = True
            self.expect_keyword("null")
            return UnaryOp("is-not-null" if is_negated else "is-null", left)

        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self.at_punct("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expr:
        left = self._primary()
        while self.at_punct("*", "/"):
            op = self.advance().value
            left = BinaryOp(op, left, self._primary())
        return left

    def _primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = float(token.value) if "." in token.value or "e" in token.value.lower() else int(token.value)
            return Literal(value)
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "keyword" and token.value in ("true", "false"):
            self.advance()
            return Literal(token.value == "true")
        if token.kind == "keyword" and token.value == "null":
            self.advance()
            return Literal(None)
        if self.at_punct("?"):
            self.advance()
            parameter = Parameter(self.parameter_count)
            self.parameter_count += 1
            return parameter
        if self.at_punct("-"):
            self.advance()
            return UnaryOp("-", self._primary())
        if self.at_punct("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if token.kind == "ident":
            name = self.advance().value
            if self.at_punct("("):
                return self._func_call(name)
            if self.at_punct("."):
                # qualified column, unless it's "alias.*" (handled by caller)
                next_token = self.tokens[self.position + 1]
                if next_token.kind == "ident":
                    self.advance()
                    column = self.advance().value
                    return Column(column, qualifier=name)
                return Column(name)
            return Column(name)
        raise SqlParseError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _func_call(self, name: str) -> FuncCall:
        self.expect_punct("(")
        if self.at_punct("*"):
            self.advance()
            self.expect_punct(")")
            return FuncCall(name.lower(), (), star=True)
        args: list[Expr] = []
        if not self.at_punct(")"):
            args.append(self.parse_expr())
            while self.at_punct(","):
                self.advance()
                args.append(self.parse_expr())
        self.expect_punct(")")
        return FuncCall(name.lower(), tuple(args))


def parse_sql(text: str) -> SelectStatement:
    """Parse one SELECT statement; raises :class:`SqlParseError` on errors."""
    return _Parser(tokenize_sql(text)).parse_statement()

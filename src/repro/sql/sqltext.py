"""Lossless SQL text scanning: placeholders, comments, normalization.

The DB-API layer and the gateway both need to look at raw SQL text
*before* parsing -- to substitute ``?`` placeholders (textual binding
fallback) and to compute plan-cache keys.  Both must agree on what is
code and what is quoted material: a ``?`` inside a string literal, a
double-quoted identifier, or a ``--`` line comment is not a placeholder,
and two statements differing only in comments or whitespace should hit
the same cache entry.

This module provides one segment scanner and builds both operations on
top of it, so they can never drift apart.
"""

from __future__ import annotations

from typing import Callable, Iterator

# Segment kinds produced by scan_segments:
#   "code"     -- plain SQL text (keywords, idents, operators, numbers)
#   "string"   -- a single-quoted literal, quotes included, '' escapes kept
#   "ident"    -- a double-quoted identifier, quotes included, "" escapes kept
#   "comment"  -- a ``--`` line comment up to (not including) the newline


class SqlTextError(ValueError):
    """Raised on unterminated quoted material."""


def scan_segments(sql: str) -> Iterator[tuple[str, str]]:
    """Split ``sql`` into (kind, text) segments; concatenation round-trips."""
    i = 0
    length = len(sql)
    code_start = 0
    while i < length:
        char = sql[i]
        if char == "'" or char == '"':
            if code_start < i:
                yield "code", sql[code_start:i]
            end = _read_quoted(sql, i, char)
            yield ("string" if char == "'" else "ident"), sql[i:end]
            i = end
            code_start = i
        elif char == "-" and sql.startswith("--", i):
            if code_start < i:
                yield "code", sql[code_start:i]
            end = sql.find("\n", i)
            if end < 0:
                end = length
            yield "comment", sql[i:end]
            i = end
            code_start = i
        else:
            i += 1
    if code_start < length:
        yield "code", sql[code_start:length]


def _read_quoted(sql: str, start: int, quote: str) -> int:
    """Index one past the closing quote, honoring doubled-quote escapes."""
    i = start + 1
    length = len(sql)
    while i < length:
        if sql[i] == quote:
            if i + 1 < length and sql[i + 1] == quote:
                i += 2
                continue
            return i + 1
        i += 1
    kind = "string literal" if quote == "'" else "quoted identifier"
    raise SqlTextError(f"unterminated {kind} starting at offset {start}")


def count_placeholders(sql: str) -> int:
    """Number of ``?`` placeholders in code segments of ``sql``."""
    return sum(
        text.count("?") for kind, text in scan_segments(sql) if kind == "code"
    )


def replace_placeholders(sql: str, substitute: Callable[[int], str]) -> str:
    """Replace each code-segment ``?`` with ``substitute(ordinal)``.

    Placeholders inside string literals, double-quoted identifiers, and
    ``--`` comments are left untouched.
    """
    pieces: list[str] = []
    ordinal = 0
    for kind, text in scan_segments(sql):
        if kind != "code" or "?" not in text:
            pieces.append(text)
            continue
        parts = text.split("?")
        pieces.append(parts[0])
        for part in parts[1:]:
            pieces.append(substitute(ordinal))
            pieces.append(part)
            ordinal += 1
    return "".join(pieces)


def render_literal(value) -> str:
    """Render a Python value as a SQL literal token.

    Raises :class:`ValueError` for values with no SQL spelling: non-finite
    floats (``inf``/``nan`` are not literals the grammar accepts) and bytes
    (no blob literal syntax in this dialect).  Callers map this to their
    interface-level error type.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(
                f"cannot render non-finite float {value!r} as a SQL literal"
            )
        return repr(value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        raise ValueError(
            "cannot render bytes as a SQL literal; this dialect has no "
            "blob literal syntax"
        )
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise ValueError(
        f"cannot render {type(value).__name__} value {value!r} as a SQL literal"
    )


def normalize_sql(sql: str) -> str:
    """Canonical cache-key form of a statement.

    Strips comments, collapses runs of whitespace in code to single
    spaces, and lowercases code text (the grammar's keywords are
    case-insensitive and schema names are kept lowercase).  Quoted
    strings and identifiers pass through verbatim -- their case and
    spacing are semantic.
    """
    out: list[str] = []
    pending_space = False
    for kind, text in scan_segments(sql):
        if kind == "comment":
            # A comment ends a token just as the newline after it would;
            # keep a separator so "a--c\nb" doesn't fuse into "ab".
            pending_space = True
            continue
        if kind == "code":
            if text[:1].isspace():
                pending_space = True
            body = " ".join(text.lower().split())
            if not body:
                continue
            if pending_space and out:
                out.append(" ")
            out.append(body)
            pending_space = text[-1:].isspace()
        else:
            # Quoted material passes through verbatim; spacing adjacent to
            # it is preserved as a single separator.
            if pending_space and out:
                out.append(" ")
            out.append(text)
            pending_space = False
    return "".join(out)

"""Logical planning: AST -> operator tree with predicate pushdown.

The plan shapes are deliberately conventional (scan / filter / join /
aggregate / project / sort / limit) because the interesting part in this
reproduction happens *below* the logical plan: the federated optimizers in
:mod:`repro.federation` decide which site executes each scan (and at what
price), and the logical tree is what they bid on.

Pushdown: the WHERE clause is split into conjuncts; any conjunct of the form
``column op literal`` whose column binds to exactly one scan becomes a
:class:`~repro.connect.source.Predicate` attached to that scan, so sources
(ERP gateways, scraped sites, fragments) filter locally.  Everything else
stays in a residual :class:`FilterNode`.  The pushdown itself is a rewrite
pass (:class:`repro.sql.rewrite.PredicatePushdown`); :func:`build_plan`
applies it when given binding fields, and the engine layers further passes
(text-index access, site-local filters, projection pruning, aggregate
splitting) on top -- see :mod:`repro.sql.rewrite`.

Scan nodes carry the physical-placement annotations those passes write:
``site_filters`` (residual conjuncts evaluable at the owning site),
``needed_columns`` (projection pruning) and ``text_filter`` (text-index
access path).  Aggregate nodes carry ``split`` when the aggregation can be
computed as site-local partials merged at the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.connect.source import Predicate
from repro.core.errors import QueryError
from repro.sql.ast import (
    BinaryOp,
    Column,
    Expr,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    columns_in,
    contains_aggregate,
)

_PUSHABLE_OPS = {"=", "!=", "<", "<=", ">", ">="}
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@dataclass
class PlanNode:
    """Base class for logical operators."""

    def children(self) -> list["PlanNode"]:
        return []


@dataclass
class ScanGovernance:
    """Per-tenant policy work compiled into one scan.

    Written by :class:`repro.sql.rewrite.GovernanceInjection`: row-level
    security conjuncts that were pushable land in the scan's ordinary
    ``pushdown`` list (and are echoed in ``rls_pushed`` so EXPLAIN can
    attribute them), the rest stay here as ``rls_residual`` expressions the
    owning site evaluates row-wise *before* masking; ``masks`` maps column
    name to mask style applied at the scan's output.  The annotation rides
    the logical plan, so the optimizers price policy work like any other
    site work and the artifact hash can fold it into the stage identity.
    """

    tenant: str
    rls_pushed: list[Predicate] = field(default_factory=list)
    rls_residual: list[Expr] = field(default_factory=list)
    masks: dict[str, str] = field(default_factory=dict)


@dataclass
class ScanNode(PlanNode):
    """Read one base table (through whatever source the catalog maps it to).

    Beyond ``pushdown`` (source-level comparison predicates), the rewrite
    passes annotate scans with work that the *owning site* performs before
    rows ship to the coordinator:

    * ``site_filters`` -- residual conjuncts referencing only this binding,
      evaluated row-wise at the site (a physical ``SiteFilter`` operator);
    * ``needed_columns`` -- the only columns any later operator reads
      (``None`` means all; a physical ``SiteProject`` operator);
    * ``text_filter`` -- a ``(column, query)`` text-index access path;
    * ``governance`` -- compiled per-tenant RLS / mask policy, if any.
    """

    table: str
    binding: str  # alias used in the query
    pushdown: list[Predicate] = field(default_factory=list)
    site_filters: list[Expr] = field(default_factory=list)
    needed_columns: set[str] | None = None
    text_filter: tuple[str, str] | None = None
    governance: ScanGovernance | None = None


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    condition: Expr

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class JoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    condition: Expr
    join_type: str = "inner"  # "inner" | "left"

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]


@dataclass
class ProjectNode(PlanNode):
    child: PlanNode
    items: list[SelectItem]
    distinct: bool = False

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class AggregateSplit:
    """Partial/final decomposition of an aggregation.

    ``calls`` lists the distinct aggregate :class:`FuncCall` expressions
    (keyed by ``repr``) whose partial states sites compute locally; the
    coordinator merges states and evaluates the final select items.
    """

    calls: list[Any]  # list[FuncCall]


@dataclass
class AggregateNode(PlanNode):
    child: PlanNode
    group_by: list[Expr]
    items: list[SelectItem]
    having: Expr | None = None
    # Written by repro.sql.rewrite.AggregateSplitting when the aggregation
    # decomposes into site-local partials merged at the coordinator.
    split: AggregateSplit | None = None

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    order_by: list[OrderItem]

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: int

    def children(self) -> list[PlanNode]:
        return [self.child]


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a WHERE tree into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    """Rebuild an AND tree from conjuncts (None when empty)."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = BinaryOp("and", combined, conjunct)
    return combined


def _as_pushable(expr: Expr) -> tuple[Column, str, Any] | None:
    """Return (column, op, literal) if ``expr`` is a pushable comparison."""
    if not isinstance(expr, BinaryOp) or expr.op not in _PUSHABLE_OPS:
        return None
    left, right = expr.left, expr.right
    if isinstance(left, Column) and isinstance(right, Literal):
        return left, expr.op, right.value
    if isinstance(left, Literal) and isinstance(right, Column):
        return right, _FLIPPED[expr.op], left.value
    return None


def _binding_of_column(
    column: Column,
    binding_fields: dict[str, set[str]],
) -> str | None:
    """Which scan binding does ``column`` belong to, if unambiguous?"""
    if column.qualifier is not None:
        return column.qualifier if column.qualifier in binding_fields else None
    owners = [b for b, fields in binding_fields.items() if column.name in fields]
    return owners[0] if len(owners) == 1 else None


def build_plan(
    statement: SelectStatement,
    binding_fields: dict[str, set[str]] | None = None,
) -> PlanNode:
    """Build the logical plan for ``statement``.

    ``binding_fields`` maps each table binding (alias) to its field names;
    when provided, single-table comparison conjuncts are pushed into their
    scan.  Without it every predicate stays in the residual filter (still
    correct, just less pushdown).
    """
    bindings = [statement.table.binding] + [j.table.binding for j in statement.joins]
    if len(set(bindings)) != len(bindings):
        raise QueryError(f"duplicate table binding in query: {bindings!r}")

    scans: dict[str, ScanNode] = {
        statement.table.binding: ScanNode(statement.table.name, statement.table.binding)
    }
    for join in statement.joins:
        scans[join.table.binding] = ScanNode(join.table.name, join.table.binding)

    plan: PlanNode = scans[statement.table.binding]
    for join in statement.joins:
        plan = JoinNode(
            plan, scans[join.table.binding], join.condition, join.join_type
        )

    if statement.where is not None:
        plan = FilterNode(plan, statement.where)
    if binding_fields is not None:
        # Predicate splitting is a composable rewrite pass; build_plan
        # applies it so callers with schema knowledge always get pushdown.
        from repro.sql.rewrite import PredicatePushdown

        plan = PredicatePushdown(binding_fields).run(plan)

    has_aggregates = bool(statement.group_by) or any(
        contains_aggregate(item.expr) for item in statement.items
    )
    if has_aggregates:
        _validate_aggregate_items(statement)
        plan = AggregateNode(plan, statement.group_by, statement.items, statement.having)
        if statement.order_by:
            # Post-aggregation, only output columns exist: rewrite each order
            # key that textually matches a select item into its output name.
            plan = SortNode(plan, _rewrite_aggregate_order(statement))
    else:
        if statement.having is not None:
            raise QueryError("HAVING requires GROUP BY or aggregates")
        if statement.order_by:
            # Sort *below* the projection so order keys may reference any
            # underlying column; alias references resolve to their item expr.
            plan = SortNode(plan, _resolve_order_aliases(statement))
        plan = ProjectNode(plan, statement.items, statement.distinct)

    if statement.limit is not None:
        plan = LimitNode(plan, statement.limit)
    return plan


def _resolve_order_aliases(statement: SelectStatement) -> list[OrderItem]:
    """Replace ORDER BY references to select aliases with their expressions."""
    alias_map = {
        item.alias: item.expr for item in statement.items if item.alias is not None
    }
    resolved = []
    for order in statement.order_by:
        expr = order.expr
        if isinstance(expr, Column) and expr.qualifier is None and expr.name in alias_map:
            expr = alias_map[expr.name]
        resolved.append(OrderItem(expr, order.descending))
    return resolved


def _rewrite_aggregate_order(statement: SelectStatement) -> list[OrderItem]:
    """Map ORDER BY keys onto the aggregate's output column names."""
    rewritten = []
    for order in statement.order_by:
        expr = order.expr
        for i, item in enumerate(statement.items):
            if item.alias is not None and isinstance(expr, Column) and expr.name == item.alias:
                expr = Column(item.alias)
                break
            if repr(item.expr) == repr(order.expr):
                name = item.alias
                if name is None and isinstance(item.expr, Column):
                    name = item.expr.name
                if name is None and hasattr(item.expr, "name"):
                    name = item.expr.name  # FuncCall output name
                expr = Column(name or f"col{i}")
                break
        rewritten.append(OrderItem(expr, order.descending))
    return rewritten


def _validate_aggregate_items(statement: SelectStatement) -> None:
    """Non-aggregate select items must appear in GROUP BY."""
    group_keys = {repr(g) for g in statement.group_by}
    for item in statement.items:
        if isinstance(item.expr, Star):
            raise QueryError("'*' cannot appear with GROUP BY/aggregates")
        if contains_aggregate(item.expr):
            continue
        if repr(item.expr) in group_keys:
            continue
        if isinstance(item.expr, Column) and any(
            isinstance(g, Column) and g.name == item.expr.name for g in statement.group_by
        ):
            continue
        raise QueryError(
            f"select item {item.expr!r} is neither aggregated nor grouped"
        )


def scans_in(plan: PlanNode) -> list[ScanNode]:
    """All scan leaves of ``plan`` in left-to-right order."""
    if isinstance(plan, ScanNode):
        return [plan]
    found: list[ScanNode] = []
    for child in plan.children():
        found.extend(scans_in(child))
    return found


def referenced_columns(plan: PlanNode) -> list[Column]:
    """Every column referenced anywhere in the plan's expressions."""
    columns: list[Column] = []
    if isinstance(plan, FilterNode):
        columns.extend(columns_in(plan.condition))
    elif isinstance(plan, JoinNode):
        columns.extend(columns_in(plan.condition))
    elif isinstance(plan, ProjectNode):
        for item in plan.items:
            if not isinstance(item.expr, Star):
                columns.extend(columns_in(item.expr))
    elif isinstance(plan, AggregateNode):
        for group in plan.group_by:
            columns.extend(columns_in(group))
        for item in plan.items:
            columns.extend(columns_in(item.expr))
        if plan.having is not None:
            columns.extend(columns_in(plan.having))
    elif isinstance(plan, SortNode):
        for order in plan.order_by:
            columns.extend(columns_in(order.expr))
    for child in plan.children():
        columns.extend(referenced_columns(child))
    return columns

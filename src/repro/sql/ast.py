"""AST node types for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

# -- expressions ------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any  # str | int | float | bool | None


@dataclass(frozen=True)
class Parameter:
    """One ``?`` placeholder, numbered left to right across the statement.

    Parameters survive planning: a prepared statement's logical plan keeps
    them in place so the plan can be optimized once and bound many times
    (:mod:`repro.sql.params` substitutes values at execution).  An unbound
    Parameter reaching row evaluation is an error.
    """

    index: int  # 0-based position among the statement's placeholders


@dataclass(frozen=True)
class Column:
    name: str
    qualifier: str | None = None  # table alias

    @property
    def qualified(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star:
    qualifier: str | None = None


@dataclass(frozen=True)
class BinaryOp:
    op: str  # and or = != < <= > >= + - * / contains
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # not, -, is-null, is-not-null
    operand: "Expr"


@dataclass(frozen=True)
class FuncCall:
    name: str  # lowercased
    args: tuple["Expr", ...]
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class InList:
    operand: "Expr"
    items: tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery:
    """``expr [NOT] IN (SELECT ...)`` -- uncorrelated subqueries only.

    The engine rewrites this into an :class:`InList` by executing the inner
    select first (a semijoin by materialization, the natural federated
    strategy for cross-enterprise membership tests).
    """

    operand: "Expr"
    subquery: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class Between:
    operand: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class Like:
    operand: "Expr"
    pattern: str
    negated: bool = False


Expr = Union[
    Literal, Parameter, Column, Star, BinaryOp, UnaryOp, FuncCall, InList,
    InSubquery, Between, Like,
]

AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def contains_aggregate(expr: Expr) -> bool:
    """True if any aggregate function call appears in ``expr``."""
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(i) for i in expr.items
        )
    if isinstance(expr, InSubquery):
        # The inner select's aggregates belong to the inner scope.
        return contains_aggregate(expr.operand)
    if isinstance(expr, Between):
        return any(contains_aggregate(e) for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, Like):
        return contains_aggregate(expr.operand)
    return False


def columns_in(expr: Expr) -> list[Column]:
    """All column references in ``expr``, in appearance order."""
    found: list[Column] = []

    def walk(node: Expr) -> None:
        if isinstance(node, Column):
            found.append(node)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, InSubquery):
            walk(node.operand)  # inner select columns are inner-scope
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, Like):
            walk(node.operand)

    walk(expr)
    return found


# -- statement structure -----------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    condition: Expr
    join_type: str = "inner"  # "inner" | "left"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class SelectStatement:
    items: list[SelectItem]
    table: TableRef
    joins: list[JoinClause] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

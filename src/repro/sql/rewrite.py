"""Composable rewrite passes over the logical plan.

The federated engine's query path used to inline its plan surgery (MATCH
rewriting in the engine, predicate splitting in the planner).  Each
transformation is now a :class:`RewritePass` so the pipeline is explicit,
testable in isolation, and extensible:

* :class:`PredicatePushdown` -- ``column op literal`` conjuncts move into
  their scan's source-level predicate list (applied by ``build_plan``);
* :class:`TextIndexRewrite` -- ``MATCH(col, 'q')`` conjuncts become a
  text-index access path on the scan (§4's "text search engine ... fully
  modeled ... as an access path");
* :class:`SiteFilterPushdown` -- residual conjuncts touching a single
  binding (ORs, fuzzy matches, arithmetic) execute at the owning site;
* :class:`ProjectionPruning` -- scans record the only columns any later
  operator reads, so sites ship narrower rows;
* :class:`AggregateSplitting` -- single-table aggregations decompose into
  site-local partials merged at the coordinator;
* :class:`GovernanceInjection` -- per-tenant row-level-security predicates
  and column masks compile into scan annotations, so policy enforcement is
  priced and pruned like any other site work.

Passes mutate scan annotations in place and may restructure filters; they
never change query answers (see ``tests/test_equivalence_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.connect.source import Predicate
from repro.core.errors import QueryError
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    Star,
    UnaryOp,
    columns_in,
)
from repro.sql.planner import (
    AggregateNode,
    AggregateSplit,
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanGovernance,
    ScanNode,
    _as_pushable,
    _binding_of_column,
    conjoin,
    referenced_columns,
    scans_in,
    split_conjuncts,
)


class RewritePass:
    """One plan-to-plan transformation."""

    name = "rewrite"

    def run(self, plan: PlanNode) -> PlanNode:
        raise NotImplementedError


class RewritePipeline:
    """Applies passes in order; the engine's standard pipeline lives here."""

    def __init__(self, passes: list[RewritePass]) -> None:
        self.passes = list(passes)

    def run(self, plan: PlanNode) -> PlanNode:
        for rewrite_pass in self.passes:
            plan = rewrite_pass.run(plan)
        return plan


def null_supplying_bindings(node: PlanNode) -> set[str]:
    """Bindings on the null-extended (right) side of a LEFT JOIN.

    Predicates must not be pushed below the join for these bindings: a
    site-side filter would turn the outer join into an inner one for the
    filtered-out rows.
    """
    found: set[str] = set()
    if isinstance(node, JoinNode) and node.join_type == "left":
        found.update(scan.binding for scan in scans_in(node.right))
    for child in node.children():
        found |= null_supplying_bindings(child)
    return found


def _rewrite_filters(
    node: PlanNode, fn: Callable[[FilterNode], PlanNode]
) -> PlanNode:
    """Apply ``fn`` to every FilterNode, bottom-up; ``fn`` may drop it."""
    for attr in ("child", "left", "right"):
        if hasattr(node, attr):
            setattr(node, attr, _rewrite_filters(getattr(node, attr), fn))
    if isinstance(node, FilterNode):
        return fn(node)
    return node


class PredicatePushdown(RewritePass):
    """Move ``column op literal`` conjuncts into their scan's pushdown."""

    name = "predicate-pushdown"

    def __init__(self, binding_fields: dict[str, set[str]]) -> None:
        self.binding_fields = binding_fields

    def run(self, plan: PlanNode) -> PlanNode:
        def rewrite(node: FilterNode) -> PlanNode:
            scans = {scan.binding: scan for scan in scans_in(node.child)}
            null_extended = null_supplying_bindings(node.child)
            kept: list[Expr] = []
            for conjunct in split_conjuncts(node.condition):
                pushable = _as_pushable(conjunct)
                if pushable is not None:
                    column, op, value = pushable
                    binding = _binding_of_column(column, self.binding_fields)
                    if (
                        binding is not None
                        and binding in scans
                        and binding not in null_extended
                    ):
                        scans[binding].pushdown.append(
                            Predicate(column.name, op, value)
                        )
                        continue
                kept.append(conjunct)
            condition = conjoin(kept)
            return node.child if condition is None else FilterNode(node.child, condition)

        return _rewrite_filters(plan, rewrite)


@dataclass(frozen=True)
class TextIndexTarget:
    """What :class:`TextIndexRewrite` needs to know about one binding."""

    fields: frozenset[str]
    text_column: str | None = None  # indexed column, None when unindexed


class TextIndexRewrite(RewritePass):
    """Turn ``MATCH(col, 'q')`` conjuncts into text-index access paths.

    A conjunct is rewritten only when it resolves to exactly one scan whose
    table has a text index on that column; otherwise it stays a row-wise
    predicate (the scalar ``match`` fallback keeps answers correct).
    """

    name = "text-index"

    def __init__(self, targets: dict[str, TextIndexTarget]) -> None:
        self.targets = targets

    def run(self, plan: PlanNode) -> PlanNode:
        def rewrite(node: FilterNode) -> PlanNode:
            scans = {scan.binding: scan for scan in scans_in(node.child)}
            kept: list[Expr] = []
            for conjunct in split_conjuncts(node.condition):
                resolved = self._resolve(conjunct, scans)
                if resolved is not None:
                    scan, column_name, query_text = resolved
                    scan.text_filter = (column_name, query_text)
                    continue
                kept.append(conjunct)
            condition = conjoin(kept)
            return node.child if condition is None else FilterNode(node.child, condition)

        return _rewrite_filters(plan, rewrite)

    def _resolve(
        self, conjunct: Expr, scans: dict[str, ScanNode]
    ) -> tuple[ScanNode, str, str] | None:
        if not (
            isinstance(conjunct, FuncCall)
            and conjunct.name == "match"
            and len(conjunct.args) == 2
            and isinstance(conjunct.args[0], Column)
            and isinstance(conjunct.args[1], Literal)
        ):
            return None
        column = conjunct.args[0]
        candidates: list[ScanNode] = []
        for binding, scan in scans.items():
            target = self.targets.get(binding)
            if target is None:
                continue
            if column.qualifier is not None and column.qualifier != binding:
                continue
            if column.name not in target.fields:
                continue
            if target.text_column != column.name:
                continue
            candidates.append(scan)
        if len(candidates) != 1:
            return None  # ambiguous or unindexed: leave as a row-wise predicate
        return candidates[0], column.name, str(conjunct.args[1].value)


class SiteFilterPushdown(RewritePass):
    """Move residual single-binding conjuncts to the owning site.

    Source-level pushdown only handles ``column op literal``; everything
    else (ORs, BETWEEN over expressions, ``fuzzy(...) > x``) used to run at
    the coordinator after shipping every row.  Any conjunct whose columns
    all belong to one binding is row-local, so the site can evaluate it
    before shipping -- the paper's "move the work to the data".
    """

    name = "site-filter"

    def __init__(self, binding_fields: dict[str, set[str]]) -> None:
        self.binding_fields = binding_fields

    def run(self, plan: PlanNode) -> PlanNode:
        def rewrite(node: FilterNode) -> PlanNode:
            scans = {scan.binding: scan for scan in scans_in(node.child)}
            null_extended = null_supplying_bindings(node.child)
            kept: list[Expr] = []
            for conjunct in split_conjuncts(node.condition):
                binding = self._sole_binding(conjunct)
                if (
                    binding is not None
                    and binding in scans
                    and binding not in null_extended
                ):
                    scans[binding].site_filters.append(conjunct)
                    continue
                kept.append(conjunct)
            condition = conjoin(kept)
            return node.child if condition is None else FilterNode(node.child, condition)

        return _rewrite_filters(plan, rewrite)

    def _sole_binding(self, expr: Expr) -> str | None:
        columns = columns_in(expr)
        if not columns:
            return None  # constant predicate: leave at the coordinator
        bindings = {
            _binding_of_column(column, self.binding_fields) for column in columns
        }
        if len(bindings) == 1 and None not in bindings:
            return next(iter(bindings))
        return None


class ProjectionPruning(RewritePass):
    """Record, per scan, the only columns any later operator reads.

    Conservative on unqualified names: an ambiguous column counts as needed
    by every binding whose schema has it.  ``SELECT *`` (optionally
    qualified) keeps the matching bindings whole.
    """

    name = "projection-pruning"

    def __init__(self, binding_fields: dict[str, set[str]]) -> None:
        self.binding_fields = binding_fields

    def run(self, plan: PlanNode) -> PlanNode:
        scans = scans_in(plan)
        needed: dict[str, set[str]] = {scan.binding: set() for scan in scans}
        full: set[str] = set()
        self._collect_stars(plan, needed, full)
        columns = list(referenced_columns(plan))
        for scan in scans:
            for conjunct in scan.site_filters:
                columns.extend(columns_in(conjunct))
        for column in columns:
            self._note(column, needed)
        for scan in scans:
            if scan.binding not in full:
                scan.needed_columns = needed[scan.binding]
        return plan

    def _collect_stars(
        self, node: PlanNode, needed: dict[str, set[str]], full: set[str]
    ) -> None:
        if isinstance(node, ProjectNode):
            for item in node.items:
                if isinstance(item.expr, Star):
                    if item.expr.qualifier is None:
                        full.update(needed.keys())
                    else:
                        full.add(item.expr.qualifier)
        for child in node.children():
            self._collect_stars(child, needed, full)

    def _note(self, column: Column, needed: dict[str, set[str]]) -> None:
        if column.qualifier is not None:
            if column.qualifier in needed:
                needed[column.qualifier].add(column.name)
            return
        for binding, fields in self.binding_fields.items():
            if binding in needed and column.name in fields:
                needed[binding].add(column.name)


class AggregateSplitting(RewritePass):
    """Mark single-table aggregations as partial/final decomposable.

    When an AggregateNode sits directly on a scan (after the filter passes
    absorbed the residual), every supported aggregate (count/sum/avg/min/
    max) has a mergeable partial state, so each site can aggregate its
    fragment locally and ship one row per group instead of every row.
    """

    name = "aggregate-split"

    def run(self, plan: PlanNode) -> PlanNode:
        self._walk(plan)
        return plan

    def _walk(self, node: PlanNode) -> None:
        if isinstance(node, AggregateNode) and isinstance(node.child, ScanNode):
            node.split = AggregateSplit(calls=self._aggregate_calls(node))
        for child in node.children():
            self._walk(child)

    def _aggregate_calls(self, node: AggregateNode) -> list[FuncCall]:
        calls: dict[str, FuncCall] = {}

        def collect(expr: Expr) -> None:
            if isinstance(expr, FuncCall):
                if expr.name in AGGREGATE_FUNCTIONS:
                    calls.setdefault(repr(expr), expr)
                    return
                for arg in expr.args:
                    collect(arg)
                return
            for attr in ("left", "right", "operand", "low", "high"):
                child = getattr(expr, attr, None)
                if child is not None:
                    collect(child)
            for item in getattr(expr, "items", ()) or ():
                collect(item)

        for item in node.items:
            collect(item.expr)
        for group in node.group_by:
            collect(group)
        if node.having is not None:
            collect(node.having)
        return list(calls.values())


@dataclass(frozen=True)
class GovernanceRule:
    """Compiled policy for one (tenant, table): what the injector applies.

    ``row_filter`` is the parsed RLS predicate with *bare* column names
    (the injector qualifies them to each scan's binding); ``masks`` pairs
    column names with mask styles.  Built by
    :class:`repro.federation.governance.GovernanceRegistry` so this module
    stays free of federation imports.
    """

    tenant: str
    table: str
    row_filter: Expr | None = None
    masks: tuple[tuple[str, str], ...] = ()


@dataclass
class GovernanceInjection(RewritePass):
    """Compile per-tenant RLS predicates and column masks into scans.

    The governed answer is, by definition, the query evaluated over each
    governed table replaced by ``mask(sigma_RLS(T))``: RLS conjuncts see raw
    (pre-mask) values, masks apply at the scan's output, and the tenant's
    own predicates on masked columns see masked values.  Three consequences
    shape the rewrite:

    * pushable RLS conjuncts join ``scan.pushdown`` -- they prune zone maps,
      scope semantic-cache regions, and are priced by selectivity exactly
      like user predicates; non-pushable conjuncts become ``rls_residual``
      expressions the site evaluates row-wise before masking.  RLS pushes
      below LEFT JOINs too: the policy filters the table *before* the join,
      so the null-supplying exclusion that protects user predicates does
      not apply.
    * user pushdown predicates on masked columns are *hoisted back* into
      ``site_filters`` (which run post-mask), since the source would
      otherwise compare raw values the tenant never sees.
    * a text-index access path over a masked column is demoted to the
      scalar ``match`` fallback for the same reason.
    """

    name = "governance"

    rules: dict[str, GovernanceRule] = field(default_factory=dict)
    binding_fields: dict[str, set[str]] = field(default_factory=dict)

    def run(self, plan: PlanNode) -> PlanNode:
        for scan in scans_in(plan):
            rule = self.rules.get(scan.table)
            if rule is None or scan.governance is not None:
                continue
            self._govern(scan, rule)
        return plan

    def _govern(self, scan: ScanNode, rule: GovernanceRule) -> None:
        fields = self.binding_fields.get(scan.binding, set())
        masks: dict[str, str] = {}
        for column_name, style in rule.masks:
            if column_name not in fields:
                raise QueryError(
                    f"governance policy for tenant {rule.tenant!r} masks "
                    f"unknown column {column_name!r} of table {rule.table!r}"
                )
            masks[column_name] = style
        self._hoist_masked_pushdown(scan, masks)
        self._demote_masked_text_filter(scan, masks)
        governance = ScanGovernance(rule.tenant, masks=masks)
        if rule.row_filter is not None:
            for conjunct in split_conjuncts(rule.row_filter):
                qualified = _qualify_policy_expr(
                    conjunct, scan.binding, fields, rule
                )
                pushable = _as_pushable(qualified)
                if pushable is not None:
                    column, op, value = pushable
                    predicate = Predicate(column.name, op, value)
                    scan.pushdown.append(predicate)
                    governance.rls_pushed.append(predicate)
                else:
                    governance.rls_residual.append(qualified)
        scan.governance = governance

    def _hoist_masked_pushdown(
        self, scan: ScanNode, masks: dict[str, str]
    ) -> None:
        if not masks:
            return
        kept: list[Predicate] = []
        for predicate in scan.pushdown:
            if predicate.column in masks:
                # The tenant's predicate must see the *masked* value, so it
                # becomes a post-mask site filter instead of source pushdown.
                scan.site_filters.append(
                    BinaryOp(
                        predicate.op,
                        Column(predicate.column, qualifier=scan.binding),
                        Literal(predicate.value),
                    )
                )
            else:
                kept.append(predicate)
        scan.pushdown[:] = kept

    def _demote_masked_text_filter(
        self, scan: ScanNode, masks: dict[str, str]
    ) -> None:
        if scan.text_filter is None or scan.text_filter[0] not in masks:
            return
        column_name, query_text = scan.text_filter
        scan.text_filter = None
        scan.site_filters.append(
            FuncCall(
                "match",
                (Column(column_name, qualifier=scan.binding), Literal(query_text)),
            )
        )


def _qualify_policy_expr(
    expr: Expr, binding: str, fields: set[str], rule: GovernanceRule
) -> Expr:
    """A copy of a policy expression with columns qualified to ``binding``.

    Fails closed: a policy referencing a column the table does not have (or
    a construct a row filter cannot contain) is a query-time error, never a
    silently unenforced filter.
    """
    if isinstance(expr, Column):
        if expr.qualifier is not None and expr.qualifier != rule.table:
            raise QueryError(
                f"governance policy for tenant {rule.tenant!r} on table "
                f"{rule.table!r} references foreign column {expr.qualified!r}"
            )
        if expr.name not in fields:
            raise QueryError(
                f"governance policy for tenant {rule.tenant!r} filters "
                f"unknown column {expr.name!r} of table {rule.table!r}"
            )
        return Column(expr.name, qualifier=binding)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _qualify_policy_expr(expr.left, binding, fields, rule),
            _qualify_policy_expr(expr.right, binding, fields, rule),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(
            expr.op, _qualify_policy_expr(expr.operand, binding, fields, rule)
        )
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(
                _qualify_policy_expr(arg, binding, fields, rule)
                for arg in expr.args
            ),
            expr.star,
        )
    if isinstance(expr, InList):
        return InList(
            _qualify_policy_expr(expr.operand, binding, fields, rule),
            tuple(
                _qualify_policy_expr(item, binding, fields, rule)
                for item in expr.items
            ),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            _qualify_policy_expr(expr.operand, binding, fields, rule),
            _qualify_policy_expr(expr.low, binding, fields, rule),
            _qualify_policy_expr(expr.high, binding, fields, rule),
            expr.negated,
        )
    if isinstance(expr, Like):
        return Like(
            _qualify_policy_expr(expr.operand, binding, fields, rule),
            expr.pattern,
            expr.negated,
        )
    raise QueryError(
        f"governance policy for tenant {rule.tenant!r} on table "
        f"{rule.table!r} uses an unsupported row-filter construct: {expr!r}"
    )

"""SQL substrate: lexer, parser, AST, expression evaluation, logical plans.

Characteristic 6: "to support ad hoc access, any serious content integration
solution must support a query language ... today, this requires the use of
the standard SQL language."  This package implements the SQL subset the
federated engine (:mod:`repro.federation`) answers:

``SELECT`` with expressions and aliases, ``FROM`` with inner ``JOIN ... ON``,
``WHERE`` (including ``LIKE``, ``IN``, ``BETWEEN``, ``CONTAINS``), ``GROUP
BY`` with ``COUNT/SUM/AVG/MIN/MAX`` and ``HAVING``, ``ORDER BY``, ``LIMIT``,
plus the object-relational extensions §4 advertises: a ``FUZZY(a, b)``
similarity function and ``MATCH(column, 'query')`` full-text predicate
backed by :mod:`repro.ir`.

The output of :func:`~repro.sql.parser.parse_sql` is an AST;
:func:`~repro.sql.planner.build_plan` turns it into a logical operator tree
whose leaves are table scans with pushable predicates -- the unit the
federated optimizers place onto sites.
"""

from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    FuncCall,
    InList,
    JoinClause,
    Like,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.expressions import evaluate
from repro.sql.lexer import SqlLexError, tokenize_sql
from repro.sql.parser import SqlParseError, parse_sql
from repro.sql.planner import (
    AggregateNode,
    AggregateSplit,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    build_plan,
)
from repro.sql.rewrite import (
    AggregateSplitting,
    PredicatePushdown,
    ProjectionPruning,
    RewritePass,
    RewritePipeline,
    SiteFilterPushdown,
    TextIndexRewrite,
    TextIndexTarget,
)

__all__ = [
    "Between",
    "BinaryOp",
    "Column",
    "FuncCall",
    "InList",
    "JoinClause",
    "Like",
    "Literal",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "Star",
    "TableRef",
    "UnaryOp",
    "evaluate",
    "SqlLexError",
    "tokenize_sql",
    "SqlParseError",
    "parse_sql",
    "AggregateNode",
    "AggregateSplit",
    "FilterNode",
    "JoinNode",
    "LimitNode",
    "PlanNode",
    "ProjectNode",
    "ScanNode",
    "SortNode",
    "build_plan",
    "AggregateSplitting",
    "PredicatePushdown",
    "ProjectionPruning",
    "RewritePass",
    "RewritePipeline",
    "SiteFilterPushdown",
    "TextIndexRewrite",
    "TextIndexTarget",
]

"""The federated engine facade: SQL and XPath in, rows or XML out.

This is the integrator's query surface (§3.2 C6):

* :meth:`FederatedEngine.query` -- parse SQL, plan with catalog metadata,
  optimize (agoric by default, the centralized baseline pluggable), execute
  across sites, and charge the response time to the simulation clock.
* :meth:`FederatedEngine.xpath_query` -- the same integrated content as an
  XML view, queried with XPath.
* :meth:`FederatedEngine.search` -- the IR surface: synonym/fuzzy/taxonomy
  expanded search over a table's text index.
* materialized views -- :meth:`create_materialized_view` /
  :meth:`refresh_view` / :meth:`schedule_view_refresh` implement the
  fetch-in-advance half of Characteristic 5; queries opt into staleness
  with ``max_staleness`` (``None`` = any cached copy is fine,
  ``LIVE_ONLY`` = must fetch on demand).
* the semantic cache -- when constructed with one, the engine attaches it
  to the optimizer so covering predicate regions (verbatim or implied:
  ``price < 5`` covers ``price < 3``) *bid* against fragments and views as
  a priced access path, live scan results are admitted by benefit
  (rows x saved fetch seconds), and base-table update notifications from
  the catalog invalidate the affected regions.

Before optimization the logical plan runs through the engine's rewrite
pipeline (:mod:`repro.sql.rewrite`): ``MATCH(column, 'query')`` predicates
become text-index access paths -- the paper's "text search engine ... fully
modeled ... as an access path" (§4) -- then residual single-binding filters,
projection pruning, and partial/final aggregate splitting move work onto
the sites that own the rows.  The optimizers place the scans; the physical
operator layer (:mod:`repro.federation.physical`) executes the annotated
plan and :meth:`FederatedEngine.explain` with ``analyze=True`` shows the
per-operator accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.errors import PartialFailureError, QueryError, SourceUnavailableError
from repro.core.records import Table
from repro.federation.agoric import AgoricOptimizer
from repro.federation.cache import SemanticCache
from repro.federation.catalog import FederationCatalog
from repro.federation.executor import ExecutionReport, Executor, PhysicalPlan
from repro.federation.health import RetryPolicy, SiteHealthTracker
from repro.federation.reopt import ReoptController, ReoptPolicy
from repro.ir.search import CatalogSearch, SearchMode, SynonymExpander, TaxonomyExpander
from repro.federation.views import MaterializedView
from repro.sim.events import EventLoop
from repro.sim.metrics import MetricsRegistry
from repro.sql.ast import (
    BinaryOp,
    InList,
    InSubquery,
    Literal,
    SelectStatement,
    UnaryOp,
)
from repro.sql.params import (
    bind_plan,
    bind_statement,
    check_parameters,
    count_parameters,
    statement_has_subqueries,
)
from repro.sql.parser import parse_sql
from repro.sql.planner import PlanNode, build_plan, scans_in
from repro.sql.rewrite import (
    AggregateSplitting,
    ProjectionPruning,
    RewritePipeline,
    SiteFilterPushdown,
    TextIndexRewrite,
    TextIndexTarget,
)
from repro.xmlkit.model import XmlElement
from repro.xmlkit.xpath import xpath
from repro.xmlkit.xquery import xquery as run_xquery

# Passing this as max_staleness forbids every cached/materialized access
# path: the query must fetch on demand (staleness can never be negative).
LIVE_ONLY = -1.0


@dataclass
class QueryResult:
    """Rows plus full accounting for one query."""

    table: Table
    report: ExecutionReport
    plan: PhysicalPlan


@dataclass
class PreparedStatement:
    """A statement parsed, rewritten and optimized once, executed many times.

    The fast path (no subqueries) holds an immutable logical-plan template
    with :class:`~repro.sql.ast.Parameter` nodes still in place plus the
    optimizer's physical decisions; each :meth:`FederatedEngine.execute`
    binds values into a fresh copy of the plan and runs it, paying zero
    modeled optimization seconds.  The template is stamped with the catalog
    version it planned against and (for staleness-sensitive access paths) a
    modeled-time validity bound -- when either expires the next execution
    replans transparently.

    Statements containing ``IN (SELECT ...)`` take a slow path: the inner
    select materializes data-dependent membership lists, so every execution
    binds the pristine statement and plans from scratch.
    """

    sql: str
    param_count: int
    max_staleness: float | None
    coordinator: str | None
    statement: SelectStatement
    has_subqueries: bool
    # Tenant the template was compiled for: governance policies (RLS, masks)
    # are baked into the plan, so the template is only valid for this tenant
    # under this policy content (see ``policy_signature``).
    tenant: str | None = None
    # Fast-path template (None on the subquery slow path):
    logical: PlanNode | None = None
    physical: PhysicalPlan | None = None
    catalog_version: int = -1
    # Content hash of the tenant's governance policy at plan time (None for
    # ungoverned tenants); a manifest edit changes the signature and the
    # next execution replans -- stale unmasked plans can never serve.
    policy_signature: str | None = None
    # Modeled time after which a cached/materialized access path in the
    # template would exceed ``max_staleness`` (None = no expiry).
    valid_until: float | None = None
    # Host wall-clock spent in parse+rewrite+optimize at prepare time; the
    # per-statement planning cost that re-execution amortizes away.
    prepare_wall_seconds: float = 0.0
    # Modeled planning seconds charged when this template was built.
    optimization_seconds: float = 0.0
    executions: int = 0
    replans: int = 0


class FederatedEngine:
    """The content integrator's federated query processor."""

    def __init__(
        self,
        catalog: FederationCatalog,
        optimizer=None,
        metrics: MetricsRegistry | None = None,
        cache: "SemanticCache | None" = None,
        health: "SiteHealthTracker | None" = None,
        retry: RetryPolicy | None = None,
        columnar: bool = True,
        artifacts=None,
        reopt: ReoptPolicy | None = None,
        governance=None,
    ) -> None:
        self.catalog = catalog
        self.optimizer = optimizer or AgoricOptimizer(catalog)
        # Per-tenant governance (a GovernanceRegistry from
        # repro.federation.governance, or None): RLS predicates and column
        # masks compile into every plan built for a governed tenant, and
        # budgets cap agoric bids.
        self.governance = governance
        # Adaptive mid-query re-optimization policy (DESIGN §5i), or None
        # to keep every plan frozen at dispatch.
        self.reopt = reopt
        self.health = health or SiteHealthTracker(catalog.clock)
        self.retry = retry or RetryPolicy()
        self.executor = Executor(
            catalog, health=self.health, retry=self.retry, cache=cache,
            columnar=columnar, artifacts=artifacts,
        )
        self.metrics = metrics or MetricsRegistry()
        self.cache = cache
        # The content-hashed stage artifact store (an ArtifactStore from
        # repro.federation.artifacts, or None to disable stage reuse).
        self.artifacts = artifacts
        # Availability is an access-path concern too: the optimizers consult
        # the health tracker so flaky sites' bids carry a risk penalty.
        if getattr(self.optimizer, "health", None) is None:
            self.optimizer.health = self.health
        if cache is not None:
            # The cache is an access path, so the *optimizer* owns the
            # decision: attach it (unless the caller wired one already) so
            # covering regions bid against fragments and views.
            if getattr(self.optimizer, "cache", None) is None:
                self.optimizer.cache = cache
            if cache.metrics is None:
                cache.metrics = self.metrics
            # Base-table updates invalidate cached regions of that table;
            # TTL alone is a fallback, not the correctness story.
            self.catalog.on_table_updated(cache.invalidate_table)
        if artifacts is not None:
            # Artifacts are an access path too: offer them to the optimizer
            # and invalidate on base-table writes, exactly like the cache.
            if getattr(self.optimizer, "artifacts", None) is None:
                self.optimizer.artifacts = artifacts
            if artifacts.metrics is None:
                artifacts.metrics = self.metrics
            self.catalog.on_table_updated(artifacts.invalidate_table)
        if governance is not None and governance.metrics is None:
            governance.metrics = self.metrics
        self.synonyms: SynonymExpander | None = None
        self.taxonomy_expander: TaxonomyExpander | None = None

    # -- SQL --------------------------------------------------------------------

    def query(
        self,
        sql: str,
        max_staleness: float | None = None,
        coordinator: str | None = None,
        advance_clock: bool = True,
        budget: float | None = None,
        degraded_ok: bool = False,
        reuse_artifacts: bool = True,
        deadline_at: float | None = None,
        tenant: str | None = None,
    ) -> QueryResult:
        """Answer one SQL query.

        ``max_staleness``: ``None`` accepts any materialized copy, a number
        bounds acceptable staleness in seconds, :data:`LIVE_ONLY` forces
        fetch-on-demand.  ``budget`` (agoric optimizer only) caps the total
        price paid for the plan; an unaffordable market raises
        :class:`~repro.federation.agoric.BudgetExceededError`.

        ``degraded_ok=True`` accepts a *partial* answer when content is
        unreachable even after failover: the result carries
        ``report.completeness`` (reachable rows / total rows) and
        ``report.unreachable_fragments`` instead of raising.  Without the
        flag an unreachable fragment raises a structured
        :class:`~repro.core.errors.PartialFailureError` naming the dead
        sites and fragments.

        ``tenant`` names who is asking.  With a governance registry
        attached, the tenant's RLS predicates and column masks compile into
        the plan during rewrite and its remaining cost budget caps the
        agoric bid; without one (or for an ungoverned tenant) the plan is
        unchanged.
        """
        statement = parse_sql(sql)
        return self._execute_statement(
            statement, max_staleness, coordinator, advance_clock, budget,
            degraded_ok, reuse_artifacts, deadline_at=deadline_at,
            tenant=tenant,
        )

    def _execute_statement(
        self,
        statement,
        max_staleness: float | None = None,
        coordinator: str | None = None,
        advance_clock: bool = True,
        budget: float | None = None,
        degraded_ok: bool = False,
        reuse_artifacts: bool = True,
        deadline_at: float | None = None,
        tenant: str | None = None,
    ) -> QueryResult:
        # Uncorrelated IN-subqueries run first (semijoin by materialization:
        # the inner membership set is fetched, then shipped into the outer
        # query's filter).  The same tenant governs the inner selects --
        # membership lists must not leak rows the policy hides.
        statement.where = self._rewrite_subqueries(
            statement.where, max_staleness, advance_clock, tenant
        )
        statement.having = self._rewrite_subqueries(
            statement.having, max_staleness, advance_clock, tenant
        )
        bindings = {statement.table.binding: statement.table.name}
        for join in statement.joins:
            bindings[join.table.binding] = join.table.name
        binding_fields = self.catalog.binding_fields(bindings)
        plan = build_plan(statement, binding_fields)
        plan = self._apply_rewrites(plan, bindings, binding_fields, tenant)

        # The tenant's remaining budget caps the agoric bid (on top of any
        # caller-supplied cap); non-agoric optimizers keep their signature
        # and rely on admission-time budget gates instead.
        effective_budget = budget
        if self.governance is not None:
            effective_budget = self.governance.effective_budget(tenant, budget)
        if effective_budget is not None and isinstance(
            self.optimizer, AgoricOptimizer
        ):
            physical = self.optimizer.optimize(
                plan, coordinator, max_staleness, budget=effective_budget
            )
        elif budget is not None:
            physical = self.optimizer.optimize(
                plan, coordinator, max_staleness, budget=budget
            )
        else:
            physical = self.optimizer.optimize(plan, coordinator, max_staleness)
        self._annotate_text_filters(plan, physical)
        return self._run_physical(
            plan, physical, max_staleness, advance_clock, degraded_ok,
            reuse_artifacts, deadline_at=deadline_at, tenant=tenant,
        )

    def _run_physical(
        self,
        plan: PlanNode,
        physical: PhysicalPlan,
        max_staleness: float | None,
        advance_clock: bool,
        degraded_ok: bool,
        reuse_artifacts: bool = True,
        deadline_at: float | None = None,
        tenant: str | None = None,
    ) -> QueryResult:
        """Execute an already-optimized plan and do all the accounting.

        Shared by the parse-per-statement path and prepared-statement
        execution.  ``physical.optimization_seconds`` is whatever planning
        this *particular* execution should be charged: the full modeled
        planning cost for ad-hoc statements, zero for a cached prepared
        template (that is the speedup being bought).
        """
        start = self.catalog.clock.now()
        cache_scans = sum(
            1 for a in physical.assignments.values() if a.kind == "cache"
        )
        if cache_scans:
            self.metrics.counter("cache.scan_hits").inc(cache_scans)

        controller = None
        if self.reopt is not None:
            controller = ReoptController(
                self.reopt,
                self.optimizer,
                self.catalog,
                health=self.health,
                artifacts=self.artifacts,
                max_staleness=max_staleness,
                deadline_at=deadline_at,
            )
        try:
            table, report = self.executor.execute(
                physical, degraded_ok=degraded_ok, max_staleness=max_staleness,
                reuse_artifacts=reuse_artifacts, reopt=controller,
            )
        except (PartialFailureError, SourceUnavailableError):
            self.metrics.counter("queries.partial_failures").inc()
            raise
        # Only *modeled* optimization seconds reach the simulated response
        # time (DESIGN §7 determinism); the host's real planning time is
        # reported out-of-band.
        report.response_seconds += physical.optimization_seconds
        report.planner_wall_seconds = physical.planner_wall_seconds
        report.fragments_pruned = sum(
            a.pruned_fragments for a in physical.assignments.values()
        )
        report.fragments_total = sum(
            a.total_fragments for a in physical.assignments.values()
        )
        if self.governance is not None and tenant is not None:
            if any(scan.governance is not None for scan in scans_in(plan)):
                report.governed_tenant = tenant
            # Budgets are priced in the plan's own currency: the execution
            # debits exactly what the optimizer agreed to pay.
            self.governance.charge(tenant, physical.total_price)

        if advance_clock:
            target = start + report.response_seconds
            if target > self.catalog.clock.now():
                self.catalog.clock.advance_to(target)
        # Register captured stage outputs as *in-flight* artifacts.  The
        # stage becomes joinable immediately, but only commits to the store
        # once the producing query's modeled completion passes -- under the
        # workload manager's frozen-clock dispatch that is the window a
        # concurrent identical stage subscribes in.
        if self.artifacts is not None and reuse_artifacts:
            completes_at = start + report.response_seconds
            for output in report.stage_outputs:
                if self.artifacts.begin_stage(output, completes_at):
                    report.artifact_published_keys.append(output.key)
        # Store *after* the response clock has advanced: entries are stamped
        # with the fetch timestamp captured at scan time, so staleness is
        # measured from when the rows were read, never from "now".
        if self.cache is not None:
            self._store_in_cache(plan, report)

        self.record_report_metrics(report)
        return QueryResult(table, report, physical)

    # -- prepared statements -----------------------------------------------------

    def prepare(
        self,
        sql: str,
        max_staleness: float | None = None,
        coordinator: str | None = None,
        tenant: str | None = None,
    ) -> PreparedStatement:
        """Parse, rewrite and optimize ``sql`` once for repeated execution.

        ``?`` placeholders become :class:`~repro.sql.ast.Parameter` nodes
        that survive planning; :meth:`execute` binds values into a copy of
        the template.  ``max_staleness`` is fixed at prepare time because it
        shapes access-path choice (a plan reading a materialized view is
        only valid for queries that tolerate its staleness).  ``tenant`` is
        fixed at prepare time for the same reason: governance compiles the
        tenant's RLS/mask policy into the template, so the template belongs
        to that tenant (and to that policy content -- a manifest edit
        replans on the next execution).
        """
        wall_start = time.perf_counter()
        statement = parse_sql(sql)
        prepared = PreparedStatement(
            sql=sql,
            param_count=count_parameters(statement),
            max_staleness=max_staleness,
            coordinator=coordinator,
            statement=statement,
            has_subqueries=statement_has_subqueries(statement),
            tenant=tenant,
        )
        if not prepared.has_subqueries:
            self._plan_prepared(prepared)
        prepared.prepare_wall_seconds = time.perf_counter() - wall_start
        self.metrics.counter("queries.prepared").inc()
        return prepared

    def _plan_prepared(self, prepared: PreparedStatement) -> None:
        """(Re)build the template plan; stamps catalog version + validity."""
        statement = prepared.statement
        bindings = {statement.table.binding: statement.table.name}
        for join in statement.joins:
            bindings[join.table.binding] = join.table.name
        binding_fields = self.catalog.binding_fields(bindings)
        plan = build_plan(statement, binding_fields)
        plan = self._apply_rewrites(
            plan, bindings, binding_fields, prepared.tenant
        )
        physical = self.optimizer.optimize(
            plan, prepared.coordinator, prepared.max_staleness
        )
        self._annotate_text_filters(plan, physical)
        prepared.logical = plan
        prepared.physical = physical
        prepared.catalog_version = self.catalog.version
        prepared.policy_signature = (
            self.governance.signature_for(prepared.tenant)
            if self.governance is not None
            else None
        )
        prepared.optimization_seconds = physical.optimization_seconds
        prepared.valid_until = self._prepared_validity(
            physical, prepared.max_staleness
        )

    def _prepared_validity(
        self, physical: PhysicalPlan, max_staleness: float | None
    ) -> float | None:
        """Modeled time at which the template's access paths go stale.

        Fragment scans read live content and never expire here (catalog
        version changes cover topology).  View and cache paths serve copies
        stamped at fetch time: under a numeric ``max_staleness`` bound the
        plan stops being an answer the query would accept once the copy's
        age exceeds the bound.
        """
        if max_staleness is None or max_staleness < 0:
            return None
        now = self.catalog.clock.now()
        bounds: list[float] = []
        for assignment in physical.assignments.values():
            if assignment.kind == "view" and assignment.view is not None:
                bounds.append(assignment.view.as_of + max_staleness)
            elif assignment.kind == "cache":
                as_of = now - assignment.cached_staleness
                bounds.append(as_of + max_staleness)
            elif assignment.kind == "artifact" and assignment.artifact is not None:
                bounds.append(assignment.artifact.fetched_at + max_staleness)
        return min(bounds) if bounds else None

    def execute(
        self,
        prepared: PreparedStatement,
        params: "tuple | list" = (),
        advance_clock: bool = True,
        degraded_ok: bool = False,
        reuse_artifacts: bool = True,
        deadline_at: float | None = None,
    ) -> QueryResult:
        """Run a prepared statement with ``params`` bound to its ``?`` slots.

        Fast path: the cached template is revalidated (catalog version and
        staleness bound), values are bound into a fresh copy of the logical
        plan, and execution pays **zero** modeled planning seconds -- plan
        once, bind many.  A stale template replans transparently (counted
        in ``prepared.replans`` and the ``prepared.replans`` metric).
        """
        values = check_parameters(prepared.param_count, params)
        prepared.executions += 1
        self.metrics.counter("queries.prepared_executions").inc()

        if prepared.has_subqueries:
            # Slow path: the inner select's result is data-dependent, so
            # bind the pristine statement and plan from scratch.
            statement = bind_statement(prepared.statement, values)
            return self._execute_statement(
                statement,
                prepared.max_staleness,
                prepared.coordinator,
                advance_clock,
                None,
                degraded_ok,
                reuse_artifacts,
                deadline_at=deadline_at,
                tenant=prepared.tenant,
            )

        if (
            prepared.catalog_version != self.catalog.version
            or (
                prepared.valid_until is not None
                and self.catalog.clock.now() > prepared.valid_until
            )
            or (
                self.governance is not None
                and prepared.policy_signature
                != self.governance.signature_for(prepared.tenant)
            )
        ):
            self._plan_prepared(prepared)
            prepared.replans += 1
            self.metrics.counter("prepared.replans").inc()

        bound = bind_plan(prepared.logical, values)
        template = prepared.physical
        physical = PhysicalPlan(
            logical=bound,
            # With adaptive re-opt on, a controller may swap a stage's
            # assignment mid-execution; copy the dict so migrations never
            # leak into the cached template.
            assignments=(
                dict(template.assignments)
                if self.reopt is not None
                else template.assignments
            ),
            coordinator=template.coordinator,
            optimizer=template.optimizer,
            # Planning was paid at prepare time; re-execution charges none.
            optimization_seconds=0.0,
            planner_wall_seconds=0.0,
            sites_contacted=template.sites_contacted,
            total_price=template.total_price,
        )
        return self._run_physical(
            bound, physical, prepared.max_staleness, advance_clock, degraded_ok,
            reuse_artifacts, deadline_at=deadline_at, tenant=prepared.tenant,
        )

    def rerun_physical(
        self,
        result: QueryResult,
        max_staleness: float | None = None,
        degraded_ok: bool = False,
        deadline_at: float | None = None,
    ) -> QueryResult:
        """Re-execute an already-planned query against the *current* cluster.

        The workload manager calls this when a disturbance (site kill, load
        spike) lands on a running query's pending stages: the original
        physical plan re-runs with zero additional planning charged, against
        a frozen clock, so the handle's completion can be rescheduled from
        whatever the federation looks like now.  Without a re-opt policy the
        frozen assignments stand and the execution pays failover backoff or
        congestion inflation; with one, the controller may migrate unstarted
        stages to healthier replicas.  Either way the answer is bit-identical
        to the original plan's (replicas hold the same fragment rows).
        """
        template = result.plan
        physical = PhysicalPlan(
            logical=template.logical,
            # Copy so a controller migration never mutates the caller's plan
            # (which may be a prepared-statement template).
            assignments=dict(template.assignments),
            coordinator=template.coordinator,
            optimizer=template.optimizer,
            optimization_seconds=0.0,
            planner_wall_seconds=0.0,
            sites_contacted=template.sites_contacted,
            total_price=template.total_price,
        )
        return self._run_physical(
            template.logical, physical, max_staleness, False, degraded_ok,
            reuse_artifacts=True, deadline_at=deadline_at,
        )

    def record_report_metrics(self, report: ExecutionReport) -> None:
        """Feed one execution report into the metrics registry.

        Public so harnesses that drive the optimizer/executor directly
        (e.g. the availability bench, which interleaves failures between
        planning and execution) surface the same counters as
        :meth:`query`.
        """
        self.metrics.counter("queries").inc()
        self.metrics.histogram("query.response_seconds").observe(report.response_seconds)
        self.metrics.histogram("query.staleness_seconds").observe(report.staleness_seconds)
        self.metrics.counter("rows.fetched").inc(report.rows_fetched)
        self.metrics.counter("rows.shipped").inc(report.rows_shipped)
        self.metrics.counter("bytes.shipped").inc(report.bytes_shipped)
        if report.failover_attempts:
            self.metrics.counter("failover.attempts").inc(report.failover_attempts)
        if report.failovers:
            self.metrics.counter("failover.successes").inc(report.failovers)
        if report.retry_seconds:
            self.metrics.counter("failover.retry_seconds").inc(report.retry_seconds)
        if report.degraded:
            self.metrics.counter("queries.degraded").inc()
        if report.artifact_rows_saved:
            self.metrics.counter("artifacts.rows_saved").inc(
                report.artifact_rows_saved
            )
        if report.artifact_bytes_saved:
            self.metrics.counter("artifacts.bytes_saved").inc(
                report.artifact_bytes_saved
            )
        if report.reoptimizations:
            self.metrics.counter("reopt.attempts").inc(report.reoptimizations)
        if report.migrated_stages:
            self.metrics.counter("reopt.migrations").inc(report.migrated_stages)
        if report.reopt_wasted_seconds:
            self.metrics.counter("reopt.wasted_seconds").inc(
                report.reopt_wasted_seconds
            )
        if report.governed_tenant is not None:
            self.metrics.counter("governance.queries_policed").inc()
        if report.rows_filtered_by_rls:
            self.metrics.counter("governance.rows_filtered_by_rls").inc(
                report.rows_filtered_by_rls
            )
        self.metrics.histogram("query.completeness").observe(report.completeness)
        if report.fragments_total:
            self.metrics.counter("pruning.fragments_pruned").inc(
                report.fragments_pruned
            )
            self.metrics.counter("pruning.fragments_total").inc(
                report.fragments_total
            )
        if report.operators is not None:
            self._record_operator_metrics(report.operators)

    def _apply_rewrites(
        self, plan: PlanNode, bindings, binding_fields, tenant: str | None = None
    ) -> PlanNode:
        """The standard rewrite pipeline, applied after pushdown in build_plan.

        Order matters: MATCH conjuncts must leave the residual filter before
        site-filter pushdown claims them as ordinary row predicates;
        governance injects after the filter passes (so it can hoist user
        predicates off masked columns) but before projection pruning (whose
        column sets must include hoisted site filters); and aggregate
        splitting only fires once absorbed filters expose an aggregation
        sitting directly on its scan.
        """
        passes = [
            TextIndexRewrite(self._text_targets(bindings)),
            SiteFilterPushdown(binding_fields),
        ]
        if self.governance is not None:
            governance_pass = self.governance.injection_pass(
                tenant, binding_fields
            )
            if governance_pass is not None:
                passes.append(governance_pass)
        passes.extend(
            [
                ProjectionPruning(binding_fields),
                AggregateSplitting(),
            ]
        )
        return RewritePipeline(passes).run(plan)

    def _text_targets(self, bindings: dict[str, str]) -> dict[str, TextIndexTarget]:
        """What the text-index rewrite may target, per binding."""
        targets: dict[str, TextIndexTarget] = {}
        for binding, table_name in bindings.items():
            entry = self.catalog.tables.get(table_name)
            if entry is None:
                continue  # views-by-name have no text index
            targets[binding] = TextIndexTarget(
                fields=frozenset(entry.schema.field_names),
                text_column=(
                    entry.text_column if entry.text_index is not None else None
                ),
            )
        return targets

    @staticmethod
    def _annotate_text_filters(plan: PlanNode, physical: PhysicalPlan) -> None:
        """Copy scan-level text-index annotations onto the assignments."""
        for scan in scans_in(plan):
            if scan.text_filter is None:
                continue
            assignment = physical.assignments.get(scan.binding)
            if assignment is not None:
                assignment.text_filter = scan.text_filter

    def _record_operator_metrics(self, operators) -> None:
        """Feed the per-operator stats tree into the metrics registry."""
        for stats in operators.walk():
            self.metrics.counter(f"operator.{stats.name}.rows_out").inc(
                stats.rows_out
            )
            self.metrics.histogram(f"operator.{stats.name}.seconds").observe(
                stats.seconds
            )
            if stats.batches:
                self.metrics.counter(
                    f"operator.{stats.name}.batches_processed"
                ).inc(stats.batches)
            if stats.encode_seconds:
                self.metrics.counter(
                    f"operator.{stats.name}.encode_seconds"
                ).inc(stats.encode_seconds)
            if stats.decode_seconds:
                self.metrics.counter(
                    f"operator.{stats.name}.decode_seconds"
                ).inc(stats.decode_seconds)

    def explain(
        self,
        sql: str,
        max_staleness: float | None = None,
        analyze: bool = False,
        tenant: str | None = None,
    ) -> str:
        """Render the physical plan for ``sql``.

        Without ``analyze`` the query is planned but not executed: the
        logical operator tree is shown with, for every scan, the access path
        the optimizer chose (fragments at which sites, a materialized view,
        or a cache region) and what was pushed down.  With ``analyze=True``
        the query **runs** (against a frozen clock) and every physical
        operator reports its placement site, rows in/out and seconds of
        modeled work.
        """
        if analyze:
            statement = parse_sql(sql)
            result = self._execute_statement(
                statement, max_staleness, advance_clock=False, tenant=tenant
            )
            return self.render_analyze(result)

        statement = parse_sql(sql)
        bindings = {statement.table.binding: statement.table.name}
        for join in statement.joins:
            bindings[join.table.binding] = join.table.name
        binding_fields = self.catalog.binding_fields(bindings)
        plan = build_plan(statement, binding_fields)
        plan = self._apply_rewrites(plan, bindings, binding_fields, tenant)
        physical = self.optimizer.optimize(plan, None, max_staleness)
        self._annotate_text_filters(plan, physical)

        lines = [
            f"optimizer: {physical.optimizer}  "
            f"coordinator: {physical.coordinator}  "
            f"price: {physical.total_price:.4f}"
        ]
        lines.extend(self._explain_node(plan, physical, depth=0))
        return "\n".join(lines)

    def render_analyze(self, result: QueryResult) -> str:
        """Render an executed query's EXPLAIN ANALYZE accounting.

        Shared by :meth:`explain` (which runs the query itself) and
        :meth:`~repro.federation.workload.WorkloadManager.explain_analyze`
        (which runs it through the admission queue); a report stamped by the
        workload manager shows its tenant, scheduler and queue wait.
        """
        report = result.report
        lines = [
            f"optimizer: {result.plan.optimizer}  "
            f"coordinator: {result.plan.coordinator}  "
            f"price: {result.plan.total_price:.4f}",
            f"response: {report.response_seconds:.6f}s  "
            f"rows fetched: {report.rows_fetched}  "
            f"shipped: {report.rows_shipped}  "
            f"returned: {report.rows_returned}  "
            f"bytes shipped: {report.bytes_shipped}",
        ]
        if report.tenant is not None:
            lines.append(
                f"tenant: {report.tenant}  scheduler: {report.scheduler}  "
                f"queue wait: {report.queue_wait_seconds:.6f}s"
            )
        if report.artifact_hits or report.artifact_joins:
            lines.append(
                f"artifact reuse: hits {report.artifact_hits}  "
                f"joins {report.artifact_joins}  "
                f"rows saved {report.artifact_rows_saved}  "
                f"bytes saved {report.artifact_bytes_saved}"
            )
        if report.reoptimizations:
            lines.append(
                f"re-optimizations: {report.reoptimizations}  "
                f"migrated stages: {report.migrated_stages}  "
                f"wasted: {report.reopt_wasted_seconds:.6f}s"
            )
        if report.fragments_total:
            lines.append(
                f"pruned fragments {report.fragments_pruned}/"
                f"{report.fragments_total}"
            )
        if report.operators is not None:
            lines.extend(report.operators.tree_lines())
        return "\n".join(lines)

    def _explain_node(self, node, physical: PhysicalPlan, depth: int) -> list[str]:
        from repro.sql.planner import (
            AggregateNode,
            FilterNode,
            JoinNode,
            LimitNode,
            ProjectNode,
            ScanNode,
            SortNode,
        )

        pad = "  " * depth
        if isinstance(node, ScanNode):
            assignment = physical.assignments[node.binding]
            if assignment.kind == "view":
                detail = f"view {assignment.view.name} @ {assignment.view.site_name}"
            elif assignment.kind == "cache":
                from repro.federation.physical import describe_cache_path

                detail = describe_cache_path(assignment)
            elif assignment.kind == "artifact":
                from repro.federation.physical import describe_artifact_path

                detail = describe_artifact_path(assignment)
            else:
                from repro.federation.physical import describe_pruning

                placed = ", ".join(
                    f"{c.fragment.fragment_id}@{c.site_name}"
                    for c in assignment.choices
                )
                detail = f"fragments [{placed}]{describe_pruning(assignment)}"
            extras = ""
            # RLS conjuncts live in the ordinary pushdown list (that is how
            # they prune and price); attribute them to the policy in the
            # rendering instead of listing them twice.
            user_pushdown = node.pushdown
            if node.governance is not None and node.governance.rls_pushed:
                user_pushdown = [
                    p for p in node.pushdown
                    if p not in node.governance.rls_pushed
                ]
            if user_pushdown:
                predicates = ", ".join(
                    f"{p.column} {p.op} {p.value!r}" for p in user_pushdown
                )
                extras += f" pushdown({predicates})"
            if node.site_filters:
                from repro.federation.physical import describe_expr

                rendered = ", ".join(describe_expr(c) for c in node.site_filters)
                extras += f" site-filter({rendered})"
            if node.needed_columns is not None:
                extras += f" columns({', '.join(sorted(node.needed_columns))})"
            if assignment.text_filter is not None:
                extras += f" text-index{assignment.text_filter!r}"
            if node.governance is not None:
                from repro.federation.physical import describe_expr

                rls_parts = [
                    f"{p.column} {p.op} {p.value!r}"
                    for p in node.governance.rls_pushed
                ]
                rls_parts.extend(
                    describe_expr(c) for c in node.governance.rls_residual
                )
                if rls_parts:
                    extras += (
                        f" rls(tenant={node.governance.tenant}: "
                        f"{', '.join(rls_parts)})"
                    )
                for column in sorted(node.governance.masks):
                    extras += f" mask({column})"
            return [f"{pad}scan {node.table} as {node.binding}: {detail}{extras}"]
        label = {
            FilterNode: "filter",
            JoinNode: "join",
            ProjectNode: "project",
            AggregateNode: "aggregate",
            SortNode: "sort",
            LimitNode: "limit",
        }.get(type(node), type(node).__name__)
        if isinstance(node, JoinNode):
            label = f"{node.join_type} join"
        if isinstance(node, AggregateNode) and node.split is not None:
            label = f"{label} (partial at sites, final at coordinator)"
        lines = [f"{pad}{label}"]
        for child in node.children():
            lines.extend(self._explain_node(child, physical, depth + 1))
        return lines

    def _rewrite_subqueries(self, expr, max_staleness, advance_clock, tenant=None):
        """Replace ``IN (SELECT ...)`` with the materialized value list."""
        if expr is None:
            return None
        if isinstance(expr, InSubquery):
            inner = self._execute_statement(
                expr.subquery, max_staleness, advance_clock=advance_clock,
                tenant=tenant,
            )
            if len(inner.table.schema) != 1:
                raise QueryError(
                    "IN (SELECT ...) subquery must produce exactly one column, "
                    f"got {len(inner.table.schema)}"
                )
            values = inner.table.column(inner.table.schema.field_names[0])
            items = tuple(Literal(v) for v in values if v is not None)
            return InList(expr.operand, items, expr.negated)
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._rewrite_subqueries(
                    expr.left, max_staleness, advance_clock, tenant
                ),
                self._rewrite_subqueries(
                    expr.right, max_staleness, advance_clock, tenant
                ),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(
                expr.op,
                self._rewrite_subqueries(
                    expr.operand, max_staleness, advance_clock, tenant
                ),
            )
        return expr

    def _store_in_cache(self, plan, report) -> None:
        """Remember live fragment-scan results under their predicate region.

        Each capture carries the fetch timestamp (``as_of`` for staleness)
        and the site work the scan cost (the benefit a future hit saves).
        """
        for scan in scans_in(plan):
            capture = report.scan_tables.get(scan.binding)
            if capture is None:
                continue
            self.cache.store(
                scan.table,
                scan.pushdown,
                capture.table,
                as_of=capture.fetched_at,
                fetch_seconds=capture.fetch_seconds,
            )

    # -- XML / XPath ---------------------------------------------------------------

    def xml_view(self, table_name: str, max_staleness: float | None = None) -> XmlElement:
        """The integrated content of one table as an XML document."""
        result = self.query(f"select * from {table_name}", max_staleness=max_staleness)
        root = XmlElement(table_name)
        for row in result.table.to_dicts():
            element = root.element("row")
            for name, value in row.items():
                child = element.element(name)
                if value is not None:
                    child.append(str(value))
        return root

    def xpath_query(
        self,
        table_name: str,
        path: str,
        max_staleness: float | None = None,
    ) -> "list[XmlElement] | list[str]":
        """Answer an XPath query over the table's XML view (§3.2 C6)."""
        return xpath(self.xml_view(table_name, max_staleness), path)

    def xquery(
        self,
        table_name: str,
        query: str,
        max_staleness: float | None = None,
    ) -> list[XmlElement]:
        """Answer a FLWOR query over the table's XML view -- the paper's
        "SQL and XQuery tomorrow" (§3.2 C6)."""
        return run_xquery(self.xml_view(table_name, max_staleness), query)

    # -- IR search --------------------------------------------------------------------

    def set_vocabulary(
        self,
        synonyms: SynonymExpander | None = None,
        taxonomy_expander: TaxonomyExpander | None = None,
    ) -> None:
        """Attach synonym and taxonomy expansion used by :meth:`search`."""
        self.synonyms = synonyms
        self.taxonomy_expander = taxonomy_expander

    def search(
        self,
        table_name: str,
        query_text: str,
        mode: SearchMode = SearchMode.FULL,
        limit: int = 10,
    ):
        """Ranked IR search over a table's registered text index."""
        entry = self.catalog.entry(table_name)
        if entry.text_index is None:
            raise QueryError(f"table {table_name!r} has no text index")
        search = CatalogSearch(
            entry.text_index,
            synonyms=self.synonyms,
            taxonomy_expander=self.taxonomy_expander,
        )
        return search.search(query_text, mode=mode, limit=limit)

    # -- materialized views -------------------------------------------------------------

    def create_materialized_view(
        self,
        name: str,
        base_table: str,
        site_name: str,
        refresh_interval: float | None = None,
    ) -> MaterializedView:
        """Register an engine-managed whole-table view and fill it once."""
        entry = self.catalog.entry(base_table)
        view = MaterializedView(
            name=name,
            base_table=base_table,
            schema=entry.schema,
            refresh_fn=None,
            site_name=site_name,
            refresh_interval=refresh_interval,
        )
        self.catalog.register_view(view)
        self.refresh_view(view)
        return view

    def refresh_view(self, view: MaterializedView) -> None:
        """Re-materialize a view from the live federation (bypassing views)."""
        result = self.query(
            f"select * from {view.base_table}", max_staleness=LIVE_ONLY
        )
        view.data = result.table
        view.as_of = self.catalog.clock.now()
        view.refresh_count += 1
        view.refresh_cost_seconds += result.report.response_seconds
        self.metrics.counter("view.refreshes").inc()
        self.metrics.counter("view.refresh_seconds").inc(result.report.response_seconds)

    def schedule_view_refresh(self, view: MaterializedView, loop: EventLoop) -> None:
        """Refresh ``view`` on its interval, driven by the event loop.

        A refresh that finds a base site down must not crash the event loop
        mid-simulation: the failure is counted on the view (and in metrics)
        and the next scheduled tick simply tries again -- the view serves
        its stale copy in the meantime, which is exactly its job.
        """
        if view.refresh_interval is None or view.refresh_interval <= 0:
            raise QueryError(f"view {view.name!r} has no positive refresh interval")

        def _refresh_or_skip() -> None:
            try:
                self.refresh_view(view)
            except (SourceUnavailableError, QueryError):
                view.refresh_failures += 1
                self.metrics.counter("view.refresh_failures").inc()

        loop.schedule_every(
            view.refresh_interval,
            _refresh_or_skip,
            name=f"refresh:{view.name}",
        )

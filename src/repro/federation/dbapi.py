"""A DB-API 2.0 (PEP 249) style interface to the federated engine.

§4: "Cohera Connect can present a traditional ODBC or JDBC interface to
query applications."  Python's equivalent of ODBC is the DB-API, so the
reproduction speaks it: :func:`connect` returns a :class:`Connection` whose
cursors execute federated SQL with qmark (``?``) parameter binding and
expose ``description`` / ``rowcount`` / ``fetchone`` / ``fetchmany`` /
``fetchall`` exactly the way a driver would.  Any DB-API-shaped tool can
sit on top of the federation unchanged.

Multi-tenant deployments connect *through the workload manager*:
``connect(engine, workload=manager, tenant="partner-a", priority=2)``
routes every statement through admission control and the scheduler (the
driver drives the event loop until the query resolves, so ``execute`` stays
synchronous), and ``cursor.last_report.queue_wait_seconds`` shows what the
statement paid in queueing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.core.errors import QueryError
from repro.core.records import Table
from repro.federation.engine import FederatedEngine
from repro.federation.gateway import PlanCache
from repro.federation.physical import ExecutionReport, PhysicalPlan
from repro.sql.parser import SqlParseError
from repro.sql.sqltext import (
    count_placeholders,
    render_literal,
    replace_placeholders,
)

if TYPE_CHECKING:  # imported lazily to avoid a module cycle at runtime
    from repro.federation.workload import WorkloadManager

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"


class InterfaceError(QueryError):
    """Misuse of the DB-API surface (closed cursor, bad parameters...)."""


def _quote_literal(value: Any) -> str:
    """One parameter value as a SQL literal token.

    Non-finite floats and bytes have no spelling in the grammar -- binding
    them textually would produce unparseable (or silently wrong) SQL, so
    they are rejected here with a clear error instead of downstream with a
    confusing one.  Types without a literal form fall back to their string
    representation, quoted.
    """
    if isinstance(value, float) and not math.isfinite(value):
        raise InterfaceError(
            f"cannot bind non-finite float {value!r}: inf/nan have no SQL "
            "literal form"
        )
    if isinstance(value, (bytes, bytearray, memoryview)):
        raise InterfaceError(
            "cannot bind bytes: this SQL dialect has no blob literal syntax"
        )
    try:
        return render_literal(value)
    except ValueError:
        return "'" + str(value).replace("'", "''") + "'"


def _bind(sql: str, parameters: Sequence[Any]) -> str:
    """Substitute qmark placeholders into the statement text.

    Shares the gateway's segment scanner (:mod:`repro.sql.sqltext`), so a
    ``?`` inside a single-quoted string (with ``''`` escapes), a
    double-quoted identifier or a ``--`` line comment is never mistaken
    for a placeholder.
    """
    params = list(parameters)
    needed = count_placeholders(sql)
    if needed > len(params):
        raise InterfaceError("more placeholders than parameters")
    if needed < len(params):
        raise InterfaceError(f"{len(params) - needed} unused parameters")
    return replace_placeholders(sql, lambda i: _quote_literal(params[i]))


def _check_bindable(parameters: Sequence[Any]) -> tuple:
    """Validate parameter values for the prepared (AST-binding) path.

    The same rejections as :func:`_quote_literal` apply even though no SQL
    text is rendered: a non-finite float or a bytes value has no SQL-level
    meaning, and accepting it on one path but not the other would make
    driver behaviour depend on which grammar position the ``?`` sat in.
    """
    values = tuple(parameters)
    for value in values:
        if isinstance(value, float) and not math.isfinite(value):
            raise InterfaceError(
                f"cannot bind non-finite float {value!r}: inf/nan have no "
                "SQL literal form"
            )
        if isinstance(value, (bytes, bytearray, memoryview)):
            raise InterfaceError(
                "cannot bind bytes: this SQL dialect has no blob literal "
                "syntax"
            )
    return values


class Cursor:
    """One statement-at-a-time cursor over the federation."""

    arraysize = 1

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection
        self._result: Table | None = None
        self._position = 0
        self._closed = False
        # Accounting for the last executed statement, mirroring what
        # FederatedEngine.query returns (driver users get the same numbers).
        self.last_plan: PhysicalPlan | None = None
        self.last_report: ExecutionReport | None = None

    # -- DB-API attributes ------------------------------------------------------

    @property
    def description(self) -> "list[tuple] | None":
        """Seven-item column descriptors (name, type_code, then Nones)."""
        if self._result is None:
            return None
        return [
            (f.name, f.dtype.value, None, None, None, None, f.nullable)
            for f in self._result.schema.fields
        ]

    @property
    def rowcount(self) -> int:
        return -1 if self._result is None else len(self._result)

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> "Cursor":
        """Run one statement, with qmark parameters bound.

        Statements route through the connection's prepared-statement plan
        cache: the first execution of a SQL shape pays parse + rewrite +
        optimize, repeats bind values into the cached template.  Grammar
        positions that cannot hold a placeholder (``LIKE ?``, ``LIMIT ?``)
        fall back to textual binding per-statement.
        """
        self._check_open()
        connection = self._connection
        values = _check_bindable(parameters)
        try:
            prepared = connection._plan_cache.get_or_prepare(
                sql, max_staleness=connection.max_staleness,
                tenant=connection.tenant,
            )
        except SqlParseError:
            if not count_placeholders(sql):
                raise  # not a placeholder problem: the SQL is just invalid
            return self._execute_textual(sql, values)
        if len(values) < prepared.param_count:
            raise InterfaceError("more placeholders than parameters")
        if len(values) > prepared.param_count:
            raise InterfaceError(
                f"{len(values) - prepared.param_count} unused parameters"
            )
        if connection.workload is not None:
            # Tenanted execution: the statement goes through admission
            # control and the scheduler, and the driver runs the event loop
            # until it resolves -- DB-API callers stay synchronous while the
            # federation underneath runs a concurrent workload.
            handle = connection.workload.submit(
                prepared=prepared,
                params=values,
                tenant=connection.tenant,
                priority=connection.priority,
                degraded_ok=connection.degraded_ok,
            )
            connection.workload.drain(handle)
            result = handle.result()
        else:
            result = connection.engine.execute(
                prepared, values, degraded_ok=connection.degraded_ok
            )
        self._install_result(result)
        return self

    def _execute_textual(self, sql: str, values: tuple) -> "Cursor":
        """The textual-binding fallback for unpreparable statements."""
        bound = _bind(sql, values)
        connection = self._connection
        if connection.workload is not None:
            handle = connection.workload.submit(
                bound,
                tenant=connection.tenant,
                priority=connection.priority,
                max_staleness=connection.max_staleness,
                degraded_ok=connection.degraded_ok,
            )
            connection.workload.drain(handle)
            result = handle.result()
        else:
            result = connection.engine.query(
                bound,
                max_staleness=connection.max_staleness,
                degraded_ok=connection.degraded_ok,
                tenant=connection.tenant,
            )
        self._install_result(result)
        return self

    def _install_result(self, result) -> None:
        self._result = result.table
        self.last_plan = result.plan
        self.last_report = result.report
        self._position = 0

    def executemany(self, sql: str, seq_of_parameters) -> "Cursor":
        executed = False
        for parameters in seq_of_parameters:
            self.execute(sql, parameters)
            executed = True
        if not executed:
            # PEP 249 leaves this unspecified, but retaining the *previous*
            # statement's rows would let a caller fetch stale results from
            # a statement that never ran -- reset instead.
            self._check_open()
            self._result = None
            self._position = 0
            self.last_plan = None
            self.last_report = None
        return self

    # -- fetching ---------------------------------------------------------------------

    def fetchone(self) -> "tuple | None":
        rows = self._rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        rows = self._rows()
        count = size if size is not None else self.arraysize
        chunk = rows[self._position:self._position + count]
        self._position += len(chunk)
        return list(chunk)

    def fetchall(self) -> list[tuple]:
        rows = self._rows()
        remaining = list(rows[self._position:])
        self._position = len(rows)
        return remaining

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._result = None
        self.last_plan = None
        self.last_report = None

    def _check_open(self) -> None:
        if self._closed or self._connection.closed:
            raise InterfaceError("cursor or connection is closed")

    def _rows(self) -> list[tuple]:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no statement has been executed")
        return self._result.rows


class Connection:
    """A DB-API connection wrapping one federated engine.

    With a ``workload`` manager attached, every statement is submitted under
    this connection's ``tenant`` and ``priority`` instead of running on the
    engine directly.
    """

    def __init__(
        self,
        engine: FederatedEngine,
        max_staleness: float | None = None,
        workload: "WorkloadManager | None" = None,
        tenant: str = "default",
        priority: float = 0.0,
        degraded_ok: bool = False,
    ) -> None:
        self.engine = engine
        self.max_staleness = max_staleness
        self.workload = workload
        self.tenant = tenant
        self.priority = priority
        self.degraded_ok = degraded_ok
        self.closed = False
        # Per-connection prepared-statement cache (parse + plan once per
        # SQL shape; see repro.federation.gateway.PlanCache).
        self._plan_cache = PlanCache(engine, metrics=engine.metrics)

    def cursor(self) -> Cursor:
        if self.closed:
            raise InterfaceError("connection is closed")
        return Cursor(self)

    def close(self) -> None:
        self.closed = True

    def commit(self) -> None:
        """No-op: the federation is read-only; provided for API shape."""

    def rollback(self) -> None:
        """No-op: the federation is read-only; provided for API shape."""

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    engine: FederatedEngine,
    max_staleness: float | None = None,
    workload: "WorkloadManager | None" = None,
    tenant: str | None = None,
    priority: float = 0.0,
    degraded_ok: bool = False,
) -> Connection:
    """Open a DB-API connection over a federated engine.

    Pass ``workload=`` (a :class:`~repro.federation.workload.WorkloadManager`)
    to route statements through admission control and scheduling;
    ``tenant``/``priority`` identify this connection's population in that
    queue and require a workload manager.  ``degraded_ok=True`` accepts
    partial answers when content is unreachable after failover (the
    report's ``completeness`` says how partial), on both the direct and
    the tenanted path.
    """
    if workload is None and (tenant is not None or priority != 0.0):
        raise InterfaceError(
            "tenant/priority need a workload manager: "
            "connect(engine, workload=manager, tenant=...)"
        )
    return Connection(
        engine,
        max_staleness,
        workload=workload,
        tenant=tenant if tenant is not None else "default",
        priority=priority,
        degraded_ok=degraded_ok,
    )

"""A DB-API 2.0 (PEP 249) style interface to the federated engine.

§4: "Cohera Connect can present a traditional ODBC or JDBC interface to
query applications."  Python's equivalent of ODBC is the DB-API, so the
reproduction speaks it: :func:`connect` returns a :class:`Connection` whose
cursors execute federated SQL with qmark (``?``) parameter binding and
expose ``description`` / ``rowcount`` / ``fetchone`` / ``fetchmany`` /
``fetchall`` exactly the way a driver would.  Any DB-API-shaped tool can
sit on top of the federation unchanged.

Multi-tenant deployments connect *through the workload manager*:
``connect(engine, workload=manager, tenant="partner-a", priority=2)``
routes every statement through admission control and the scheduler (the
driver drives the event loop until the query resolves, so ``execute`` stays
synchronous), and ``cursor.last_report.queue_wait_seconds`` shows what the
statement paid in queueing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.core.errors import QueryError
from repro.core.records import Table
from repro.federation.engine import FederatedEngine
from repro.federation.physical import ExecutionReport, PhysicalPlan

if TYPE_CHECKING:  # imported lazily to avoid a module cycle at runtime
    from repro.federation.workload import WorkloadManager

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"


class InterfaceError(QueryError):
    """Misuse of the DB-API surface (closed cursor, bad parameters...)."""


def _quote_literal(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def _bind(sql: str, parameters: Sequence[Any]) -> str:
    """Substitute qmark placeholders, respecting string literals."""
    pieces = []
    params = list(parameters)
    in_string = False
    for char in sql:
        if char == "'":
            in_string = not in_string
            pieces.append(char)
        elif char == "?" and not in_string:
            if not params:
                raise InterfaceError("more placeholders than parameters")
            pieces.append(_quote_literal(params.pop(0)))
        else:
            pieces.append(char)
    if params:
        raise InterfaceError(f"{len(params)} unused parameters")
    return "".join(pieces)


class Cursor:
    """One statement-at-a-time cursor over the federation."""

    arraysize = 1

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection
        self._result: Table | None = None
        self._position = 0
        self._closed = False
        # Accounting for the last executed statement, mirroring what
        # FederatedEngine.query returns (driver users get the same numbers).
        self.last_plan: PhysicalPlan | None = None
        self.last_report: ExecutionReport | None = None

    # -- DB-API attributes ------------------------------------------------------

    @property
    def description(self) -> "list[tuple] | None":
        """Seven-item column descriptors (name, type_code, then Nones)."""
        if self._result is None:
            return None
        return [
            (f.name, f.dtype.value, None, None, None, None, f.nullable)
            for f in self._result.schema.fields
        ]

    @property
    def rowcount(self) -> int:
        return -1 if self._result is None else len(self._result)

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> "Cursor":
        self._check_open()
        bound = _bind(sql, parameters)
        connection = self._connection
        if connection.workload is not None:
            # Tenanted execution: the statement goes through admission
            # control and the scheduler, and the driver runs the event loop
            # until it resolves -- DB-API callers stay synchronous while the
            # federation underneath runs a concurrent workload.
            handle = connection.workload.submit(
                bound,
                tenant=connection.tenant,
                priority=connection.priority,
                max_staleness=connection.max_staleness,
            )
            connection.workload.drain(handle)
            result = handle.result()
        else:
            result = connection.engine.query(
                bound, max_staleness=connection.max_staleness
            )
        self._result = result.table
        self.last_plan = result.plan
        self.last_report = result.report
        self._position = 0
        return self

    def executemany(self, sql: str, seq_of_parameters) -> "Cursor":
        for parameters in seq_of_parameters:
            self.execute(sql, parameters)
        return self

    # -- fetching ---------------------------------------------------------------------

    def fetchone(self) -> "tuple | None":
        rows = self._rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        rows = self._rows()
        count = size if size is not None else self.arraysize
        chunk = rows[self._position:self._position + count]
        self._position += len(chunk)
        return list(chunk)

    def fetchall(self) -> list[tuple]:
        rows = self._rows()
        remaining = list(rows[self._position:])
        self._position = len(rows)
        return remaining

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._result = None
        self.last_plan = None
        self.last_report = None

    def _check_open(self) -> None:
        if self._closed or self._connection.closed:
            raise InterfaceError("cursor or connection is closed")

    def _rows(self) -> list[tuple]:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no statement has been executed")
        return self._result.rows


class Connection:
    """A DB-API connection wrapping one federated engine.

    With a ``workload`` manager attached, every statement is submitted under
    this connection's ``tenant`` and ``priority`` instead of running on the
    engine directly.
    """

    def __init__(
        self,
        engine: FederatedEngine,
        max_staleness: float | None = None,
        workload: "WorkloadManager | None" = None,
        tenant: str = "default",
        priority: float = 0.0,
    ) -> None:
        self.engine = engine
        self.max_staleness = max_staleness
        self.workload = workload
        self.tenant = tenant
        self.priority = priority
        self.closed = False

    def cursor(self) -> Cursor:
        if self.closed:
            raise InterfaceError("connection is closed")
        return Cursor(self)

    def close(self) -> None:
        self.closed = True

    def commit(self) -> None:
        """No-op: the federation is read-only; provided for API shape."""

    def rollback(self) -> None:
        """No-op: the federation is read-only; provided for API shape."""

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    engine: FederatedEngine,
    max_staleness: float | None = None,
    workload: "WorkloadManager | None" = None,
    tenant: str | None = None,
    priority: float = 0.0,
) -> Connection:
    """Open a DB-API connection over a federated engine.

    Pass ``workload=`` (a :class:`~repro.federation.workload.WorkloadManager`)
    to route statements through admission control and scheduling;
    ``tenant``/``priority`` identify this connection's population in that
    queue and require a workload manager.
    """
    if workload is None and (tenant is not None or priority != 0.0):
        raise InterfaceError(
            "tenant/priority need a workload manager: "
            "connect(engine, workload=manager, tenant=...)"
        )
    return Connection(
        engine,
        max_staleness,
        workload=workload,
        tenant=tenant if tenant is not None else "default",
        priority=priority,
    )

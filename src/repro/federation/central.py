"""The baseline: a centralized, compile-time, cost-based optimizer.

§3.2 C8: "we see no way for compile-time, centralized cost-based optimizers
to provide required scalability or adaptivity.  Hence, almost all of today's
commercial distributed and heterogeneous systems are unacceptable for
serious content integration."  To test that claim one must *build* such an
optimizer, so here it is, with the two properties the paper indicts:

* **Centralized statistics.**  It plans against a statistics snapshot
  (per-site load, liveness) collected from *every* site in the federation.
  Collection costs one round trip plus per-site processing, so optimizer
  latency grows linearly with federation size -- the scalability failure
  E3 measures.  Between refreshes the snapshot goes stale, so a burst of
  queries is routed by minutes-old load data -- the adaptivity failure E4
  measures.
* **Compile-time enumeration.**  Within a query it *jointly* enumerates
  fragment-to-site assignments (up to ``max_combinations``) to minimize the
  estimated makespan under the snapshot, falling back to per-fragment
  greedy above the cap.  The enumeration is real work, measured and charged.

Given *fresh* statistics and an idle federation it produces excellent plans
-- the point is not that it is stupid, but that its information model does
not survive scale and volatility.
"""

from __future__ import annotations

import itertools
import time

from repro.core.errors import QueryError
from repro.federation.artifacts import artifact_scan_assignment, stage_specs
from repro.federation.cache import cache_scan_assignment
from repro.federation.catalog import FederationCatalog, Fragment
from repro.federation.physical import FragmentChoice, PhysicalPlan, ScanAssignment
from repro.federation.stats import (
    estimated_shipped_bytes,
    fragment_can_match,
    fragment_selectivity,
)
from repro.sql.planner import PlanNode, ScanNode, scans_in


class CentralizedOptimizer:
    """Compile-time cost-based placement using a global statistics snapshot."""

    name = "centralized"

    def __init__(
        self,
        catalog: FederationCatalog,
        stats_refresh_interval: float = 300.0,
        stats_round_trip_seconds: float = 0.02,
        per_site_stat_seconds: float = 0.001,
        per_combination_seconds: float = 2e-6,
        max_combinations: int = 4096,
        cache=None,
        health=None,
        artifacts=None,
    ) -> None:
        self.catalog = catalog
        self.stats_refresh_interval = stats_refresh_interval
        self.stats_round_trip_seconds = stats_round_trip_seconds
        self.per_site_stat_seconds = per_site_stat_seconds
        self.per_combination_seconds = per_combination_seconds
        self.max_combinations = max_combinations
        self._transfer_cache: dict[tuple[str, str], tuple[int, float]] = {}
        # Attached by the engine; a covering cached region is a local
        # materialized answer and beats any remote plan under the snapshot.
        self.cache = cache
        # Attached by the engine; a committed stage artifact is an even
        # tighter local answer (the stage's exact output, post-filter and
        # post-projection) and is taken before the cache.
        self.artifacts = artifacts
        # Attached by the engine; flaky sites' estimated costs are inflated
        # by their risk penalty and tripped circuits are avoided when an
        # alternative replica exists.
        self.health = health
        self._snapshot_loads: dict[str, float] = {}
        self._snapshot_congestion: dict[str, float] = {}
        self._snapshot_at = float("-inf")
        self.snapshots_taken = 0

    # -- statistics -----------------------------------------------------------

    def _refresh_stats(self) -> float:
        """Collect load statistics from every site; returns modeled seconds."""
        self._snapshot_loads = {
            name: site.backlog() for name, site in self.catalog.sites.items()
        }
        # Concurrency statistics age like load statistics: between refreshes
        # the optimizer plans against the congestion the federation had
        # minutes ago, while the agoric broker prices the congestion it has
        # *now* -- the adaptivity gap E4/E13 measure.
        self._snapshot_congestion = {
            name: site.congestion_factor()
            for name, site in self.catalog.sites.items()
        }
        self._snapshot_at = self.catalog.clock.now()
        self.snapshots_taken += 1
        return (
            self.stats_round_trip_seconds
            + len(self.catalog.sites) * self.per_site_stat_seconds
        )

    def _stats_cost_if_due(self) -> float:
        if self.catalog.clock.now() - self._snapshot_at >= self.stats_refresh_interval:
            return self._refresh_stats()
        return 0.0

    def snapshot_load(self, site_name: str) -> float:
        return self._snapshot_loads.get(site_name, 0.0)

    def snapshot_congestion(self, site_name: str) -> float:
        return self._snapshot_congestion.get(site_name, 1.0)

    # -- optimization ------------------------------------------------------------

    def optimize(
        self,
        plan: PlanNode,
        coordinator: str | None = None,
        max_staleness: float | None = None,
    ) -> PhysicalPlan:
        started = time.perf_counter()
        modeled = self._stats_cost_if_due()
        # Per-(scan, fragment) shipped-bytes estimates, shared by the
        # makespan model and the greedy fallback within this optimization.
        self._transfer_cache: dict[tuple[str, str], tuple[int, float]] = {}

        fragment_slots: list[tuple[ScanNode, Fragment, list[str], float]] = []
        assignments: dict[str, ScanAssignment] = {}
        specs = stage_specs(plan) if self.artifacts is not None else {}
        for scan in scans_in(plan):
            # A committed stage artifact is this stage's exact output,
            # already at the coordinator: cheapest feasible under any
            # snapshot, so it is taken before every other path.
            artifact_offer = artifact_scan_assignment(
                self.artifacts, self.catalog, specs.get(scan.binding),
                max_staleness,
            )
            if artifact_offer is not None:
                assignments[scan.binding] = artifact_offer[0]
                continue
            # A covering cached region costs a local pass with no network
            # and no remote queue -- under any snapshot that is the cheapest
            # feasible plan, so it is taken before placement is enumerated.
            cache_offer = cache_scan_assignment(self.cache, scan, max_staleness)
            if cache_offer is not None:
                assignments[scan.binding] = cache_offer[0]
                continue
            # A view queried by name must be served from a live host;
            # catalog.direct_view raises if that site is down.
            view = self.catalog.direct_view(scan.table)
            if view is None:
                view = self.catalog.view_for_table(scan.table, max_staleness)
                if view is not None and not self.catalog.site(view.site_name).up:
                    view = None
            if view is not None:
                view_assignment = ScanAssignment(
                    scan.binding, scan.table, "view", view=view
                )
                if view.data is not None:
                    view_assignment.est_bytes = estimated_shipped_bytes(
                        view, view.schema, len(view.data)
                    )
                assignments[scan.binding] = view_assignment
                continue
            entry = self.catalog.entry(scan.table)
            if not entry.fragments:
                raise QueryError(f"table {scan.table!r} has no fragments to scan")
            pruned = 0
            unreachable: list[Fragment] = []
            for fragment in entry.fragments:
                # Partition elimination: a fragment whose zone map proves the
                # pushed-down predicates unsatisfiable never enters placement
                # enumeration, so it also never enqueues site work.
                if not fragment_can_match(fragment.zone_map, scan.pushdown):
                    pruned += 1
                    continue
                live = [
                    name
                    for name in fragment.replica_sites()
                    if self.catalog.site(name).up
                ]
                if not live:
                    # No live replica right now: leave it to the executor,
                    # which retries at scan time and applies the query's
                    # degraded-answer policy.
                    unreachable.append(fragment)
                    continue
                if self.health is not None:
                    allowed = [
                        name for name in live if self.health.allow(name)
                    ]
                    live = allowed or live
                fragment_slots.append(
                    (scan, fragment, live, fragment_selectivity(fragment, scan.pushdown))
                )
            assignments[scan.binding] = ScanAssignment(
                scan.binding,
                scan.table,
                "fragments",
                pruned_fragments=pruned,
                total_fragments=len(entry.fragments),
                unreachable=unreachable,
            )

        combinations = 1
        for _, _, live, _ in fragment_slots:
            combinations *= len(live)
            if combinations > self.max_combinations:
                break

        if fragment_slots and combinations <= self.max_combinations:
            choice_lists, evaluated = self._exhaustive(fragment_slots)
            modeled += evaluated * self.per_combination_seconds * max(1, len(fragment_slots))
        else:
            choice_lists = self._greedy(fragment_slots)
            modeled += sum(len(live) for _, _, live, _ in fragment_slots) * 1e-5

        for (scan, fragment, _, selectivity), site_name in zip(
            fragment_slots, choice_lists
        ):
            assignment = assignments[scan.binding]
            assignment.est_bytes += self._slot_transfer(scan, fragment, selectivity)[0]
            assignment.choices.append(FragmentChoice(fragment, site_name))

        chosen_coordinator = coordinator or self._pick_coordinator(assignments)
        # DESIGN §7: modeled seconds only on the simulated clock; real
        # planning CPU time is reported out-of-band as planner_wall_seconds.
        elapsed = time.perf_counter() - started
        return PhysicalPlan(
            logical=plan,
            assignments=assignments,
            coordinator=chosen_coordinator,
            optimizer=self.name,
            optimization_seconds=modeled,
            planner_wall_seconds=elapsed,
            sites_contacted=len(self.catalog.sites),
            total_price=0.0,
        )

    def requote_scan(
        self, scan: ScanNode, max_staleness: float | None = None
    ) -> tuple[ScanAssignment, float, float] | None:
        """Re-price one scan's placement mid-query (DESIGN §5i).

        A centralized re-plan cannot trust the snapshot it planned with --
        the trigger that fired is exactly that snapshot going stale under
        the running plan -- so it pays for a fresh statistics collection
        round before re-placing.  This is the paper's scalability tax (E3)
        landing on the adaptivity path: the agoric re-quote prices one
        scan's replicas; the centralized one polls every site again.
        """
        modeled = self._refresh_stats()
        self._transfer_cache = {}
        entry = self.catalog.entry(scan.table)
        if not entry.fragments:
            return None
        pruned = 0
        unreachable: list[Fragment] = []
        fragment_slots: list[tuple[ScanNode, Fragment, list[str], float]] = []
        for fragment in entry.fragments:
            if not fragment_can_match(fragment.zone_map, scan.pushdown):
                pruned += 1
                continue
            live = [
                name
                for name in fragment.replica_sites()
                if self.catalog.site(name).up
            ]
            if not live:
                unreachable.append(fragment)
                continue
            if self.health is not None:
                allowed = [name for name in live if self.health.allow(name)]
                live = allowed or live
            fragment_slots.append(
                (scan, fragment, live, fragment_selectivity(fragment, scan.pushdown))
            )
        if not fragment_slots:
            return None
        choices = self._greedy(fragment_slots)
        modeled += sum(len(live) for _, _, live, _ in fragment_slots) * 1e-5
        assignment = ScanAssignment(
            scan.binding,
            scan.table,
            "fragments",
            pruned_fragments=pruned,
            total_fragments=len(entry.fragments),
            unreachable=unreachable,
        )
        for (slot_scan, fragment, _, selectivity), site_name in zip(
            fragment_slots, choices
        ):
            assignment.est_bytes += self._slot_transfer(
                slot_scan, fragment, selectivity
            )[0]
            assignment.choices.append(FragmentChoice(fragment, site_name))
        price = self._estimate_makespan(fragment_slots, tuple(choices))
        return assignment, price, modeled

    def _slot_transfer(
        self, scan: ScanNode, fragment: Fragment, selectivity: float
    ) -> tuple[int, float]:
        """(estimated shipped bytes, transfer seconds) for one fragment scan.

        Replica-independent: the same fragment prices the same transfer no
        matter which site serves it, so byte-aware costing never flips a
        replica tie-break on its own.
        """
        key = (fragment.table_name, fragment.fragment_id)
        cached = self._transfer_cache.get(key)
        if cached is None:
            schema = self.catalog.entry(fragment.table_name).schema
            est_rows = max(1, int(fragment.estimated_rows * selectivity))
            est_bytes = estimated_shipped_bytes(fragment, schema, est_rows)
            cached = self._transfer_cache[key] = (
                est_bytes,
                est_bytes * self.catalog.network.seconds_per_byte,
            )
        return cached

    def _estimate_makespan(
        self,
        fragment_slots: list[tuple[ScanNode, Fragment, list[str], float]],
        choice: tuple[str, ...],
    ) -> float:
        """Estimated completion under the snapshot: max per-site finish time."""
        site_work: dict[str, float] = {}
        for (scan, fragment, _, selectivity), site_name in zip(fragment_slots, choice):
            site = self.catalog.site(site_name)
            source_name = fragment.replicas[site_name]
            quote = site.quote_scan(source_name, row_fraction=selectivity)
            # Congestion from the (possibly stale) snapshot, never live.
            seconds = quote.seconds * self.snapshot_congestion(site_name)
            if self.health is not None:
                # Availability-aware cost: a flaky site's estimate carries a
                # risk surcharge (the expected cost of a mid-scan failover).
                seconds *= self.health.price_multiplier(site_name)
            # Shipping the fragment's encoded bytes occupies the same
            # pipeline: a placement that balances CPU but funnels bytes
            # through one site no longer looks free.
            seconds += self._slot_transfer(scan, fragment, selectivity)[1]
            site_work[site_name] = site_work.get(site_name, 0.0) + seconds
        return max(
            self.snapshot_load(name) + work for name, work in site_work.items()
        )

    def _exhaustive(
        self, fragment_slots: list[tuple[ScanNode, Fragment, list[str], float]]
    ) -> tuple[tuple[str, ...], int]:
        best: tuple[str, ...] | None = None
        best_cost = float("inf")
        evaluated = 0
        for choice in itertools.product(*(live for _, _, live, _ in fragment_slots)):
            evaluated += 1
            cost = self._estimate_makespan(fragment_slots, choice)
            if cost < best_cost or (cost == best_cost and (best is None or choice < best)):
                best = choice
                best_cost = cost
        assert best is not None
        return best, evaluated

    def _greedy(
        self, fragment_slots: list[tuple[ScanNode, Fragment, list[str], float]]
    ) -> list[str]:
        """Per-fragment least-snapshot-load choice (above the enumeration cap)."""
        planned_extra: dict[str, float] = {}
        chosen: list[str] = []
        for scan, fragment, live, selectivity in fragment_slots:
            transfer = self._slot_transfer(scan, fragment, selectivity)[1]

            def planned_cost(name: str) -> float:
                site = self.catalog.site(name)
                quote = site.quote_scan(
                    fragment.replicas[name], row_fraction=selectivity
                )
                seconds = quote.seconds * self.snapshot_congestion(name)
                if self.health is not None:
                    seconds *= self.health.price_multiplier(name)
                return (
                    self.snapshot_load(name)
                    + planned_extra.get(name, 0.0)
                    + seconds
                    + transfer
                )

            winner = min(live, key=lambda name: (planned_cost(name), name))
            site = self.catalog.site(winner)
            quote = site.quote_scan(
                fragment.replicas[winner], row_fraction=selectivity
            )
            planned_extra[winner] = (
                planned_extra.get(winner, 0.0) + quote.seconds + transfer
            )
            chosen.append(winner)
        return chosen

    def _pick_coordinator(self, assignments: dict[str, ScanAssignment]) -> str:
        rows_by_site: dict[str, int] = {}
        for assignment in assignments.values():
            for choice in assignment.choices:
                rows_by_site[choice.site_name] = (
                    rows_by_site.get(choice.site_name, 0)
                    + choice.fragment.estimated_rows
                )
            if assignment.kind == "view" and assignment.view is not None:
                # Count the view's actual rows so the coordinator prefers
                # the site already holding them.
                held = len(assignment.view.data or [])
                rows_by_site[assignment.view.site_name] = (
                    rows_by_site.get(assignment.view.site_name, 0) + held
                )
        if rows_by_site:
            return max(rows_by_site.items(), key=lambda kv: (kv[1], kv[0]))[0]
        up = self.catalog.up_sites()
        if not up:
            raise QueryError("no live sites to coordinate the query")
        return min(site.name for site in up)

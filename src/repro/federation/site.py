"""Sites: the machines of the federation.

A :class:`Site` hosts :class:`~repro.connect.source.ContentSource` objects
(fragment replicas, gateway wrappers, materialized view copies), executes
scans against them at a per-row CPU rate, maintains a decaying work backlog
(its *load*), and quotes prices for work -- the raw material of the agoric
protocol.  Sites can be marked down, which is how the availability
experiments injure the federation.

Concurrency enters through the **congestion model**: the workload manager
raises :attr:`Site.active_scans` for every site a query touches while that
query is in flight, and the site inflates service times by a linear curve
``1 + congestion_alpha * active_scans``.  The inflation applies both to
*executed* work (physical operator timings stretch under concurrency) and
to *quoted* work (a busy site's live bid rises, so the agoric market routes
new scans toward idle replicas -- load balancing is emergent, not policy).
With no workload manager the gauge stays at zero and the factor is exactly
1.0, so single-query behavior is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.connect.source import ContentSource, FetchResult, Predicate
from repro.core.errors import SourceUnavailableError
from repro.sim.clock import SimClock


@dataclass
class ScanQuote:
    """A site's estimate for scanning one source."""

    seconds: float  # pure work time, uncontended
    queue_delay: float  # backlog ahead of this work
    rows: int
    congestion: float = 1.0  # live service-time inflation factor


class Site:
    """One machine: hosted sources, CPU rate, load backlog, pricing."""

    def __init__(
        self,
        name: str,
        clock: SimClock,
        cpu_seconds_per_row: float = 0.00005,
        price_per_second: float = 1.0,
        load_price_factor: float = 1.0,
        congestion_alpha: float = 0.5,
    ) -> None:
        self.name = name
        self.clock = clock
        self.cpu_seconds_per_row = cpu_seconds_per_row
        self.price_per_second = price_per_second
        self.load_price_factor = load_price_factor
        self.congestion_alpha = congestion_alpha
        self.up = True
        self.busy_seconds = 0.0  # lifetime work executed (utilization metric)
        self.rows_processed = 0  # lifetime rows this site scanned or processed
        self.active_scans = 0  # queries currently in flight on this site
        self.peak_active_scans = 0  # high-water mark of the gauge
        # Transient slowdown: a multiplicative service-time inflation on
        # top of the concurrency curve (1.0 = healthy).  Set by the
        # failure injector to model load spikes, noisy neighbors, or
        # degraded hardware without taking the site down.
        self.slowdown_factor = 1.0
        self._sources: dict[str, ContentSource] = {}
        self._backlog = 0.0
        self._backlog_as_of = clock.now()

    # -- hosting -----------------------------------------------------------

    def host(self, source: ContentSource, name: str | None = None) -> str:
        """Register a source on this site; returns its local name."""
        local_name = name or source.name
        self._sources[local_name] = source
        return local_name

    def unhost(self, name: str) -> None:
        self._sources.pop(name, None)

    def hosts(self, name: str) -> bool:
        return name in self._sources

    def source(self, name: str) -> ContentSource:
        if name not in self._sources:
            raise SourceUnavailableError(
                self.name,
                f"site {self.name!r} does not host {name!r}",
                site=self.name,
            )
        return self._sources[name]

    @property
    def hosted_names(self) -> list[str]:
        return sorted(self._sources)

    # -- load model ------------------------------------------------------------

    def backlog(self) -> float:
        """Seconds of queued work remaining right now (drains in real time)."""
        elapsed = self.clock.now() - self._backlog_as_of
        return max(0.0, self._backlog - elapsed)

    def enqueue(self, seconds: float) -> float:
        """Add work to the backlog; returns the queue delay it waited behind."""
        delay = self.backlog()
        self._backlog = delay + seconds
        self._backlog_as_of = self.clock.now()
        self.busy_seconds += seconds
        return delay

    # -- congestion model ------------------------------------------------------

    def scan_started(self) -> None:
        """One more in-flight query is scanning here (workload manager)."""
        self.active_scans += 1
        self.peak_active_scans = max(self.peak_active_scans, self.active_scans)

    def scan_finished(self) -> None:
        """An in-flight query finished its work on this site."""
        if self.active_scans <= 0:
            raise ValueError(
                f"site {self.name!r}: scan_finished without matching scan_started"
            )
        self.active_scans -= 1

    def set_slowdown(self, factor: float) -> None:
        """Enter a transient slowdown: services run ``factor`` times slower.

        The factor multiplies :meth:`congestion_factor`, so it inflates
        executed work, live quotes, *and* the re-optimization congestion
        trigger in one move — exactly like real contention would.
        """
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0, got {factor}")
        self.slowdown_factor = factor

    def clear_slowdown(self) -> None:
        self.slowdown_factor = 1.0

    def congestion_factor(self, active: int | None = None) -> float:
        """Service-time inflation under ``active`` concurrent queries.

        A linear curve: every query concurrently scanning this site
        stretches service times by ``congestion_alpha``.  Zero in-flight
        queries means exactly 1.0, so the model is inert outside the
        workload manager.  A transient slowdown multiplies the whole
        curve (an injected load spike looks like contention everywhere
        work or prices are computed).
        """
        count = self.active_scans if active is None else active
        return (1.0 + self.congestion_alpha * max(0, count)) * self.slowdown_factor

    # -- scan estimation & execution -----------------------------------------------

    def quote_scan(self, source_name: str, row_fraction: float = 1.0) -> ScanQuote:
        """Estimate (not execute) a scan -- used when forming bids.

        Raises :class:`SourceUnavailableError` when the site is down, just
        like :meth:`execute_scan`: a dead site must not cheerfully price
        work it cannot do, or planning and execution disagree.
        """
        if not self.up:
            raise SourceUnavailableError(self.name, site=self.name)
        source = self.source(source_name)
        rows = max(1, int(source.estimated_rows() * row_fraction))
        seconds = source.estimated_cost() + rows * self.cpu_seconds_per_row
        return ScanQuote(
            seconds=seconds,
            queue_delay=self.backlog(),
            rows=rows,
            congestion=self.congestion_factor(),
        )

    def price_quote(self, quote: ScanQuote) -> float:
        """The agoric price this site asks for executing ``quote``.

        Load enters the price directly: a busy site asks more, steering
        work toward idle replicas (the adaptive half of the agoric claim).
        Both load signals count -- the decaying work backlog and the live
        congestion factor from queries currently in flight here.
        """
        return (
            quote.seconds * quote.congestion
            + quote.queue_delay * self.load_price_factor
        ) * self.price_per_second

    def execute_scan(
        self, source_name: str, predicates: Sequence[Predicate] = ()
    ) -> tuple[FetchResult, float, float]:
        """Run a scan; returns (result, work_seconds, queue_delay).

        Raises :class:`SourceUnavailableError` when the site is down.
        """
        if not self.up:
            raise SourceUnavailableError(self.name, site=self.name)
        source = self.source(source_name)
        result = source.fetch(predicates)
        work = (
            result.cost_seconds + len(result.table) * self.cpu_seconds_per_row
        ) * self.congestion_factor()
        self.rows_processed += len(result.table)
        delay = self.enqueue(work)
        return result, work, delay

    def process(self, rows: int) -> float:
        """Charge local processing of ``rows`` (joins, aggregation); returns work seconds."""
        work = rows * self.cpu_seconds_per_row * self.congestion_factor()
        self.rows_processed += rows
        self.enqueue(work)
        return work

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"Site({self.name!r}, {state}, backlog={self.backlog():.3f}s)"

"""Declarative per-tenant governance compiled into query plans.

The paper's content-integration model has many parties querying one
federated catalog; this module is the access-mediation layer that decides
*what each party may see* -- declared as data (a YAML/dict manifest) and
compiled into the logical plan, never bolted onto the gateway as a
post-filter.  A manifest names, per tenant:

* **row-level security** (``row_filter``): a SQL predicate over each
  governed table.  :class:`~repro.sql.rewrite.GovernanceInjection` splits
  it into conjuncts during rewrite; pushable ones join the scan's ordinary
  pushdown list (pruning zone maps, scoping semantic-cache regions, priced
  by selectivity), the rest run row-wise at the owning site before masking.
* **column masks** (``masks``): per-column mask styles applied at the
  scan's output, ahead of any shipping, caching or joining.
* **rate limits**: a deterministic token bucket on the simulation clock,
  enforced at :class:`~repro.federation.workload.WorkloadManager`
  admission.
* **cost budgets**: a credit ledger priced in the same currency as the
  agoric economy.  A tenant's remaining balance caps its bids (the engine
  passes it as the optimizer ``budget``), and exhaustion either rejects at
  admission or degrades (forced ``degraded_ok``) per the manifest.

Policy identity is a content signature (:meth:`GovernanceRegistry.
signature_for`): prepared statements and the gateway plan cache fold it
into their keys so a manifest edit transparently replans, and the stage
artifact hash folds the compiled RLS/mask annotations into the stage
identity so two tenants with different policies can never collide on one
artifact (tenants with *identical* policies still share -- sound, since
the artifact content is the same).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import QueryError, QueryRejectedError
from repro.core.records import Table
from repro.sql.ast import Expr, columns_in
from repro.sql.params import statement_has_subqueries
from repro.sql.parser import SqlParseError, parse_sql
from repro.sql.rewrite import GovernanceInjection, GovernanceRule

MASK_STYLES = ("null", "redact", "hash", "last4")

ON_EXHAUSTED = ("reject", "degrade")


class PolicyError(QueryError):
    """A governance manifest is malformed or references unknown schema."""


class RateLimitExceededError(QueryRejectedError):
    """Admission shed a query because the tenant's token bucket ran dry."""

    def __init__(self, tenant: str, per_second: float) -> None:
        self.per_second = per_second
        super().__init__(
            tenant,
            0,
            f"tenant {tenant!r} exceeded its rate limit "
            f"({per_second:g} queries/second)",
        )


class BudgetExhaustedError(QueryRejectedError):
    """Admission shed a query because the tenant's cost budget ran out."""

    def __init__(self, tenant: str, credits: float) -> None:
        self.credits = credits
        super().__init__(
            tenant,
            0,
            f"tenant {tenant!r} exhausted its query cost budget "
            f"({credits:g} credits)",
        )


# -- column masking -----------------------------------------------------------


def mask_value(style: str, value: Any) -> Any:
    """One masked value; ``None`` stays ``None`` for every style."""
    if value is None:
        return None
    if style == "null":
        return None
    if style == "redact":
        return "***"
    if style == "hash":
        return hashlib.sha256(repr(value).encode("utf-8")).hexdigest()[:12]
    if style == "last4":
        text = str(value)
        return "*" * max(0, len(text) - 4) + text[-4:]
    raise PolicyError(f"unknown mask style {style!r}")


def apply_masks(table: Table, masks: dict[str, str]) -> Table:
    """A copy of ``table`` with each masked column's values replaced.

    The input table is never mutated -- scans may hand the same captured
    table to the semantic cache, which must keep raw values (regions are
    keyed by predicates, and every consumer re-masks per its own policy).
    """
    styles: dict[int, str] = {
        table.schema.index_of(name): style
        for name, style in masks.items()
        if name in table.schema.field_names
    }
    if not styles:
        return table
    masked = Table(table.schema, validate=False)
    masked.rows = [
        tuple(
            mask_value(styles[i], value) if i in styles else value
            for i, value in enumerate(row)
        )
        for row in table.rows
    ]
    return masked


# -- compiled policies --------------------------------------------------------


@dataclass
class TablePolicy:
    """One tenant's view of one table: an RLS predicate plus masks."""

    table: str
    row_filter: str | None = None
    masks: dict[str, str] = field(default_factory=dict)
    _parsed: Expr | None = field(default=None, repr=False)

    def parsed_filter(self) -> Expr | None:
        """The parsed RLS predicate (bare column names), cached."""
        if self.row_filter is None:
            return None
        if self._parsed is None:
            self._parsed = _parse_row_filter(self.table, self.row_filter)
        return self._parsed

    def describe(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "row_filter": self.row_filter,
            "masks": dict(sorted(self.masks.items())),
        }


@dataclass
class TenantPolicy:
    """Everything the manifest declares for one tenant."""

    name: str
    tables: dict[str, TablePolicy] = field(default_factory=dict)
    rate_per_second: float | None = None
    rate_burst: float | None = None
    budget_credits: float | None = None
    on_exhausted: str = "reject"

    def signature(self) -> str:
        """Content hash of the declared policy (not of runtime spend).

        The tenant *name* is deliberately excluded: two tenants with
        byte-identical declared policies produce the same signature, so
        they share prepared plans and stage artifacts soundly.
        """
        payload = {
            "tables": {
                name: policy.describe()
                for name, policy in sorted(self.tables.items())
            },
            "rate": [self.rate_per_second, self.rate_burst],
            "budget": [self.budget_credits, self.on_exhausted],
        }
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _parse_row_filter(table: str, row_filter: str) -> Expr:
    """Parse an RLS predicate by planting it in a SELECT's WHERE clause."""
    if "?" in row_filter:
        raise PolicyError(
            f"row_filter for table {table!r} must not contain parameters"
        )
    try:
        statement = parse_sql(f"select * from {table} where {row_filter}")
    except (QueryError, SqlParseError) as exc:
        raise PolicyError(
            f"row_filter for table {table!r} does not parse: {exc}"
        ) from exc
    if statement.where is None or statement_has_subqueries(statement):
        raise PolicyError(
            f"row_filter for table {table!r} must be a plain predicate "
            "(no subqueries)"
        )
    return statement.where


# -- manifest validation ------------------------------------------------------


def validate_manifest(data: Any) -> list[str]:
    """Every schema problem in a manifest dict, as human-readable strings.

    Used both by :meth:`GovernanceRegistry.load_manifest` (which raises on
    any error) and by the CI manifest validator, which reports all of them.
    """
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"manifest must be a mapping, got {type(data).__name__}"]
    version = data.get("version")
    if version != 1:
        errors.append(f"manifest version must be 1, got {version!r}")
    tenants = data.get("tenants")
    if not isinstance(tenants, dict) or not tenants:
        errors.append("manifest must declare a non-empty 'tenants' mapping")
        return errors
    for key in data:
        if key not in ("version", "tenants"):
            errors.append(f"unknown top-level key {key!r}")
    for tenant_name, spec in tenants.items():
        prefix = f"tenant {tenant_name!r}"
        if not isinstance(tenant_name, str) or not tenant_name:
            errors.append(f"tenant names must be non-empty strings: {tenant_name!r}")
            continue
        if not isinstance(spec, dict):
            errors.append(f"{prefix}: spec must be a mapping")
            continue
        for key in spec:
            if key not in ("tables", "rate_limit", "budget"):
                errors.append(f"{prefix}: unknown key {key!r}")
        errors.extend(_validate_tables(prefix, spec.get("tables")))
        errors.extend(_validate_rate(prefix, spec.get("rate_limit")))
        errors.extend(_validate_budget(prefix, spec.get("budget")))
    return errors


def _validate_tables(prefix: str, tables: Any) -> list[str]:
    errors: list[str] = []
    if tables is None:
        return errors
    if not isinstance(tables, dict):
        return [f"{prefix}: 'tables' must be a mapping"]
    for table_name, table_spec in tables.items():
        where = f"{prefix}, table {table_name!r}"
        if not isinstance(table_spec, dict):
            errors.append(f"{where}: spec must be a mapping")
            continue
        for key in table_spec:
            if key not in ("row_filter", "masks"):
                errors.append(f"{where}: unknown key {key!r}")
        row_filter = table_spec.get("row_filter")
        if row_filter is not None:
            if not isinstance(row_filter, str) or not row_filter.strip():
                errors.append(f"{where}: row_filter must be a non-empty string")
            else:
                try:
                    _parse_row_filter(str(table_name), row_filter)
                except PolicyError as exc:
                    errors.append(f"{where}: {exc}")
        masks = table_spec.get("masks")
        if masks is not None:
            errors.extend(_validate_masks(where, masks))
        if row_filter is None and not masks:
            errors.append(f"{where}: declares neither row_filter nor masks")
    return errors


def _validate_masks(where: str, masks: Any) -> list[str]:
    errors: list[str] = []
    if isinstance(masks, list):
        items = [(column, "redact") for column in masks]
    elif isinstance(masks, dict):
        items = list(masks.items())
    else:
        return [f"{where}: masks must be a mapping or a list of columns"]
    for column, style in items:
        if not isinstance(column, str) or not column:
            errors.append(f"{where}: mask columns must be non-empty strings")
        if style not in MASK_STYLES:
            errors.append(
                f"{where}: mask style {style!r} for column {column!r} "
                f"must be one of {', '.join(MASK_STYLES)}"
            )
    return errors


def _validate_rate(prefix: str, rate: Any) -> list[str]:
    if rate is None:
        return []
    if not isinstance(rate, dict):
        return [f"{prefix}: 'rate_limit' must be a mapping"]
    errors = []
    for key in rate:
        if key not in ("per_second", "burst"):
            errors.append(f"{prefix}: unknown rate_limit key {key!r}")
    per_second = rate.get("per_second")
    if not isinstance(per_second, (int, float)) or per_second <= 0:
        errors.append(f"{prefix}: rate_limit.per_second must be positive")
    burst = rate.get("burst", 1)
    if not isinstance(burst, (int, float)) or burst < 1:
        errors.append(f"{prefix}: rate_limit.burst must be >= 1")
    return errors


def _validate_budget(prefix: str, budget: Any) -> list[str]:
    if budget is None:
        return []
    if not isinstance(budget, dict):
        return [f"{prefix}: 'budget' must be a mapping"]
    errors = []
    for key in budget:
        if key not in ("credits", "on_exhausted"):
            errors.append(f"{prefix}: unknown budget key {key!r}")
    credits = budget.get("credits")
    if not isinstance(credits, (int, float)) or credits <= 0:
        errors.append(f"{prefix}: budget.credits must be positive")
    on_exhausted = budget.get("on_exhausted", "reject")
    if on_exhausted not in ON_EXHAUSTED:
        errors.append(
            f"{prefix}: budget.on_exhausted must be one of "
            f"{', '.join(ON_EXHAUSTED)}, got {on_exhausted!r}"
        )
    return errors


def load_manifest_data(source: Any) -> dict[str, Any]:
    """A manifest dict from a dict, YAML/JSON text, or a file path.

    YAML support is optional (CI installs only the test toolchain): JSON is
    always accepted since every manifest is also valid JSON-able data, and
    PyYAML is used when importable.
    """
    if isinstance(source, dict):
        return source
    text = None
    if hasattr(source, "read_text"):
        text = source.read_text(encoding="utf-8")
    elif isinstance(source, str):
        stripped = source.lstrip()
        if stripped.startswith("{") or "\n" in source or ":" in source:
            text = source
        else:
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
    if text is None:
        raise PolicyError(
            f"cannot load a governance manifest from {type(source).__name__}"
        )
    try:
        import yaml  # type: ignore[import-untyped]
    except ImportError:
        yaml = None
    if yaml is not None:
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise PolicyError(f"manifest does not parse as YAML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PolicyError(
                "manifest does not parse as JSON and PyYAML is unavailable: "
                f"{exc}"
            ) from exc
    if not isinstance(data, dict):
        raise PolicyError("manifest must be a mapping")
    return data


# -- the registry -------------------------------------------------------------


@dataclass
class _TokenBucket:
    tokens: float
    last: float


class GovernanceRegistry:
    """Loaded tenant policies plus their runtime state (ledger, buckets).

    ``version`` increments on every manifest (re)load; per-tenant
    :meth:`signature_for` is a content hash of the declared policy.  Both
    exist so plan caches revalidate on *policy content*, not on reload
    count -- but ``version`` gives EXPLAIN and metrics a human-readable
    epoch.
    """

    def __init__(self, manifest: Any = None, metrics: Any = None) -> None:
        self.version = 0
        self.metrics = metrics
        self._tenants: dict[str, TenantPolicy] = {}
        self._spent: dict[str, float] = {}
        self._buckets: dict[str, _TokenBucket] = {}
        if manifest is not None:
            self.load_manifest(manifest)

    # -- loading ------------------------------------------------------------

    def load_manifest(self, source: Any) -> list[str]:
        """(Re)load tenant policies; returns the tenant names loaded.

        A reload *replaces* all declared policies and bumps ``version`` so
        every cached plan revalidates, but keeps the runtime ledger: spent
        budget does not reset just because an operator edited a mask.
        """
        data = load_manifest_data(source)
        errors = validate_manifest(data)
        if errors:
            raise PolicyError(
                "invalid governance manifest: " + "; ".join(errors)
            )
        tenants: dict[str, TenantPolicy] = {}
        for tenant_name, spec in data["tenants"].items():
            tables: dict[str, TablePolicy] = {}
            for table_name, table_spec in (spec.get("tables") or {}).items():
                masks_spec = table_spec.get("masks") or {}
                if isinstance(masks_spec, list):
                    masks = {column: "redact" for column in masks_spec}
                else:
                    masks = dict(masks_spec)
                policy = TablePolicy(
                    table=str(table_name),
                    row_filter=table_spec.get("row_filter"),
                    masks=masks,
                )
                policy.parsed_filter()  # fail at load time, not query time
                tables[str(table_name)] = policy
            rate = spec.get("rate_limit") or {}
            budget = spec.get("budget") or {}
            tenants[tenant_name] = TenantPolicy(
                name=tenant_name,
                tables=tables,
                rate_per_second=rate.get("per_second"),
                rate_burst=float(rate.get("burst", 1)) if rate else None,
                budget_credits=budget.get("credits"),
                on_exhausted=budget.get("on_exhausted", "reject"),
            )
        self._tenants = tenants
        self._buckets.clear()
        self.version += 1
        return sorted(tenants)

    def validate_against_catalog(self, catalog: Any) -> list[str]:
        """Schema problems a manifest-only check cannot see."""
        errors: list[str] = []
        for tenant in self._tenants.values():
            for table_name, policy in tenant.tables.items():
                try:
                    entry = catalog.entry(table_name)
                except Exception:
                    errors.append(
                        f"tenant {tenant.name!r}: unknown table {table_name!r}"
                    )
                    continue
                fields = set(entry.schema.field_names)
                for column in policy.masks:
                    if column not in fields:
                        errors.append(
                            f"tenant {tenant.name!r}, table {table_name!r}: "
                            f"masked column {column!r} does not exist"
                        )
                parsed = policy.parsed_filter()
                if parsed is not None:
                    for column in columns_in(parsed):
                        if column.name not in fields:
                            errors.append(
                                f"tenant {tenant.name!r}, table "
                                f"{table_name!r}: row_filter column "
                                f"{column.name!r} does not exist"
                            )
        return errors

    # -- lookups ------------------------------------------------------------

    def policy_for(self, tenant: str | None) -> TenantPolicy | None:
        if tenant is None:
            return None
        return self._tenants.get(tenant)

    def signature_for(self, tenant: str | None) -> str | None:
        """Policy content hash for cache keys; None for ungoverned tenants.

        Ungoverned tenants deliberately share plans (and the signature stays
        out of their keys), so adding governance for *some* tenants cannot
        cost the rest their cache hit rates.
        """
        policy = self.policy_for(tenant)
        return None if policy is None else policy.signature()

    def injection_pass(
        self, tenant: str | None, binding_fields: dict[str, set[str]]
    ) -> GovernanceInjection | None:
        """The rewrite pass enforcing ``tenant``'s policy, or None."""
        policy = self.policy_for(tenant)
        if policy is None or not policy.tables:
            return None
        rules = {
            table_name: GovernanceRule(
                tenant=policy.name,
                table=table_name,
                row_filter=table_policy.parsed_filter(),
                masks=tuple(sorted(table_policy.masks.items())),
            )
            for table_name, table_policy in policy.tables.items()
        }
        return GovernanceInjection(rules=rules, binding_fields=binding_fields)

    # -- admission: rate limits and budget gates ----------------------------

    def admit(self, tenant: str, now: float) -> str:
        """Admission-control check at submit time; deterministic.

        Returns ``"ok"`` or ``"degrade"`` (budget exhausted under a
        ``degrade`` policy: the caller should force ``degraded_ok``).
        Raises :class:`RateLimitExceededError` /
        :class:`BudgetExhaustedError` -- both subclasses of the workload
        manager's shedding error, so existing back-off handling applies.
        """
        policy = self.policy_for(tenant)
        if policy is None:
            return "ok"
        if policy.rate_per_second is not None:
            bucket = self._buckets.get(tenant)
            burst = policy.rate_burst or 1.0
            if bucket is None:
                bucket = _TokenBucket(tokens=burst, last=now)
                self._buckets[tenant] = bucket
            elapsed = max(0.0, now - bucket.last)
            bucket.tokens = min(burst, bucket.tokens + elapsed * policy.rate_per_second)
            bucket.last = now
            if bucket.tokens < 1.0:
                self._count("rate_limited")
                raise RateLimitExceededError(tenant, policy.rate_per_second)
            bucket.tokens -= 1.0
        if policy.budget_credits is not None and self.remaining_budget(tenant) <= 0:
            if policy.on_exhausted == "degrade":
                self._count("budget_degraded")
                return "degrade"
            self._count("budget_rejections")
            raise BudgetExhaustedError(tenant, policy.budget_credits)
        return "ok"

    # -- the budget ledger ---------------------------------------------------

    def remaining_budget(self, tenant: str) -> float | None:
        """Credits left, or None when the tenant has no budget."""
        policy = self.policy_for(tenant)
        if policy is None or policy.budget_credits is None:
            return None
        return policy.budget_credits - self._spent.get(tenant, 0.0)

    def effective_budget(
        self, tenant: str | None, budget: float | None
    ) -> float | None:
        """The bid cap the optimizer should honor for this execution.

        The tenant's remaining balance caps any caller-supplied budget.  An
        exhausted ``degrade`` tenant is *not* capped (a zero cap would fail
        every plan); admission already forced ``degraded_ok`` and counted
        the degradation.  An exhausted ``reject`` tenant gets a zero cap so
        even direct engine calls (bypassing workload admission) fail closed
        under the agoric optimizer.
        """
        remaining = self.remaining_budget(tenant) if tenant is not None else None
        if remaining is None:
            return budget
        policy = self._tenants[tenant]
        if remaining <= 0:
            return budget if policy.on_exhausted == "degrade" else 0.0
        if budget is None:
            return remaining
        return min(budget, remaining)

    def charge(self, tenant: str | None, price: float) -> None:
        """Debit one execution's plan price against the tenant's budget."""
        if tenant is None or price <= 0:
            return
        policy = self.policy_for(tenant)
        if policy is None or policy.budget_credits is None:
            return
        self._spent[tenant] = self._spent.get(tenant, 0.0) + price

    def reset_budget(self, tenant: str | None = None) -> None:
        """Refill budgets (one tenant, or all): the operator's top-up knob."""
        if tenant is None:
            self._spent.clear()
        else:
            self._spent.pop(tenant, None)

    # -- metrics -------------------------------------------------------------

    def _count(self, what: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"governance.{what}").inc(amount)

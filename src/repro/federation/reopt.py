"""Adaptive mid-query re-optimization (DESIGN.md §5i).

A plan chosen at dispatch is otherwise frozen while the federation changes
under it.  This module lets an in-flight query re-solicit bids (agoric) or
re-price placements (centralized/policy) for its *unstarted* stages when a
triggering signal fires:

* a :class:`SiteHealthTracker` circuit is open on a site holding pending
  work, or the site is down outright;
* a site's live ``congestion_factor()`` crosses a configurable high
  watermark (with a low watermark providing hysteresis so a site that
  fired must cool off before it can fire again);
* the workload-manager deadline projects an overrun from the remaining
  stage's live cost estimate.

The unit of migration is the Ship-bounded stage (the same boundary the
artifact store hashes): :class:`ReoptController.consider` runs inside
``Ship.open`` *after* the artifact probe and *before* any site does scan
work, so a migrated stage has not started anywhere.  A re-solicitation
first probes the :class:`ArtifactStore` for a committed or in-flight twin
(if one exists the stage needs no sites at all), then asks the session
optimizer to re-quote the residual placement at live prices.  The
migration only happens when the fresh placement covers every fragment the
original covered and beats the original's *live re-priced* cost by at
least ``min_improvement`` — otherwise the original assignment stands, the
modeled re-solicitation seconds are booked as waste, and the answer stays
bit-identical to static execution by construction (replicas hold the same
fragment rows, so *which* replica scans them never changes the result).

Attempts are bounded by a per-query budget, each stage is considered at
most once per execution, and the modeled seconds every re-solicitation
costs (bid round trips for agoric, a forced statistics refresh for the
centralized baseline) are charged into the query's response time — the
economy pays for its own adaptivity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import QueryError, SourceUnavailableError
from repro.federation.health import CircuitState
from repro.federation.stats import fragment_selectivity

__all__ = ["ReoptEvent", "ReoptPolicy", "ReoptController"]


@dataclass(frozen=True)
class ReoptEvent:
    """One re-solicitation attempt for one stage, migrated or not."""

    binding: str
    reason: str  # "site-down:s1" | "circuit-open:s1" | "congestion:s1" | "deadline"
    migrated: bool
    from_sites: tuple[str, ...]
    to_sites: tuple[str, ...]
    modeled_seconds: float  # what the re-quote itself cost
    old_price: float  # live re-priced cost of the original placement
    new_price: float  # live cost of the fresh placement (inf if infeasible)

    def describe(self) -> str:
        if self.migrated:
            return (
                f"reopt {self.reason}: migrated "
                f"{','.join(self.from_sites)}→{','.join(self.to_sites)}"
            )
        return f"reopt {self.reason}: kept original assignment"


@dataclass
class ReoptPolicy:
    """Configuration for adaptive mid-query re-optimization.

    Attached to a :class:`FederatedEngine` via ``reopt=ReoptPolicy(...)``;
    ``None`` (the default) keeps plans frozen at dispatch.
    """

    # Per-query re-solicitation budget: how many stages one execution may
    # re-quote.  Exhausted budget means remaining triggers are ignored.
    max_attempts: int = 3
    # Congestion trigger watermarks on Site.congestion_factor().  A site
    # fires when its factor reaches ``congestion_high`` and cannot fire
    # again (within one execution) until it drops below ``congestion_low``.
    congestion_high: float = 3.0
    congestion_low: float = 1.5
    # Thrash damping: a fresh placement must beat the original's live
    # re-priced cost by this fraction, or the original stands.
    min_improvement: float = 0.1
    # How many times the workload manager may re-plan one in-flight query
    # after cluster disturbances (site kill / load spike wakeups).
    max_replans: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.congestion_low < 1.0:
            raise ValueError(
                "congestion_low must be >= 1.0 (an idle site's factor), "
                f"got {self.congestion_low}"
            )
        if self.congestion_high <= self.congestion_low:
            raise ValueError(
                "hysteresis needs congestion_high > congestion_low, got "
                f"high={self.congestion_high} low={self.congestion_low}"
            )
        if not 0.0 <= self.min_improvement < 1.0:
            raise ValueError(
                f"min_improvement must be in [0, 1), got {self.min_improvement}"
            )
        if self.max_replans < 0:
            raise ValueError(
                f"max_replans must be >= 0, got {self.max_replans}"
            )


class ReoptController:
    """Per-execution re-optimization state: triggers, budget, hysteresis.

    Created by the engine for each execution when a :class:`ReoptPolicy`
    is configured, threaded through :class:`ExecContext`, and consulted by
    every stage-bounding ``Ship`` just before its site pipeline opens.
    """

    def __init__(
        self,
        policy: ReoptPolicy,
        optimizer,
        catalog,
        health=None,
        artifacts=None,
        max_staleness: float | None = None,
        deadline_at: float | None = None,
    ) -> None:
        self.policy = policy
        self.optimizer = optimizer
        self.catalog = catalog
        self.health = health
        self.artifacts = artifacts
        self.max_staleness = max_staleness
        self.deadline_at = deadline_at
        self.attempts = 0
        self.migrations = 0
        self.wasted_seconds = 0.0  # re-quotes that did not migrate
        self.modeled_seconds = 0.0  # all re-quote time, charged to response
        self.events: list[ReoptEvent] = []
        self._hot_sites: set[str] = set()  # congestion hysteresis state
        self._considered: set[str] = set()  # one attempt per stage

    # -- the Ship.open hook ------------------------------------------------

    def consider(self, ctx, scan, agg=None) -> bool:
        """Re-evaluate one unstarted stage; swap its assignment on migrate.

        Returns True when the stage was migrated.  Every path that does
        not migrate leaves ``ctx.plan.assignments`` untouched, so static
        execution semantics (and bit-identical answers) are the fallback.
        """
        assignment = ctx.plan.assignments.get(scan.binding)
        if assignment is None or assignment.kind != "fragments":
            return False  # cache/view/artifact paths have no sites to migrate
        if not assignment.choices or scan.binding in self._considered:
            return False
        reason, bad_site = self._trigger(ctx, scan, assignment)
        if reason is None:
            return False
        if bad_site is not None and not self._can_move_off(
            assignment, bad_site
        ):
            # Every fragment on the degraded site is pinned there (no other
            # live, allowed replica): a re-solicitation provably cannot
            # migrate anything, so don't pay the market round trip for it.
            return False
        if self.attempts >= self.policy.max_attempts:
            return False  # budget exhausted: the trigger is ignored
        self._considered.add(scan.binding)
        self.attempts += 1
        from_sites = tuple(sorted({c.site_name for c in assignment.choices}))
        # Migration probe: a committed or in-flight twin makes the whole
        # solicitation moot — the stage needs no sites.  (On the normal
        # path Ship's artifact probe already ran and missed, so this only
        # fires for executions that disabled artifact *reuse*.)
        if self._artifact_twin(ctx, scan, agg):
            self._record(
                scan.binding, f"{reason}+artifact-twin", False,
                from_sites, from_sites, 0.0, 0.0, 0.0,
            )
            return False
        quote = self._requote(scan)
        if quote is None:
            self._record(
                scan.binding, reason, False, from_sites, from_sites,
                0.0, float("inf"), float("inf"),
            )
            return False
        fresh, modeled = quote
        self.modeled_seconds += modeled
        old_price = self._placement_cost(scan, assignment)
        new_price = self._placement_cost(scan, fresh)
        to_sites = tuple(sorted({c.site_name for c in fresh.choices}))
        if not self._migratable(assignment, fresh, old_price, new_price):
            self.wasted_seconds += modeled
            self._record(
                scan.binding, reason, False, from_sites, to_sites,
                modeled, old_price, new_price,
            )
            return False
        ctx.plan.assignments[scan.binding] = fresh
        self.migrations += 1
        self._record(
            scan.binding, reason, True, from_sites, to_sites,
            modeled, old_price, new_price,
        )
        return True

    def describe(self, binding: str) -> str | None:
        """EXPLAIN ANALYZE detail for a stage's last re-opt event."""
        for event in reversed(self.events):
            if event.binding == binding:
                return event.describe()
        return None

    # -- triggers ----------------------------------------------------------

    def _trigger(self, ctx, scan, assignment) -> tuple[str | None, str | None]:
        """Returns ``(reason, degraded_site)``; the site is None for the
        deadline trigger (no single site is to blame for an overrun)."""
        for choice in assignment.choices:
            name = choice.site_name
            site = self.catalog.site(name)
            if not site.up:
                return f"site-down:{name}", name
            if (
                self.health is not None
                and self.health.state(name) is CircuitState.OPEN
            ):
                return f"circuit-open:{name}", name
            factor = site.congestion_factor()
            if name in self._hot_sites:
                if factor < self.policy.congestion_low:
                    self._hot_sites.discard(name)  # cooled off: re-arm
                continue  # hysteresis: holds until below the low watermark
            if factor >= self.policy.congestion_high:
                self._hot_sites.add(name)
                return f"congestion:{name}", name
        if self.deadline_at is not None:
            remaining = self._estimate_stage_seconds(scan, assignment)
            projected = self.catalog.clock.now() + ctx.scan_elapsed + remaining
            if projected > self.deadline_at:
                return "deadline", None
        return None, None

    def _can_move_off(self, assignment, bad_site: str) -> bool:
        """Does any fragment placed on ``bad_site`` have somewhere to go?"""
        for choice in assignment.choices:
            if choice.site_name != bad_site:
                continue
            for name in choice.fragment.replica_sites():
                if name == bad_site or not self.catalog.site(name).up:
                    continue
                if self.health is None or self.health.allow(name):
                    return True
        return False

    def _estimate_stage_seconds(self, scan, assignment) -> float:
        """Live makespan estimate for the stage under its assignment."""
        per_site: dict[str, float] = {}
        for choice in assignment.choices:
            site = self.catalog.site(choice.site_name)
            if not site.up:
                return float("inf")
            selectivity = fragment_selectivity(choice.fragment, scan.pushdown)
            try:
                quote = site.quote_scan(
                    choice.fragment.replicas[choice.site_name],
                    row_fraction=selectivity,
                )
            except (KeyError, SourceUnavailableError):
                return float("inf")
            per_site[choice.site_name] = (
                per_site.get(choice.site_name, quote.queue_delay)
                + quote.seconds * quote.congestion
            )
        return max(per_site.values(), default=0.0)

    # -- re-solicitation ---------------------------------------------------

    def _artifact_twin(self, ctx, scan, agg) -> bool:
        if self.artifacts is None or ctx.reuse_artifacts:
            return False  # reuse on: Ship's own artifact probe governs
        key = self.artifacts.stage_key(self.catalog, scan, agg)
        return key is not None and self.artifacts.has_twin(
            key, self.max_staleness
        )

    def _requote(self, scan):
        requote = getattr(self.optimizer, "requote_scan", None)
        if requote is None:
            return None
        try:
            result = requote(scan, self.max_staleness)
        except QueryError:
            return None
        if result is None:
            return None
        fresh, _price, modeled = result
        if not fresh.choices:
            return None
        return fresh, modeled

    def _placement_cost(self, scan, assignment) -> float:
        """Live makespan cost of a fragment placement, on one shared basis.

        Both the incumbent and the candidate are costed here — the longest
        per-site chain of queue delay plus congestion-inflated work, scaled
        by health risk — so the improvement test compares like with like
        regardless of which optimizer produced the placement.  Makespan
        (not a price *sum*) is the right objective: the stage holds its
        execution slot until its slowest site finishes, so a placement
        that looks cheaper in total spend but stretches the critical path
        would occupy the federation longer and delay every queued query
        behind it.  Shipping cost is replica-independent (same fragment
        bytes either way) and cancels, so it is left out of both sides.
        """
        per_site: dict[str, float] = {}
        for choice in assignment.choices:
            site = self.catalog.site(choice.site_name)
            if not site.up:
                return float("inf")
            selectivity = fragment_selectivity(choice.fragment, scan.pushdown)
            try:
                quote = site.quote_scan(
                    choice.fragment.replicas[choice.site_name],
                    row_fraction=selectivity,
                )
            except (KeyError, SourceUnavailableError):
                return float("inf")
            work = quote.seconds * quote.congestion
            if self.health is not None:
                work *= self.health.price_multiplier(choice.site_name)
            per_site[choice.site_name] = (
                per_site.get(choice.site_name, quote.queue_delay) + work
            )
        return max(per_site.values(), default=0.0)

    def _migratable(self, old, fresh, old_price: float, new_price: float) -> bool:
        old_map = {c.fragment.fragment_id: c.site_name for c in old.choices}
        new_map = {c.fragment.fragment_id: c.site_name for c in fresh.choices}
        if not set(new_map) >= set(old_map):
            return False  # the fresh placement lost coverage: never migrate
        if new_map == old_map:
            return False  # same placement: nothing to do
        if new_price >= old_price:
            return False
        if old_price == float("inf"):
            return True  # incumbent infeasible (dead site): any cover wins
        return new_price < old_price * (1.0 - self.policy.min_improvement)

    def _record(
        self,
        binding: str,
        reason: str,
        migrated: bool,
        from_sites: tuple[str, ...],
        to_sites: tuple[str, ...],
        modeled: float,
        old_price: float,
        new_price: float,
    ) -> None:
        self.events.append(
            ReoptEvent(
                binding=binding,
                reason=reason,
                migrated=migrated,
                from_sites=from_sites,
                to_sites=to_sites,
                modeled_seconds=modeled,
                old_price=old_price,
                new_price=new_price,
            )
        )

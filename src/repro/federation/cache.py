"""Semantic caching of predicate regions, priced as an access path.

§3.2 C5 suggests "something closer to semantic caching [3] or prefetching"
as the flexible fetch-in-advance mechanism.  Entries are keyed by the
*predicate region* they answered: a request hits when some cached entry's
region is **weaker or equal** (a superset of rows) -- the residual
predicates are then applied to the cached rows locally.

Coverage is *implication-aware*: beyond the verbatim-subset test, per-column
interval subsumption lets ``price < 5`` cover ``price < 3`` and
``supplier = 'acme'`` imply ``supplier != 'bolt'``.  Every implication rule
is sound -- a doubtful case is a miss, never a wrong hit -- and residual
predicates are always re-applied locally, so a covered answer is
row-identical to a bypassed one.

The cache is not a post-hoc swap: :meth:`SemanticCache.bid` quotes a price
for serving a scan, and the optimizers (agoric, centralized, policy) weigh
that bid against fragment scans and materialized views in the same market
(:func:`cache_scan_assignment`).

Admission and eviction are cost-aware rather than plain LRU: an entry's
benefit is ``rows x saved fetch seconds``, entries larger than the row
budget are refused outright, and when the budget overflows the
lowest-benefit entries go first (the entry being stored competes too, so a
worthless result is simply not admitted).  Entries also expire by age.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.connect.source import Predicate, apply_predicates
from repro.core.errors import QueryError
from repro.core.records import Table
from repro.sim.clock import SimClock

_RANGE_OPS = ("<", "<=", ">", ">=")


@dataclass
class CacheEntry:
    table_name: str
    region: frozenset[Predicate]
    table: Table
    as_of: float  # simulated time the rows were *fetched* (not stored)
    fetch_seconds: float = 0.0  # what re-fetching this region would cost
    hits: int = 0
    last_used: float = 0.0

    def benefit(self) -> float:
        """What evicting this entry throws away: rows x saved fetch seconds."""
        return len(self.table) * self.fetch_seconds


@dataclass
class CacheBid:
    """The cache's offer to serve one scan, priced like any access path."""

    table: Table  # residual predicates already applied
    age: float
    region: frozenset[Predicate]
    kind: str  # "verbatim" | "implication"
    est_seconds: float
    price: float


def predicate_implies(requested: Predicate, cached: Predicate) -> bool:
    """True when one requested predicate alone implies the cached one.

    Sound but conservative: every rule below is a real entailment for the
    value types the sources produce (numbers, strings, booleans); anything
    doubtful -- mixed types, unordered values -- falls through to False,
    which only costs a cache miss.  The zone-map pruner
    (:mod:`repro.federation.stats`) reuses this machinery to test whether a
    scan predicate entails falling outside a fragment's value range.
    """
    if requested.column != cached.column:
        return False
    if requested == cached:
        return True
    column = cached.column
    try:
        if requested.op == "=":
            if requested.value is None:
                return False  # NULL rows need the =-with-None edge cases
            if cached.op == "contains" and not isinstance(requested.value, str):
                return False  # str(1) vs str(1.0): repr-level, not value-level
            # Every row satisfying the request has this exact value, so the
            # cached predicate holds for the row iff it holds for the value.
            return cached.matches({column: requested.value})
        if cached.op in _RANGE_OPS and requested.op in _RANGE_OPS:
            return _bound_implies(requested, cached)
        if cached.op == "!=":
            if requested.op == "!=":
                return bool(requested.value == cached.value)
            if requested.op in _RANGE_OPS:
                # A bound that excludes the forbidden value implies !=.
                return not requested.matches({column: cached.value})
            return False
        if cached.op == "contains" and requested.op == "contains":
            # Containing the longer needle implies containing any substring.
            return str(cached.value).lower() in str(requested.value).lower()
    except (TypeError, QueryError):
        # Incomparable values (Predicate.matches wraps the TypeError in a
        # QueryError): conservatively a miss.
        return False
    return False


def _bound_implies(requested: Predicate, cached: Predicate) -> bool:
    """Interval subsumption between two range predicates on one column."""
    r, c = requested, cached
    if c.op in ("<", "<="):
        if r.op not in ("<", "<="):
            return False
        if r.value < c.value:
            return True
        # Equal bounds: strict implies non-strict, and like implies like.
        return bool(r.value == c.value) and (c.op == "<=" or r.op == "<")
    if c.op in (">", ">="):
        if r.op not in (">", ">="):
            return False
        if r.value > c.value:
            return True
        return bool(r.value == c.value) and (c.op == ">=" or r.op == ">")
    return False


def coverage_kind(
    cached: frozenset[Predicate], requested: frozenset[Predicate]
) -> str | None:
    """How (if at all) the cached region is guaranteed to contain the request.

    Returns ``"verbatim"`` when every cached predicate appears verbatim in
    the request (the original subset test), ``"implication"`` when each
    remaining cached predicate is entailed by some requested predicate on
    the same column, and ``None`` otherwise.  Both answers are sound: the
    cached constraint set is weaker-or-equal, so the cached rows are a
    superset and residual predicates recover the exact answer.
    """
    if cached <= requested:
        return "verbatim"
    for constraint in cached:
        if constraint in requested:
            continue
        if not any(predicate_implies(p, constraint) for p in requested):
            return None
    return "implication"


def region_covers(
    cached: frozenset[Predicate],
    requested: frozenset[Predicate],
    implication: bool = True,
) -> bool:
    """True when the cached region is guaranteed to contain the request."""
    kind = coverage_kind(cached, requested)
    if kind is None:
        return False
    return implication or kind == "verbatim"


class SemanticCache:
    """A TTL'd, benefit-evicted cache of answered predicate regions."""

    def __init__(
        self,
        clock: SimClock,
        max_rows: int = 100_000,
        max_staleness: float | None = None,
        coverage: str = "implication",
        serve_seconds_per_row: float = 0.00005,
        price_per_second: float = 1.0,
        metrics=None,
    ) -> None:
        if coverage not in ("implication", "verbatim"):
            raise ValueError(f"unknown coverage policy {coverage!r}")
        self.clock = clock
        self.max_rows = max_rows
        self.max_staleness = max_staleness
        self.coverage = coverage
        self.serve_seconds_per_row = serve_seconds_per_row
        self.price_per_second = price_per_second
        self.metrics = metrics  # optional MetricsRegistry, attached by the engine
        self._entries: "OrderedDict[tuple[str, frozenset[Predicate]], CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.verbatim_hits = 0
        self.implication_hits = 0
        self.evictions = 0
        self.rejected = 0
        self.invalidations = 0

    # -- metrics hooks -----------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    # -- lookup ------------------------------------------------------------

    def _expired(self, entry: CacheEntry, max_staleness: float | None) -> bool:
        limit = max_staleness if max_staleness is not None else self.max_staleness
        if limit is None:
            return False
        return (self.clock.now() - entry.as_of) > limit

    def _find(
        self,
        table_name: str,
        predicates: "list[Predicate] | tuple[Predicate, ...]",
        max_staleness: float | None,
    ) -> tuple[CacheEntry, str] | None:
        """Find a covering entry, book hit/miss accounting, return it."""
        requested = frozenset(predicates)
        found: tuple[tuple, CacheEntry, str] | None = None
        for key, entry in list(self._entries.items()):
            if entry.table_name != table_name:
                continue
            if self._expired(entry, max_staleness):
                # Too stale for this request's *effective* bound (the
                # per-call bound when given, else the store default).  A
                # caller with a laxer bound than the store TTL must still
                # be served, so the per-call bound decides serveability;
                # the store's own TTL only decides whether the entry is
                # dead for everyone and can be reclaimed now.
                if self._expired(entry, self.max_staleness):
                    del self._entries[key]
                    self.evictions += 1
                    self._count("cache.evictions")
                continue
            kind = coverage_kind(entry.region, requested)
            if kind is None or (self.coverage == "verbatim" and kind != "verbatim"):
                continue
            found = (key, entry, kind)
            break
        if found is None:
            self.misses += 1
            self._count("cache.misses")
            return None
        key, entry, kind = found
        now = self.clock.now()
        self._entries.move_to_end(key)
        entry.hits += 1
        entry.last_used = now
        self.hits += 1
        self._count("cache.hits")
        if kind == "verbatim":
            self.verbatim_hits += 1
            self._count("cache.verbatim_hits")
        else:
            self.implication_hits += 1
            self._count("cache.implication_hits")
        self._observe("cache.entry_age_seconds", now - entry.as_of)
        return entry, kind

    def lookup(
        self,
        table_name: str,
        predicates: "list[Predicate] | tuple[Predicate, ...]" = (),
        max_staleness: float | None = None,
    ) -> Table | None:
        """Return rows satisfying ``predicates`` if some region covers them."""
        found = self.lookup_entry(table_name, predicates, max_staleness)
        return found[0] if found is not None else None

    def lookup_entry(
        self,
        table_name: str,
        predicates: "list[Predicate] | tuple[Predicate, ...]" = (),
        max_staleness: float | None = None,
    ) -> tuple[Table, float] | None:
        """Like :meth:`lookup` but also returns the entry's age in seconds."""
        found = self._find(table_name, predicates, max_staleness)
        if found is None:
            return None
        entry, _ = found
        residual = [p for p in predicates if p not in entry.region]
        return (
            apply_predicates(entry.table, residual),
            self.clock.now() - entry.as_of,
        )

    def bid(
        self,
        table_name: str,
        predicates: "list[Predicate] | tuple[Predicate, ...]" = (),
        max_staleness: float | None = None,
    ) -> CacheBid | None:
        """Quote serving this scan from cache, priced like any access path.

        The modeled cost is a local pass over the cached entry's rows (the
        residual filter); there is no network and no remote backlog, which
        is exactly why a warm cache usually wins the auction.
        """
        found = self._find(table_name, predicates, max_staleness)
        if found is None:
            return None
        entry, kind = found
        residual = [p for p in predicates if p not in entry.region]
        seconds = len(entry.table) * self.serve_seconds_per_row
        return CacheBid(
            table=apply_predicates(entry.table, residual),
            age=self.clock.now() - entry.as_of,
            region=entry.region,
            kind=kind,
            est_seconds=seconds,
            price=seconds * self.price_per_second,
        )

    # -- admission & eviction ----------------------------------------------

    def store(
        self,
        table_name: str,
        predicates: "list[Predicate] | tuple[Predicate, ...]",
        table: Table,
        as_of: float | None = None,
        fetch_seconds: float = 0.0,
    ) -> bool:
        """Remember that ``table`` answers ``predicates``; returns admission.

        ``as_of`` is the simulated time the rows were fetched -- callers
        that execute before advancing the clock must pass it explicitly, or
        staleness would be measured from store time and underestimated.
        Entries larger than the whole row budget are refused, and a
        stored entry competes on benefit immediately: if it is the least
        valuable thing in an overflowing cache it is not admitted at all.
        """
        if len(table) > self.max_rows:
            self.rejected += 1
            self._count("cache.rejected")
            return False
        key = (table_name, frozenset(predicates))
        now = self.clock.now()
        self._entries[key] = CacheEntry(
            table_name,
            key[1],
            table,
            as_of=now if as_of is None else as_of,
            fetch_seconds=fetch_seconds,
            last_used=now,
        )
        self._entries.move_to_end(key)
        self._evict()
        return key in self._entries

    def invalidate_table(self, table_name: str) -> int:
        """Drop all regions of one table (on known base updates)."""
        doomed = [k for k, e in self._entries.items() if e.table_name == table_name]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        self._count("cache.invalidations", len(doomed))
        return len(doomed)

    def _evict(self) -> None:
        """Shed lowest-benefit entries until the row budget is respected."""
        while self.cached_rows() > self.max_rows and self._entries:
            victim = min(
                self._entries,
                key=lambda k: (self._entries[k].benefit(), self._entries[k].last_used),
            )
            entry = self._entries.pop(victim)
            self.evictions += 1
            self._count("cache.evictions")
            self._observe(
                "cache.evicted_age_seconds", self.clock.now() - entry.as_of
            )

    def cached_rows(self) -> int:
        return sum(len(e.table) for e in self._entries.values())

    def entry_ages(self) -> list[float]:
        """Current entries' ages in seconds (for dashboards and tests)."""
        now = self.clock.now()
        return [now - e.as_of for e in self._entries.values()]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def cache_scan_assignment(cache, scan, max_staleness):
    """Offer the cache as a priced access path for one scan.

    Returns ``(ScanAssignment, price)`` or None.  Text-filtered scans are
    never cache-served: their answers depend on the text index, not the
    pushdown region the cache is keyed by.
    """
    from repro.federation.physical import ScanAssignment

    if cache is None or getattr(scan, "text_filter", None) is not None:
        return None
    offer = cache.bid(scan.table, scan.pushdown, max_staleness)
    if offer is None:
        return None
    assignment = ScanAssignment(
        scan.binding,
        scan.table,
        "cache",
        cached_table=offer.table,
        cached_staleness=offer.age,
        cached_region=offer.region,
    )
    return assignment, offer.price

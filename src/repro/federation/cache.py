"""Semantic caching of predicate regions.

§3.2 C5 suggests "something closer to semantic caching [3] or prefetching"
as the flexible fetch-in-advance mechanism.  Entries are keyed by the
*predicate region* they answered: a request hits when some cached entry's
region is **weaker or equal** (a superset of rows) -- the residual
predicates are then applied to the cached rows locally.  Entries expire by
age and are evicted LRU by total cached rows.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.connect.source import Predicate, apply_predicates
from repro.core.records import Table
from repro.sim.clock import SimClock


@dataclass
class CacheEntry:
    table_name: str
    region: frozenset[Predicate]
    table: Table
    as_of: float


def region_covers(cached: frozenset[Predicate], requested: frozenset[Predicate]) -> bool:
    """True when the cached region is guaranteed to contain the request.

    Sound but conservative: every cached predicate must appear verbatim in
    the request (the cached constraint set is a subset, hence weaker-or-
    equal).  Implication reasoning (``price < 5`` covers ``price < 3``) is
    deliberately left out -- a correct miss is only a performance loss,
    while an incorrect hit would be a wrong answer.
    """
    return cached <= requested


class SemanticCache:
    """An LRU, TTL'd cache of answered predicate regions per table."""

    def __init__(
        self,
        clock: SimClock,
        max_rows: int = 100_000,
        max_staleness: float | None = None,
    ) -> None:
        self.clock = clock
        self.max_rows = max_rows
        self.max_staleness = max_staleness
        self._entries: "OrderedDict[tuple[str, frozenset[Predicate]], CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _expired(self, entry: CacheEntry, max_staleness: float | None) -> bool:
        limit = max_staleness if max_staleness is not None else self.max_staleness
        if limit is None:
            return False
        return (self.clock.now() - entry.as_of) > limit

    def lookup(
        self,
        table_name: str,
        predicates: "list[Predicate] | tuple[Predicate, ...]" = (),
        max_staleness: float | None = None,
    ) -> Table | None:
        """Return rows satisfying ``predicates`` if some region covers them."""
        found = self.lookup_entry(table_name, predicates, max_staleness)
        return found[0] if found is not None else None

    def lookup_entry(
        self,
        table_name: str,
        predicates: "list[Predicate] | tuple[Predicate, ...]" = (),
        max_staleness: float | None = None,
    ) -> tuple[Table, float] | None:
        """Like :meth:`lookup` but also returns the entry's age in seconds."""
        requested = frozenset(predicates)
        for key, entry in list(self._entries.items()):
            if entry.table_name != table_name:
                continue
            if self._expired(entry, self.max_staleness):
                # Dead by the cache's own TTL: evict.
                del self._entries[key]
                continue
            if self._expired(entry, max_staleness):
                # Too stale for *this* request only; a laxer query may
                # still use it, so it stays.
                continue
            if region_covers(entry.region, requested):
                self._entries.move_to_end(key)
                self.hits += 1
                residual = [p for p in requested if p not in entry.region]
                return (
                    apply_predicates(entry.table, residual),
                    self.clock.now() - entry.as_of,
                )
        self.misses += 1
        return None

    def store(
        self,
        table_name: str,
        predicates: "list[Predicate] | tuple[Predicate, ...]",
        table: Table,
    ) -> None:
        """Remember that ``table`` answers ``predicates`` as of now."""
        key = (table_name, frozenset(predicates))
        self._entries[key] = CacheEntry(table_name, key[1], table, self.clock.now())
        self._entries.move_to_end(key)
        self._evict()

    def invalidate_table(self, table_name: str) -> int:
        """Drop all regions of one table (on known base updates)."""
        doomed = [k for k, e in self._entries.items() if e.table_name == table_name]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def _evict(self) -> None:
        while self.cached_rows() > self.max_rows and len(self._entries) > 1:
            self._entries.popitem(last=False)

    def cached_rows(self) -> int:
        return sum(len(e.table) for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

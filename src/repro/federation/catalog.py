"""The federation catalog: tables, fragments, replicas, indexes, views.

This is the metadata the optimizers plan against: which global tables
exist, how each is horizontally fragmented, which sites hold replicas of
each fragment (Characteristic 8's "table fragments, materialized views and
replicas"), and which text indexes and materialized views offer alternative
access paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.connect.source import ContentSource, StaticSource
from repro.core.errors import QueryError
from repro.core.records import Table
from repro.core.schema import Schema
from repro.federation.network import Network
from repro.federation.site import Site
from repro.federation.stats import ZoneMap
from repro.federation.views import MaterializedView
from repro.ir.inverted_index import InvertedIndex
from repro.sim.clock import SimClock


@dataclass
class Fragment:
    """One horizontal fragment of a global table."""

    fragment_id: str
    table_name: str
    estimated_rows: int
    # site name -> the source name registered on that site for this replica
    replicas: dict[str, str] = field(default_factory=dict)
    # Per-column min/max/null/distinct statistics collected at load or
    # repartition time; ``None`` means unknown (external source, or dropped
    # by a base-table update) and disables partition elimination for this
    # fragment -- pruning must stay sound under stale statistics.
    zone_map: ZoneMap | None = None

    def replica_sites(self) -> list[str]:
        return sorted(self.replicas)


@dataclass
class TableEntry:
    """Catalog metadata for one global table."""

    name: str
    schema: Schema
    fragments: list[Fragment] = field(default_factory=list)
    text_index: InvertedIndex | None = None
    text_column: str | None = None
    key_column: str | None = None

    def estimated_rows(self) -> int:
        return sum(f.estimated_rows for f in self.fragments)


class FederationCatalog:
    """Sites + tables + placement + views: everything the planner needs."""

    def __init__(self, clock: SimClock | None = None, network: Network | None = None) -> None:
        self.clock = clock or SimClock()
        self.network = network or Network()
        self.sites: dict[str, Site] = {}
        self.tables: dict[str, TableEntry] = {}
        self.views: dict[str, MaterializedView] = {}
        # Monotonic counter over planning-relevant metadata: new tables or
        # views, fragment/replica changes, and base-table updates all bump
        # it.  Prepared statements stamp the version they planned against
        # and replan when it moves (gateway plan-cache invalidation).
        self.version = 0
        # Base-table update listeners (semantic caches, view schedulers...).
        self._update_listeners: list = []
        # Zone-map statistics describe fragment *content*, so any base-table
        # update makes them untrustworthy: drop them (pruning falls back to
        # scanning every fragment, which is always sound).
        self.on_table_updated(self._invalidate_zone_maps)

    def _invalidate_zone_maps(self, table_name: str) -> None:
        entry = self.tables.get(table_name)
        if entry is None:
            return
        for fragment in entry.fragments:
            fragment.zone_map = None

    # -- base-table update notifications -------------------------------------

    def on_table_updated(self, callback) -> None:
        """Subscribe ``callback(table_name)`` to base-table update events.

        Sources that mutate a table's content (workload writers, ETL jobs,
        repartitioning) call :meth:`notify_table_updated`; anything holding
        derived answers -- the engine's semantic cache above all -- listens
        here so staleness is bounded by invalidation, not only by TTL.
        """
        self._update_listeners.append(callback)

    def notify_table_updated(self, table_name: str) -> None:
        """Tell listeners that ``table_name``'s base content changed."""
        self.version += 1
        for callback in list(self._update_listeners):
            callback(table_name)

    # -- sites -----------------------------------------------------------------

    def add_site(self, site: Site) -> Site:
        if site.name in self.sites:
            raise QueryError(f"site {site.name!r} already registered")
        self.sites[site.name] = site
        return site

    def make_site(self, name: str, **kwargs) -> Site:
        """Create-and-register convenience (shares the catalog clock)."""
        return self.add_site(Site(name, self.clock, **kwargs))

    def site(self, name: str) -> Site:
        if name not in self.sites:
            raise QueryError(f"unknown site {name!r}")
        return self.sites[name]

    def up_sites(self) -> list[Site]:
        return [s for s in self.sites.values() if s.up]

    # -- tables & fragments -----------------------------------------------------

    def create_table(self, name: str, schema: Schema, key_column: str | None = None) -> TableEntry:
        if name in self.tables or name in self.views:
            raise QueryError(f"table or view {name!r} already exists")
        entry = TableEntry(name, schema, key_column=key_column)
        self.tables[name] = entry
        self.version += 1
        return entry

    def entry(self, name: str) -> TableEntry:
        if name not in self.tables:
            raise QueryError(f"unknown table {name!r}")
        return self.tables[name]

    def add_fragment(self, table_name: str, fragment_id: str, estimated_rows: int) -> Fragment:
        entry = self.entry(table_name)
        if any(f.fragment_id == fragment_id for f in entry.fragments):
            raise QueryError(f"fragment {fragment_id!r} already exists on {table_name!r}")
        fragment = Fragment(fragment_id, table_name, estimated_rows)
        entry.fragments.append(fragment)
        self.version += 1
        return fragment

    def place_replica(self, fragment: Fragment, site_name: str, source: ContentSource) -> None:
        """Host ``source`` at a site as one replica of ``fragment``."""
        site = self.site(site_name)
        local_name = f"{fragment.table_name}/{fragment.fragment_id}"
        site.host(source, local_name)
        fragment.replicas[site_name] = local_name
        self.version += 1

    def drop_replica(self, fragment: Fragment, site_name: str) -> None:
        local_name = fragment.replicas.pop(site_name, None)
        if local_name is not None and site_name in self.sites:
            self.sites[site_name].unhost(local_name)
        self.version += 1

    # -- bulk loading helpers -----------------------------------------------------

    @staticmethod
    def _deal_rows(rows: Sequence[tuple], fragment_count: int) -> list[list[tuple]]:
        """Round-robin dealing (a deterministic stand-in for hashing)."""
        buckets: list[list[tuple]] = [[] for _ in range(fragment_count)]
        for i, row in enumerate(rows):
            buckets[i % fragment_count].append(row)
        return buckets

    @staticmethod
    def _range_buckets(
        schema: Schema, rows: Sequence[tuple], column: str, fragment_count: int
    ) -> list[list[tuple]]:
        """Contiguous value-ordered chunks: range partitioning on ``column``.

        Rows are sorted by the partition column (nulls first) and split into
        near-equal chunks, so each fragment covers a disjoint value range --
        the layout that makes zone-map pruning bite on range predicates.
        """
        index = schema.index_of(column)
        ordered = sorted(
            rows, key=lambda row: (row[index] is not None, row[index])
        )
        size, remainder = divmod(len(ordered), fragment_count)
        buckets: list[list[tuple]] = []
        start = 0
        for i in range(fragment_count):
            stop = start + size + (1 if i < remainder else 0)
            buckets.append(list(ordered[start:stop]))
            start = stop
        return buckets

    def _place_buckets(
        self,
        entry: TableEntry,
        buckets: list[list[tuple]],
        placement: Sequence[Sequence[str]],
        scan_cost_seconds: float,
    ) -> list[tuple[Fragment, Table]]:
        """Create one fragment (with zone map) per bucket and host replicas."""
        placed: list[tuple[Fragment, Table]] = []
        for i, rows in enumerate(buckets):
            fragment = self.add_fragment(entry.name, f"f{i}", len(rows))
            fragment_table = Table(entry.schema, rows, validate=False)
            fragment.zone_map = ZoneMap.from_table(fragment_table)
            for site_name in placement[i]:
                self.place_replica(
                    fragment,
                    site_name,
                    StaticSource(
                        f"{entry.name}.f{i}@{site_name}",
                        fragment_table,
                        cost_seconds=scan_cost_seconds,
                    ),
                )
            placed.append((fragment, fragment_table))
        return placed

    def load_fragmented(
        self,
        table: Table,
        fragment_count: int,
        placement: Sequence[Sequence[str]],
        scan_cost_seconds: float = 0.01,
    ) -> TableEntry:
        """Create a table from data, hash-fragmented with explicit placement.

        ``placement[i]`` lists the sites holding replicas of fragment ``i``.
        Rows are dealt round-robin (a stand-in for hash partitioning that
        keeps fragments balanced and deterministic).  Each fragment's zone
        map is collected from its rows as it is placed.
        """
        if fragment_count < 1:
            raise QueryError("need at least one fragment")
        if len(placement) != fragment_count:
            raise QueryError(
                f"placement has {len(placement)} entries for {fragment_count} fragments"
            )
        entry = self.create_table(table.schema.name, table.schema)
        self._place_buckets(
            entry,
            self._deal_rows(table.rows, fragment_count),
            placement,
            scan_cost_seconds,
        )
        return entry

    def load_range_partitioned(
        self,
        table: Table,
        column: str,
        fragment_count: int,
        placement: Sequence[Sequence[str]],
        scan_cost_seconds: float = 0.01,
    ) -> TableEntry:
        """Create a table range-partitioned on ``column``.

        Each fragment holds a contiguous slice of the column's value order,
        so its zone map covers a narrow ``[min, max]`` interval and
        selective range queries eliminate most fragments outright.
        """
        if fragment_count < 1:
            raise QueryError("need at least one fragment")
        if len(placement) != fragment_count:
            raise QueryError(
                f"placement has {len(placement)} entries for {fragment_count} fragments"
            )
        entry = self.create_table(table.schema.name, table.schema)
        self._place_buckets(
            entry,
            self._range_buckets(table.schema, table.rows, column, fragment_count),
            placement,
            scan_cost_seconds,
        )
        return entry

    def repartition(
        self,
        table_name: str,
        fragment_count: int,
        placement: Sequence[Sequence[str]],
        scan_cost_seconds: float = 0.01,
        partition_column: str | None = None,
    ) -> TableEntry:
        """Re-deal a fragmented table over a new placement, online.

        §3.2 C8: "if additional scalability is required, the data can be
        repartitioned over more machines, and the transactions dispersed
        more widely."  Rows are gathered from one live replica of each
        current fragment, the old replicas dropped, and the table re-dealt
        over the new placement -- round-robin by default, or as contiguous
        value ranges when ``partition_column`` is given.  The catalog entry
        object is preserved, so queries planned against the table keep
        working, and fresh zone maps are collected from the re-dealt rows.
        """
        if len(placement) != fragment_count:
            raise QueryError(
                f"placement has {len(placement)} entries for {fragment_count} fragments"
            )
        entry = self.entry(table_name)
        if not entry.fragments:
            raise QueryError(f"table {table_name!r} has no fragments to repartition")

        # Gather current rows from one live replica per fragment.
        rows: list[tuple] = []
        for fragment in entry.fragments:
            live = [s for s in fragment.replica_sites() if self.site(s).up]
            if not live:
                raise QueryError(
                    f"fragment {fragment.fragment_id!r} of {table_name!r} has "
                    "no live replica to gather from"
                )
            source = self.site(live[0]).source(fragment.replicas[live[0]])
            rows.extend(source.fetch().table.rows)

        for fragment in list(entry.fragments):
            for site_name in fragment.replica_sites():
                self.drop_replica(fragment, site_name)
        entry.fragments.clear()

        if partition_column is not None:
            buckets = self._range_buckets(
                entry.schema, rows, partition_column, fragment_count
            )
        else:
            buckets = self._deal_rows(rows, fragment_count)
        placed = self._place_buckets(entry, buckets, placement, scan_cost_seconds)
        # Repartitioning re-deals the same rows, but cached answers keyed by
        # the old fragmentation cannot be trusted to stay coherent with
        # concurrent writers -- treat it as an update.
        self.notify_table_updated(table_name)
        # The update notification dropped every zone map for this table;
        # re-stamp them from the rows just dealt, which *are* the current
        # content (statistics collected at repartition time, per the spec).
        for fragment, fragment_table in placed:
            fragment.zone_map = ZoneMap.from_table(fragment_table)
        return entry

    def register_external_table(
        self,
        name: str,
        source: ContentSource,
        site_name: str,
        estimated_rows: int | None = None,
    ) -> TableEntry:
        """A table served live by one wrapper/gateway source (fetch on demand)."""
        entry = self.create_table(name, source.schema.project(
            source.schema.field_names, new_name=name
        ))
        fragment = self.add_fragment(
            name, "f0", estimated_rows or source.estimated_rows()
        )
        self.place_replica(fragment, site_name, source)
        return entry

    # -- text indexes ----------------------------------------------------------------

    def build_text_index(self, table_name: str, column: str, data: Table, key_column: str) -> InvertedIndex:
        """Index ``column`` of ``data`` keyed by ``key_column`` values.

        This is the "text engine compiled into the query engine" (§4): the
        engine consults it when a MATCH predicate targets this table.
        """
        entry = self.entry(table_name)
        index = InvertedIndex()
        key_values = data.column(key_column)
        text_values = data.column(column)
        for key, text in zip(key_values, text_values):
            index.add(key, text or "")
        entry.text_index = index
        entry.text_column = column
        entry.key_column = key_column
        return index

    # -- views --------------------------------------------------------------------------

    def register_view(self, view: MaterializedView) -> MaterializedView:
        if view.name in self.views or view.name in self.tables:
            raise QueryError(f"table or view {view.name!r} already exists")
        self.views[view.name] = view
        self.version += 1
        return view

    def direct_view(self, name: str) -> MaterializedView | None:
        """The materialized view queried by its own name, verified live.

        Returns ``None`` when no filled view of that name exists.  Raises
        :class:`QueryError` when the view exists but its host site is down:
        a view has exactly one host, so there is no replica to fail over to
        and planning a scan against the dead site would only fail later,
        at execution time.  Every optimizer resolves direct view scans
        through this one guard.
        """
        view = self.views.get(name)
        if view is None or view.data is None:
            return None
        if not self.site(view.site_name).up:
            raise QueryError(
                f"view {name!r} is hosted on site {view.site_name!r}, "
                "which is down"
            )
        return view

    def view_for_table(self, table_name: str, max_staleness: float | None) -> MaterializedView | None:
        """A registered whole-table view fresh enough for ``max_staleness``."""
        for view in self.views.values():
            if view.base_table != table_name or not view.covers_whole_table:
                continue
            if view.data is None:
                continue
            if max_staleness is None or view.staleness(self.clock.now()) <= max_staleness:
                return view
        return None

    # -- planner support -------------------------------------------------------------------

    def binding_fields(self, bindings: dict[str, str]) -> dict[str, set[str]]:
        """Map query bindings (alias -> table name) to their field-name sets."""
        fields: dict[str, set[str]] = {}
        for binding, table_name in bindings.items():
            if table_name in self.tables:
                fields[binding] = set(self.tables[table_name].schema.field_names)
            elif table_name in self.views:
                fields[binding] = set(self.views[table_name].schema.field_names)
            else:
                raise QueryError(f"unknown table {table_name!r} in query")
        return fields

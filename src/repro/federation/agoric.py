"""The agoric (Mariposa-style) federated optimizer.

§4: Cohera Integrate "is based on the agoric, federated query processor
architecture of the Mariposa system" [13], and §3.2 C8 claims this is what
makes "adaptive load balancing and scalability" possible where "compile-time,
centralized cost-based optimizers" fail.

The protocol reproduced here:

1. The broker (this optimizer) decomposes the logical plan into fragment
   scans.
2. For every fragment it solicits **bids** from the sites holding replicas
   -- at most ``sample_size`` of them, chosen deterministically from the
   query's RNG stream, so broker work stays O(replicas per fragment) no
   matter how many sites the federation has.
3. A bid's price is quoted *live* by the site and embeds its current
   backlog (see :meth:`repro.federation.site.Site.price_quote`), so busy
   sites price themselves out of the market: adaptivity and load balancing
   fall out of the economics rather than any global controller.
4. The cheapest bid per fragment wins; ties break deterministically.

Materialized views compete in the same market: a fresh-enough view is
priced like any other access path and wins when cheaper, which is the
paper's "optimizer treats these as alternative physical database designs".
So do semantic-cache regions: when the engine's cache holds a covering
predicate region, :meth:`repro.federation.cache.SemanticCache.bid` quotes
the local serving cost and the broker weighs it against the sites' and
views' asks -- a warm cache usually undercuts everything, and the chosen
path shows up in EXPLAIN as ``cache(region ..., age ...)``.

Optimization latency is *modeled* (one parallel bid round-trip plus
per-bid processing) and charged to the query, as is the real CPU time
spent brokering.
"""

from __future__ import annotations

import random
import time

from repro.core.errors import ContentIntegrationError, QueryError


class BudgetExceededError(ContentIntegrationError):
    """The market's asking price exceeds the query's budget.

    Mariposa queries carry budgets; when the cheapest feasible plan costs
    more than the buyer will pay (e.g. every replica is swamped and pricing
    itself high), the broker refuses rather than silently overspending.
    Carries ``required`` so callers can retry with a bigger budget.
    """

    def __init__(self, budget: float, required: float) -> None:
        self.budget = budget
        self.required = required
        super().__init__(
            f"cheapest plan costs {required:.4f}, over the budget {budget:.4f}"
        )
from repro.federation.artifacts import artifact_scan_assignment, stage_specs
from repro.federation.cache import cache_scan_assignment
from repro.federation.catalog import FederationCatalog
from repro.federation.physical import FragmentChoice, PhysicalPlan, ScanAssignment
from repro.federation.stats import (
    estimated_shipped_bytes,
    fallback_selectivity,
    fragment_can_match,
    fragment_selectivity,
)
from repro.sql.planner import PlanNode, ScanNode, scans_in

from dataclasses import dataclass


@dataclass(frozen=True)
class Bid:
    """One site's offer to scan one fragment.

    ``congestion`` is the live service-time inflation factor the site quoted
    under (1.0 = idle): the bid's price already includes it, so sites busy
    with concurrent in-flight queries price themselves out of the market --
    the workload manager's congestion gauge feeds straight into the agoric
    economics.
    """

    site_name: str
    fragment_id: str
    price: float
    est_seconds: float
    queue_delay: float
    congestion: float = 1.0
    # Estimated *encoded* wire bytes this fragment ships to the coordinator
    # (zone-map-informed; identical across a fragment's replicas, so the
    # shipping term never flips replica tie-breaks).
    est_bytes: int = 0


class AgoricOptimizer:
    """Bid-based placement of scans onto replica sites."""

    name = "agoric"

    def __init__(
        self,
        catalog: FederationCatalog,
        sample_size: int | None = None,
        rng: random.Random | None = None,
        bid_round_trip_seconds: float = 0.02,
        per_bid_seconds: float = 0.0002,
        cache=None,
        health=None,
        artifacts=None,
    ) -> None:
        self.catalog = catalog
        self.sample_size = sample_size
        self.rng = rng or random.Random(0)
        self.bid_round_trip_seconds = bid_round_trip_seconds
        self.per_bid_seconds = per_bid_seconds
        # The engine attaches its SemanticCache here so covering regions
        # can bid in the market alongside fragments and views.
        self.cache = cache
        # The engine attaches its SiteHealthTracker here: flaky sites' asks
        # are inflated by their risk penalty (availability-aware pricing),
        # and open-circuit sites are skipped when an alternative replica
        # exists.
        self.health = health
        # The engine attaches its ArtifactStore here so committed stage
        # artifacts bid as a fourth access path (coordinator-local serve
        # work, zero shipped bytes).
        self.artifacts = artifacts

    # -- bidding -----------------------------------------------------------

    @staticmethod
    def estimated_selectivity(scan: ScanNode) -> float:
        """Statistics-free selectivity of the scan's pushed-down predicates.

        The textbook constants (equality ~10%, range ~30%, multiplied per
        conjunct, floored), kept as the estimate of last resort for sources
        with no zone maps.  When a fragment carries statistics the broker
        uses :func:`repro.federation.stats.fragment_selectivity` instead.
        """
        return fallback_selectivity(scan.pushdown)

    def collect_bids(
        self, scan: ScanNode
    ) -> tuple[dict[str, list[Bid]], int, int, list]:
        """Solicit bids per surviving fragment of the scanned table.

        Fragments whose zone maps prove the scan's predicates unsatisfiable
        are eliminated before any site is contacted -- they solicit no bids
        and cost no broker work.  Fragments with *no live replica* solicit
        no bids either: they are returned in the ``unreachable`` list so the
        executor can retry them (and apply the query's degraded policy) --
        the auction does not abort over them.  Returns ``(bids_by_fragment,
        pruned, total, unreachable)``.
        """
        entry = self.catalog.entry(scan.table)
        if not entry.fragments:
            raise QueryError(f"table {scan.table!r} has no fragments to scan")
        bids_by_fragment: dict[str, list[Bid]] = {}
        pruned = 0
        unreachable = []
        for fragment in entry.fragments:
            if not fragment_can_match(fragment.zone_map, scan.pushdown):
                pruned += 1
                continue
            selectivity = fragment_selectivity(fragment, scan.pushdown)
            live = [
                name
                for name in fragment.replica_sites()
                if self.catalog.site(name).up
            ]
            if not live:
                unreachable.append(fragment)
                continue
            if self.health is not None:
                # Open circuits sit out the auction -- unless *every* live
                # replica is tripped, in which case the least-bad one still
                # gets solicited (a probe beats an unplannable fragment).
                allowed = [name for name in live if self.health.allow(name)]
                live = allowed or live
            if self.sample_size is not None and len(live) > self.sample_size:
                live = sorted(self.rng.sample(live, self.sample_size))
            # Shipping is priced in encoded bytes at the network tariff.
            # The estimate depends only on the fragment (zone-map distinct
            # counts model the dictionary encoding), never on the replica,
            # so every bid for this fragment carries the same term.
            est_rows = max(1, int(fragment.estimated_rows * selectivity))
            est_bytes = estimated_shipped_bytes(fragment, entry.schema, est_rows)
            ship_price = est_bytes * self.catalog.network.seconds_per_byte
            bids = []
            for site_name in live:
                site = self.catalog.site(site_name)
                quote = site.quote_scan(
                    fragment.replicas[site_name], row_fraction=selectivity
                )
                price = site.price_quote(quote)
                if self.health is not None:
                    # Availability-aware pricing: recent failures inflate
                    # the ask, steering work toward reliable replicas.
                    price *= self.health.price_multiplier(site_name)
                bids.append(
                    Bid(
                        site_name=site_name,
                        fragment_id=fragment.fragment_id,
                        price=price + ship_price,
                        est_seconds=quote.seconds,
                        queue_delay=quote.queue_delay,
                        congestion=quote.congestion,
                        est_bytes=est_bytes,
                    )
                )
            bids.sort(key=lambda b: (b.price, b.site_name))
            bids_by_fragment[fragment.fragment_id] = bids
        return bids_by_fragment, pruned, len(entry.fragments), unreachable

    # -- optimization --------------------------------------------------------------

    def optimize(
        self,
        plan: PlanNode,
        coordinator: str | None = None,
        max_staleness: float | None = None,
        budget: float | None = None,
    ) -> PhysicalPlan:
        """Place the plan by auction.

        ``budget`` is the Mariposa purchase order: if the cheapest feasible
        plan's total price exceeds it, :class:`BudgetExceededError` is
        raised instead of a plan.
        """
        started = time.perf_counter()
        assignments: dict[str, ScanAssignment] = {}
        contacted = 0
        total_price = 0.0
        chosen_site_rows: dict[str, int] = {}
        specs = stage_specs(plan) if self.artifacts is not None else {}

        for scan in scans_in(plan):
            # All four access paths compete on price in the same market:
            # a committed stage artifact, the semantic cache's local bid, a
            # fresh-enough materialized view, and the sites' fragment asks.
            artifact_offer = artifact_scan_assignment(
                self.artifacts, self.catalog, specs.get(scan.binding),
                max_staleness,
            )
            cache_offer = cache_scan_assignment(self.cache, scan, max_staleness)
            view_assignment = self._try_view(scan, max_staleness)
            fragment_result = self._fragment_assignment(scan)
            if fragment_result is not None:
                contacted += fragment_result[2]
            artifact_price = (
                artifact_offer[1] if artifact_offer is not None else float("inf")
            )
            cache_price = (
                cache_offer[1] if cache_offer is not None else float("inf")
            )
            view_price = (
                self._view_price(view_assignment)
                if view_assignment is not None
                else float("inf")
            )
            fragment_price = (
                fragment_result[1] if fragment_result is not None else float("inf")
            )
            if (
                fragment_result is not None
                and fragment_result[0].unreachable
                and (
                    cache_offer is not None
                    or view_assignment is not None
                    or artifact_offer is not None
                )
            ):
                # Part of the table is behind dead sites: a covering cache
                # region, view or artifact answers *completely*, which beats
                # a partial fragment plan at any price.
                fragment_price = float("inf")
            if artifact_offer is not None and artifact_price <= min(
                cache_price, view_price, fragment_price
            ):
                assignments[scan.binding] = artifact_offer[0]
                total_price += artifact_price
            elif cache_offer is not None and cache_price <= min(
                view_price, fragment_price
            ):
                assignments[scan.binding] = cache_offer[0]
                total_price += cache_price
            elif view_assignment is not None and view_price <= fragment_price:
                assignments[scan.binding] = view_assignment
                total_price += view_price
                # The view's rows live on its host site; count them so the
                # coordinator lands where the data already is instead of the
                # alphabetically-first up site.
                view = view_assignment.view
                assert view is not None and view.data is not None
                chosen_site_rows[view.site_name] = (
                    chosen_site_rows.get(view.site_name, 0) + len(view.data)
                )
            elif fragment_result is not None:
                assignment, price, _, _ = fragment_result
                assignments[scan.binding] = assignment
                total_price += price
                for choice in assignment.choices:
                    chosen_site_rows[choice.site_name] = (
                        chosen_site_rows.get(choice.site_name, 0)
                        + choice.fragment.estimated_rows
                    )
            else:
                raise QueryError(f"no access path for table {scan.table!r}")

        if budget is not None and total_price > budget:
            raise BudgetExceededError(budget, total_price)

        chosen_coordinator = coordinator or self._pick_coordinator(chosen_site_rows)
        modeled_seconds = self.bid_round_trip_seconds + contacted * self.per_bid_seconds
        # DESIGN §7: only *modeled* seconds reach the simulated clock; the
        # host's real brokering time is reported separately so two identical
        # seeded runs stay byte-identical.
        elapsed = time.perf_counter() - started
        return PhysicalPlan(
            logical=plan,
            assignments=assignments,
            coordinator=chosen_coordinator,
            optimizer=self.name,
            optimization_seconds=modeled_seconds,
            planner_wall_seconds=elapsed,
            sites_contacted=contacted,
            total_price=total_price,
        )

    def _fragment_assignment(
        self, scan: ScanNode
    ) -> tuple[ScanAssignment, float, int, int] | None:
        try:
            bids_by_fragment, pruned, total, unreachable = self.collect_bids(scan)
        except QueryError:
            return None
        assignment = ScanAssignment(
            scan.binding,
            scan.table,
            "fragments",
            pruned_fragments=pruned,
            total_fragments=total,
            unreachable=unreachable,
        )
        entry = self.catalog.entry(scan.table)
        fragments = {f.fragment_id: f for f in entry.fragments}
        price = 0.0
        contacted = 0
        rows = 0
        for fragment_id, bids in bids_by_fragment.items():
            contacted += len(bids)
            winner = bids[0]
            price += winner.price
            fragment = fragments[fragment_id]
            rows += fragment.estimated_rows
            assignment.est_bytes += winner.est_bytes
            assignment.choices.append(FragmentChoice(fragment, winner.site_name))
        return assignment, price, contacted, rows

    def requote_scan(
        self, scan: ScanNode, max_staleness: float | None = None
    ) -> tuple[ScanAssignment, float, float] | None:
        """Re-solicit live bids for one scan mid-query (DESIGN §5i).

        The agoric answer to a degrading cluster: hold the auction again.
        Bids are collected exactly as at plan time -- live congestion,
        queue backlogs and health risk all priced in -- and cost another
        round trip plus per-bid work, charged to the querying execution.
        Returns ``(assignment, price, modeled_seconds)`` or ``None`` when
        no live site can cover the scan.
        """
        result = self._fragment_assignment(scan)
        if result is None:
            return None
        assignment, price, contacted, _rows = result
        modeled = self.bid_round_trip_seconds + contacted * self.per_bid_seconds
        return assignment, price, modeled

    def _try_view(
        self, scan: ScanNode, max_staleness: float | None
    ) -> ScanAssignment | None:
        # Querying a view by its own name always serves the view -- but only
        # from a live host; catalog.direct_view raises if the site is down.
        direct = self.catalog.direct_view(scan.table)
        if direct is not None:
            return ScanAssignment(scan.binding, scan.table, "view", view=direct)
        view = self.catalog.view_for_table(scan.table, max_staleness)
        if view is None or not self.catalog.site(view.site_name).up:
            return None
        return ScanAssignment(scan.binding, scan.table, "view", view=view)

    def _view_price(self, assignment: ScanAssignment) -> float:
        view = assignment.view
        assert view is not None and view.data is not None
        site = self.catalog.site(view.site_name)
        # Views compete in the same congested market: a view hosted on a
        # site swamped with in-flight queries asks more, like any bid --
        # and ships its (encoded) rows at the same network tariff the
        # fragment bids pay.
        assignment.est_bytes = estimated_shipped_bytes(
            view, view.schema, len(view.data)
        )
        ship_price = assignment.est_bytes * self.catalog.network.seconds_per_byte
        seconds = (
            len(view.data) * site.cpu_seconds_per_row * site.congestion_factor()
        )
        return (
            seconds + site.backlog() * site.load_price_factor
        ) * site.price_per_second + ship_price

    def _pick_coordinator(self, chosen_site_rows: dict[str, int]) -> str:
        """Run post-processing where the most data already is."""
        if chosen_site_rows:
            return max(chosen_site_rows.items(), key=lambda kv: (kv[1], kv[0]))[0]
        up = self.catalog.up_sites()
        if not up:
            raise QueryError("no live sites to coordinate the query")
        return min(site.name for site in up)

"""The network model between federation sites.

Deliberately simple: a base round-trip latency per site pair (overridable
for specific pairs -- cross-enterprise WAN links cost more than machine-room
hops) plus a transfer cost.  Local transfers (same site) are free.

Transfer cost comes in two currencies.  The legacy per-row rate
(:meth:`Network.transfer_seconds`) is kept for row-form payloads and for
the row engine; the columnar data plane ships encoded column batches and
is charged per byte (:meth:`Network.transfer_seconds_bytes`), so a
well-encoded column is genuinely cheaper to move than its raw rows.  The
default per-byte rate is calibrated so a typical ~40-byte row costs about
what the per-row rate charged, keeping the two models comparable.
"""

from __future__ import annotations


class Network:
    """Latency and transfer accounting between named sites."""

    def __init__(
        self,
        base_latency: float = 0.02,
        seconds_per_row: float = 0.00001,
        seconds_per_byte: float = 2.5e-7,
    ) -> None:
        self.base_latency = base_latency
        self.seconds_per_row = seconds_per_row
        self.seconds_per_byte = seconds_per_byte
        self._pair_latency: dict[tuple[str, str], float] = {}

    def set_latency(self, site_a: str, site_b: str, latency: float) -> None:
        """Override the latency for one (unordered) pair of sites."""
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self._pair_latency[self._key(site_a, site_b)] = latency

    def latency(self, site_a: str, site_b: str) -> float:
        if site_a == site_b:
            return 0.0
        return self._pair_latency.get(self._key(site_a, site_b), self.base_latency)

    def transfer_seconds(self, site_a: str, site_b: str, rows: int) -> float:
        """Total seconds to move ``rows`` from one site to another."""
        if site_a == site_b:
            return 0.0
        return self.latency(site_a, site_b) + rows * self.seconds_per_row

    def transfer_seconds_bytes(self, site_a: str, site_b: str, nbytes: int) -> float:
        """Total seconds to move ``nbytes`` of encoded payload."""
        if site_a == site_b:
            return 0.0
        return self.latency(site_a, site_b) + nbytes * self.seconds_per_byte

    @staticmethod
    def _key(site_a: str, site_b: str) -> tuple[str, str]:
        return (site_a, site_b) if site_a <= site_b else (site_b, site_a)

"""Replica-choice policies.

"Replication allows the load to be shifted arbitrarily across machines.  In
this case, a strategy for load balancing is required to keep all machines
equally busy" (§3.2 C8).  These policies decide which replica of a fragment
serves a scan.  The agoric optimizer effectively *is* a live least-cost
policy (prices embed load); the centralized baseline is wired to
:class:`SnapshotLoadPolicy`, whose statistics go stale between refreshes --
the operational difference E3/E4 measure.
"""

from __future__ import annotations

import abc
import random

from repro.core.errors import QueryError
from repro.federation.catalog import FederationCatalog, Fragment


class ReplicaPolicy(abc.ABC):
    """Chooses one live replica site for a fragment."""

    @abc.abstractmethod
    def choose(self, fragment: Fragment, catalog: FederationCatalog) -> str:
        """Return the chosen site name; raises QueryError if none are up."""

    @staticmethod
    def live_sites(fragment: Fragment, catalog: FederationCatalog) -> list[str]:
        sites = [
            name for name in fragment.replica_sites() if catalog.site(name).up
        ]
        if not sites:
            raise QueryError(
                f"no live replica of fragment {fragment.fragment_id!r} "
                f"of table {fragment.table_name!r}"
            )
        return sites


class RandomPolicy(ReplicaPolicy):
    """Uniform random choice among live replicas."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def choose(self, fragment: Fragment, catalog: FederationCatalog) -> str:
        return self.rng.choice(self.live_sites(fragment, catalog))


class RoundRobinPolicy(ReplicaPolicy):
    """Cycles deterministically through each fragment's replicas."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, str], int] = {}

    def choose(self, fragment: Fragment, catalog: FederationCatalog) -> str:
        sites = self.live_sites(fragment, catalog)
        key = (fragment.table_name, fragment.fragment_id)
        counter = self._counters.get(key, 0)
        self._counters[key] = counter + 1
        return sites[counter % len(sites)]


class LeastLoadedPolicy(ReplicaPolicy):
    """Live backlog inspection (an idealized omniscient balancer)."""

    def choose(self, fragment: Fragment, catalog: FederationCatalog) -> str:
        sites = self.live_sites(fragment, catalog)
        return min(sites, key=lambda name: (catalog.site(name).backlog(), name))


class PolicyOptimizer:
    """An optimizer that delegates every replica choice to one policy.

    This closes the loop between the policy zoo above and the optimizer
    interface: E4's ablation can run the *same* query stream under random,
    round-robin, live-least-loaded and snapshot policies and compare the
    resulting site utilization directly against the agoric market.
    """

    def __init__(self, catalog: FederationCatalog, policy: ReplicaPolicy,
                 name: str | None = None, cache=None, health=None,
                 artifacts=None) -> None:
        self.catalog = catalog
        self.policy = policy
        self.name = name or f"policy:{type(policy).__name__}"
        # Attached by the engine; covering cached regions pre-empt the
        # replica choice entirely (no replica beats a local answer).
        self.cache = cache
        # Attached by the engine; a committed stage artifact pre-empts even
        # the cache (it is the stage's exact output, already local).
        self.artifacts = artifacts
        # Attached by the engine; a policy pick whose circuit is open is
        # overridden with the least-risky allowed replica.
        self.health = health

    def optimize(self, plan, coordinator=None, max_staleness=None):
        from repro.federation.artifacts import (
            artifact_scan_assignment,
            stage_specs,
        )
        from repro.federation.cache import cache_scan_assignment
        from repro.federation.physical import (
            FragmentChoice,
            PhysicalPlan,
            ScanAssignment,
        )
        from repro.federation.stats import (
            estimated_shipped_bytes,
            fragment_can_match,
            fragment_selectivity,
        )
        from repro.sql.planner import scans_in

        assignments = {}
        rows_by_site: dict[str, int] = {}
        specs = stage_specs(plan) if self.artifacts is not None else {}
        for scan in scans_in(plan):
            artifact_offer = artifact_scan_assignment(
                self.artifacts, self.catalog, specs.get(scan.binding),
                max_staleness,
            )
            if artifact_offer is not None:
                assignments[scan.binding] = artifact_offer[0]
                continue
            cache_offer = cache_scan_assignment(self.cache, scan, max_staleness)
            if cache_offer is not None:
                assignments[scan.binding] = cache_offer[0]
                continue
            # Views queried by name must come from a live host (direct_view
            # raises if the host is down).
            view = self.catalog.direct_view(scan.table)
            if view is None:
                view = self.catalog.view_for_table(scan.table, max_staleness)
                if view is not None and not self.catalog.site(view.site_name).up:
                    view = None
            if view is not None:
                view_assignment = ScanAssignment(
                    scan.binding, scan.table, "view", view=view
                )
                if view.data is not None:
                    view_assignment.est_bytes = estimated_shipped_bytes(
                        view, view.schema, len(view.data)
                    )
                assignments[scan.binding] = view_assignment
                # The view's host already holds the rows; prefer it as the
                # coordinator over the alphabetically-first up site.
                rows_by_site[view.site_name] = (
                    rows_by_site.get(view.site_name, 0) + len(view.data or [])
                )
                continue
            entry = self.catalog.entry(scan.table)
            assignment = ScanAssignment(
                scan.binding,
                scan.table,
                "fragments",
                total_fragments=len(entry.fragments),
            )
            for fragment in entry.fragments:
                # Partition elimination: skip fragments whose zone maps rule
                # out every pushed-down predicate before any replica choice.
                if not fragment_can_match(fragment.zone_map, scan.pushdown):
                    assignment.pruned_fragments += 1
                    continue
                try:
                    site_name = self.policy.choose(fragment, self.catalog)
                except QueryError:
                    # No live replica right now: the executor retries at
                    # scan time and applies the degraded-answer policy.
                    assignment.unreachable.append(fragment)
                    continue
                if self.health is not None and not self.health.allow(site_name):
                    # The policy picked a tripped site; reroute to the
                    # least-risky allowed live replica when one exists.
                    alternatives = [
                        name
                        for name in fragment.replica_sites()
                        if self.catalog.site(name).up and self.health.allow(name)
                    ]
                    if alternatives:
                        site_name = min(
                            alternatives,
                            key=lambda name: (self.health.risk_penalty(name), name),
                        )
                assignment.choices.append(FragmentChoice(fragment, site_name))
                # Policies don't price, but the plan still reports what it
                # expects to put on the wire (encoded bytes, zone-map aware).
                est_rows = max(
                    1,
                    int(
                        fragment.estimated_rows
                        * fragment_selectivity(fragment, scan.pushdown)
                    ),
                )
                assignment.est_bytes += estimated_shipped_bytes(
                    fragment, entry.schema, est_rows
                )
                rows_by_site[site_name] = (
                    rows_by_site.get(site_name, 0) + fragment.estimated_rows
                )
            assignments[scan.binding] = assignment

        if coordinator is None:
            if rows_by_site:
                coordinator = max(rows_by_site.items(), key=lambda kv: (kv[1], kv[0]))[0]
            else:
                up = self.catalog.up_sites()
                if not up:
                    raise QueryError("no live sites to coordinate the query")
                coordinator = min(site.name for site in up)
        return PhysicalPlan(
            logical=plan,
            assignments=assignments,
            coordinator=coordinator,
            optimizer=self.name,
        )

    def requote_scan(self, scan, max_staleness=None):
        """Re-run the replica policy for one scan mid-query (DESIGN §5i).

        Policies are cheap — one ``choose`` per fragment, no market round
        trip — so the modeled re-quote cost is zero; the controller prices
        both placements itself on the shared live basis.  Returns
        ``(assignment, price=0.0, modeled_seconds=0.0)`` or ``None``.
        """
        from repro.federation.physical import FragmentChoice, ScanAssignment
        from repro.federation.stats import (
            estimated_shipped_bytes,
            fragment_can_match,
            fragment_selectivity,
        )

        entry = self.catalog.entry(scan.table)
        if not entry.fragments:
            return None
        assignment = ScanAssignment(
            scan.binding,
            scan.table,
            "fragments",
            total_fragments=len(entry.fragments),
        )
        for fragment in entry.fragments:
            if not fragment_can_match(fragment.zone_map, scan.pushdown):
                assignment.pruned_fragments += 1
                continue
            try:
                site_name = self.policy.choose(fragment, self.catalog)
            except QueryError:
                assignment.unreachable.append(fragment)
                continue
            if self.health is not None and not self.health.allow(site_name):
                alternatives = [
                    name
                    for name in fragment.replica_sites()
                    if self.catalog.site(name).up and self.health.allow(name)
                ]
                if alternatives:
                    site_name = min(
                        alternatives,
                        key=lambda name: (self.health.risk_penalty(name), name),
                    )
            assignment.choices.append(FragmentChoice(fragment, site_name))
            est_rows = max(
                1,
                int(
                    fragment.estimated_rows
                    * fragment_selectivity(fragment, scan.pushdown)
                ),
            )
            assignment.est_bytes += estimated_shipped_bytes(
                fragment, entry.schema, est_rows
            )
        if not assignment.choices:
            return None
        return assignment, 0.0, 0.0


class SnapshotLoadPolicy(ReplicaPolicy):
    """Least-loaded by a *periodically refreshed* statistics snapshot.

    This is how compile-time centralized optimizers see the world: load
    statistics are collected every ``refresh_interval`` simulated seconds
    and are stale in between, so a burst of queries all land on the site
    that was idle at snapshot time.
    """

    def __init__(self, refresh_interval: float = 60.0) -> None:
        self.refresh_interval = refresh_interval
        self._snapshot: dict[str, float] = {}
        self._snapshot_at = float("-inf")

    def _maybe_refresh(self, catalog: FederationCatalog) -> None:
        now = catalog.clock.now()
        if now - self._snapshot_at >= self.refresh_interval:
            self._snapshot = {
                name: site.backlog() for name, site in catalog.sites.items()
            }
            self._snapshot_at = now

    def choose(self, fragment: Fragment, catalog: FederationCatalog) -> str:
        self._maybe_refresh(catalog)
        sites = self.live_sites(fragment, catalog)
        return min(sites, key=lambda name: (self._snapshot.get(name, 0.0), name))

"""The query gateway: the federation's client-facing front door.

The paper's deployment story (§4) puts a portal in front of the
integrator -- "Cohera Connect can present a traditional ODBC or JDBC
interface to query applications" -- serving many trading partners at
once.  This module is that serving layer, sitting in front of the
:class:`~repro.federation.workload.WorkloadManager`:

* **Session pooling.**  :meth:`Gateway.connect` checks a
  :class:`GatewaySession` out of a per-tenant free list instead of
  building connection state per request; :meth:`GatewaySession.close`
  returns it.  ``gateway.sessions.active`` / ``.pooled`` gauges and
  ``.opened`` / ``.reused`` counters make pool behaviour observable.
* **Prepared-statement plan cache.**  Statements are keyed by their
  *normalized* SQL text (comments stripped, whitespace collapsed, code
  lowercased -- quoted material verbatim) plus the staleness bound, and
  the parse + rewrite + optimize work happens once per key:
  :meth:`~repro.federation.engine.FederatedEngine.prepare` builds an
  immutable parameterizable template, every later execution binds values
  into a copy (``gateway.plan_cache.hits``/``misses``).  Stale templates
  are *not* served: the engine revalidates each one against the catalog
  version and its staleness bound at execution time, so repartitions and
  base-table updates transparently replan rather than answer from a dead
  topology.
* **Pagination.**  :meth:`GatewaySession.execute_paged` returns the
  first :class:`Page` of a result with an opaque cursor token;
  :meth:`Gateway.fetch_page` walks the remainder without re-running the
  query.  Tokens are deterministic counters, not timestamps, so paged
  runs replay byte-identically (DESIGN §7).

Everything dispatches through the workload manager, so gateway traffic
is admitted, queued, scheduled and priced exactly like any other load.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.errors import QueryError
from repro.federation.engine import FederatedEngine, PreparedStatement, QueryResult
from repro.federation.workload import QueryHandle, WorkloadManager
from repro.sim.metrics import MetricsRegistry
from repro.sql.parser import SqlParseError
from repro.sql.sqltext import (
    count_placeholders,
    normalize_sql,
    render_literal,
    replace_placeholders,
)


class PlanCache:
    """LRU cache of prepared-statement templates, keyed by normalized SQL.

    The key is ``(normalize_sql(sql), max_staleness, coordinator,
    policy_signature)``: two spellings of the same statement -- different
    comments, whitespace, keyword case -- share one template, while options
    that change *what plan is built* key separately: the staleness bound
    shapes access-path choice, a pinned coordinator is baked into the
    template's site assignments (two sessions pinning different
    coordinators must never share one plan), and a *governed* tenant's
    policy signature is baked into the plan itself (RLS predicates and
    masks compile into the template's scans, so two tenants with different
    policies must never share one plan either).  The signature is the
    content hash of the tenant's policy, not the tenant name: ungoverned
    tenants all key on ``None`` and keep sharing (adding governance for
    some tenants costs the rest nothing), tenants with byte-identical
    policies share soundly, and a manifest edit changes the signature so
    the edited tenant's next statement misses to a freshly-governed plan.
    Options that are bound per-*execution* rather than per-plan stay out
    of the key on purpose: ``degraded_ok`` is threaded through
    :meth:`WorkloadManager.submit` at dispatch and never touches the
    template, and ``columnar`` is an engine-level execution mode, so
    splitting the key on either would only depress the hit rate without
    changing semantics.  Entries are never served stale: revalidation
    against the catalog version *and* the policy signature lives in
    :meth:`FederatedEngine.execute`, so the cache only manages identity
    and eviction.
    """

    def __init__(
        self,
        engine: FederatedEngine,
        capacity: int = 256,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise QueryError(f"plan cache capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.metrics = metrics or engine.metrics
        self._entries: "OrderedDict[tuple[str, float | None, str | None, str | None], PreparedStatement]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_prepare(
        self,
        sql: str,
        max_staleness: float | None = None,
        coordinator: str | None = None,
        tenant: str | None = None,
    ) -> PreparedStatement:
        """The cached template for ``sql``, preparing (and caching) on miss."""
        governance = getattr(self.engine, "governance", None)
        signature = (
            governance.signature_for(tenant) if governance is not None else None
        )
        key = (normalize_sql(sql), max_staleness, coordinator, signature)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self.metrics.counter("gateway.plan_cache.hits").inc()
            return entry
        entry = self.engine.prepare(
            sql, max_staleness=max_staleness, coordinator=coordinator,
            tenant=tenant,
        )
        # Count the miss only once the statement proves preparable, so
        # unpreparable statements (textual-binding fallback) don't depress
        # the hit rate on every execution.
        self.misses += 1
        self.metrics.counter("gateway.plan_cache.misses").inc()
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.metrics.counter("gateway.plan_cache.evictions").inc()
        self.metrics.gauge("gateway.plan_cache.size").set(len(self._entries))
        return entry

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class Page:
    """One page of a paginated result set."""

    columns: tuple[str, ...]
    rows: list[tuple]
    # Opaque token for Gateway.fetch_page; None when the set is exhausted.
    cursor: str | None


@dataclass
class GatewayResult:
    """What a synchronous gateway execution hands back to the client."""

    result: QueryResult
    # None when the statement took the textual-binding fallback.
    prepared: PreparedStatement | None

    @property
    def rows(self) -> list[tuple]:
        return self.result.table.rows

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self.result.table.schema.field_names)


class GatewaySession:
    """One pooled client connection to the gateway.

    Sessions are tenant-scoped: every statement executed on the session is
    admitted under the session's tenant (and degraded-answer policy).  Use
    the session synchronously (:meth:`execute` / :meth:`execute_paged`) or
    asynchronously (:meth:`submit`, resolving handles via the workload
    manager's event loop).
    """

    def __init__(
        self,
        gateway: "Gateway",
        tenant: str,
        degraded_ok: bool,
        coordinator: str | None = None,
    ) -> None:
        self.gateway = gateway
        self.tenant = tenant
        self.degraded_ok = degraded_ok
        self.coordinator = coordinator  # pinned coordinator site, or None
        self.closed = False
        self.statements = 0  # lifetime statements across checkouts
        # Cursor tokens opened by this checkout; closed on release so a
        # reused session never leaks another tenant's result set.
        self._cursors: set[str] = set()

    # -- statement execution ----------------------------------------------

    def submit(
        self,
        sql: str,
        params: "tuple | list" = (),
        priority: float = 0.0,
        deadline: float | None = None,
        max_staleness: float | None = None,
    ) -> QueryHandle:
        """Admit one statement; the handle resolves as the loop runs.

        The statement is prepared through the plan cache (or bound
        textually when the grammar cannot hold a placeholder, e.g.
        ``LIKE ?``) and dispatched via the workload manager under this
        session's tenant.
        """
        self._check_open()
        self.statements += 1
        workload = self.gateway.workload
        try:
            prepared = self.gateway.plan_cache.get_or_prepare(
                sql, max_staleness=max_staleness, coordinator=self.coordinator,
                tenant=self.tenant,
            )
        except SqlParseError:
            if not count_placeholders(sql):
                raise
            # Grammar positions that cannot hold a Parameter (LIKE
            # patterns, LIMIT counts) fall back to textual binding: the
            # fully-bound text plans per-statement, outside the cache.
            bound_sql = bind_sql_text(sql, params)
            return workload.submit(
                bound_sql,
                tenant=self.tenant,
                priority=priority,
                deadline=deadline,
                max_staleness=max_staleness,
                degraded_ok=self.degraded_ok,
            )
        return workload.submit(
            prepared=prepared,
            params=params,
            tenant=self.tenant,
            priority=priority,
            deadline=deadline,
            degraded_ok=self.degraded_ok,
        )

    def execute(
        self,
        sql: str,
        params: "tuple | list" = (),
        priority: float = 0.0,
        deadline: float | None = None,
        max_staleness: float | None = None,
    ) -> GatewayResult:
        """Submit one statement and drive the loop until it resolves."""
        handle = self.submit(
            sql,
            params,
            priority=priority,
            deadline=deadline,
            max_staleness=max_staleness,
        )
        self.gateway.workload.drain(handle)
        result = handle.result()
        return GatewayResult(result=result, prepared=handle.prepared)

    def execute_paged(
        self,
        sql: str,
        params: "tuple | list" = (),
        limit: int = 100,
        priority: float = 0.0,
        max_staleness: float | None = None,
    ) -> Page:
        """Execute and return the first ``limit`` rows plus a cursor.

        The full result is computed once and held by the gateway; walk the
        remainder with :meth:`Gateway.fetch_page`.
        """
        self._check_open()
        outcome = self.execute(
            sql, params, priority=priority, max_staleness=max_staleness
        )
        return self.gateway._open_cursor(
            outcome.columns, outcome.rows, limit, session=self
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Return this session to the gateway's pool."""
        if not self.closed:
            self.closed = True
            self.gateway._release(self)

    def __enter__(self) -> "GatewaySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise QueryError("session is closed; connect() a fresh one")

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"GatewaySession(tenant={self.tenant!r}, {state})"


def bind_sql_text(sql: str, params: "tuple | list") -> str:
    """Textually substitute ``params`` into the ``?`` slots of ``sql``.

    Comment/identifier/escape-aware (a ``?`` inside a string, a
    double-quoted identifier or a ``--`` comment is not a placeholder).
    The parameter-count check matches DB-API semantics.
    """
    values = tuple(params)
    needed = count_placeholders(sql)
    if needed != len(values):
        raise QueryError(
            f"statement takes {needed} parameter(s), got {len(values)}"
        )
    try:
        return replace_placeholders(sql, lambda i: render_literal(values[i]))
    except ValueError as error:
        raise QueryError(str(error)) from error


@dataclass
class _Cursor:
    """Server-side state behind one pagination token."""

    columns: tuple[str, ...]
    rows: list[tuple]
    position: int = 0
    # The session checkout that opened the cursor; releasing the session
    # expires the cursor, so tokens never outlive their tenant's checkout.
    session: "GatewaySession | None" = None


class Gateway:
    """Session pool + plan cache in front of one workload manager."""

    def __init__(
        self,
        workload: WorkloadManager,
        max_sessions: int = 64,
        max_idle: int = 16,
        plan_cache_size: int = 256,
    ) -> None:
        if max_sessions < 1:
            raise QueryError(f"max_sessions must be >= 1, got {max_sessions}")
        if max_idle < 0:
            raise QueryError(f"max_idle must be >= 0, got {max_idle}")
        self.workload = workload
        self.engine = workload.engine
        self.metrics = workload.metrics
        self.max_sessions = max_sessions
        self.max_idle = max_idle
        self.plan_cache = PlanCache(
            self.engine, capacity=plan_cache_size, metrics=self.metrics
        )
        self.active_sessions = 0
        self.sessions_opened = 0
        self.sessions_reused = 0
        # tenant name -> idle sessions ready for reuse (LIFO: the most
        # recently released session is the warmest).
        self._idle: dict[str, list[GatewaySession]] = {}
        self._cursors: dict[str, _Cursor] = {}
        self._cursor_seq = 0

    # -- session pool ------------------------------------------------------

    def connect(
        self,
        tenant: str = "default",
        degraded_ok: bool = False,
        coordinator: str | None = None,
    ) -> GatewaySession:
        """Check a session out of the pool (creating one on a cold pool).

        ``coordinator`` pins every plan built for this session to one
        coordinator site (a client co-located with a site, or a routing
        tier's affinity choice); it participates in the plan-cache key.
        Raises :class:`QueryError` when ``max_sessions`` sessions are
        already checked out -- the gateway sheds connections rather than
        oversubscribing, mirroring the workload manager's bounded queues.
        """
        if self.active_sessions >= self.max_sessions:
            self.metrics.counter("gateway.sessions.rejected").inc()
            raise QueryError(
                f"gateway session pool exhausted ({self.max_sessions} active)"
            )
        free = self._idle.get(tenant)
        if free:
            session = free.pop()
            session.closed = False
            session.degraded_ok = degraded_ok
            session.coordinator = coordinator
            self.sessions_reused += 1
            self.metrics.counter("gateway.sessions.reused").inc()
        else:
            session = GatewaySession(self, tenant, degraded_ok, coordinator)
            self.sessions_opened += 1
            self.metrics.counter("gateway.sessions.opened").inc()
        self.active_sessions += 1
        self.metrics.gauge("gateway.sessions.active").set(self.active_sessions)
        self._set_pooled_gauge()
        return session

    def _release(self, session: GatewaySession) -> None:
        # Expire the checkout's open cursors first: a pooled session may be
        # re-acquired by a different tenant, and a surviving token would let
        # that tenant page through the previous tenant's result set.
        for token in list(session._cursors):
            self.close_cursor(token)
        session._cursors.clear()
        self.active_sessions -= 1
        self.metrics.gauge("gateway.sessions.active").set(self.active_sessions)
        free = self._idle.setdefault(session.tenant, [])
        if len(free) < self.max_idle:
            free.append(session)
        self._set_pooled_gauge()

    def _set_pooled_gauge(self) -> None:
        self.metrics.gauge("gateway.sessions.pooled").set(
            sum(len(free) for free in self._idle.values())
        )

    # -- pagination --------------------------------------------------------

    def _open_cursor(
        self,
        columns: tuple[str, ...],
        rows: list[tuple],
        limit: int,
        session: GatewaySession | None = None,
    ) -> Page:
        if limit < 1:
            raise QueryError(f"page limit must be >= 1, got {limit}")
        first = rows[:limit]
        if len(rows) <= limit:
            return Page(columns=columns, rows=first, cursor=None)
        self._cursor_seq += 1
        token = f"c{self._cursor_seq}"
        self._cursors[token] = _Cursor(
            columns=columns, rows=rows, position=limit, session=session
        )
        if session is not None:
            session._cursors.add(token)
        self.metrics.gauge("gateway.cursors.open").set(len(self._cursors))
        return Page(columns=columns, rows=first, cursor=token)

    def fetch_page(self, cursor_token: str, limit: int = 100) -> Page:
        """The next ``limit`` rows behind ``cursor_token``.

        The returned page carries the token to continue with (the same
        one) or ``None`` once the set is exhausted, at which point the
        server-side cursor is dropped.  An unknown or exhausted token
        raises :class:`QueryError`.
        """
        if limit < 1:
            raise QueryError(f"page limit must be >= 1, got {limit}")
        cursor = self._cursors.get(cursor_token)
        if cursor is None:
            raise QueryError(f"unknown or exhausted cursor {cursor_token!r}")
        rows = cursor.rows[cursor.position : cursor.position + limit]
        cursor.position += len(rows)
        if cursor.position >= len(cursor.rows):
            self.close_cursor(cursor_token)
            return Page(columns=cursor.columns, rows=rows, cursor=None)
        return Page(columns=cursor.columns, rows=rows, cursor=cursor_token)

    def close_cursor(self, cursor_token: str) -> None:
        """Drop a cursor early (a client abandoning a paged result)."""
        cursor = self._cursors.pop(cursor_token, None)
        if cursor is not None:
            if cursor.session is not None:
                cursor.session._cursors.discard(cursor_token)
            self.metrics.gauge("gateway.cursors.open").set(len(self._cursors))

    def __repr__(self) -> str:
        return (
            f"Gateway(active={self.active_sessions}/{self.max_sessions}, "
            f"plan_cache={len(self.plan_cache)}, "
            f"hit_rate={self.plan_cache.hit_rate:.2f})"
        )

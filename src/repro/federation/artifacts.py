"""Content-hashed stage artifacts: workload-level common-subexpression reuse.

The PR 5 workload manager overlaps many tenants' queries on one federation,
and identical pushed-down sub-plans -- the column batches one ``Ship``
stage delivers -- now run repeatedly across tenants and statement shapes.
This module materializes those stage outputs once and serves them to every
equivalent consumer:

* **Content hashing.**  :func:`stage_hash` canonically digests the
  pushed-down operator subtree of one stage: the base table and its
  fragment set, the source-level pushdown predicates, the site-filter
  conjuncts, the projected column set, and (for split aggregations) the
  partial-aggregate spec.  Binding aliases are canonicalized away, so
  ``select v from items i where i.v < 5`` and ``select v from items where
  v < 5`` collide -- across tenants, sessions and SQL spellings.  The
  artifact key is ``(stage hash, catalog version)``: the version half is
  exactly the prepared-statement validity stamp from PR 7, so any
  repartition or base-table write makes every older artifact unreachable
  by construction.
* **A fourth access path.**  :func:`artifact_scan_assignment` offers a
  completed artifact to the optimizers alongside fragments, materialized
  views and the semantic cache; the bid prices a coordinator-local pass
  over the materialized rows -- near-zero scan work and zero shipped
  bytes -- so a warm artifact usually wins the market.
* **Runtime publication and reuse.**  A ``Ship`` whose stage misses
  executes normally and publishes its output through the report; the
  engine registers it *in flight* until the query's modeled completion,
  then it commits under benefit-based admission (rows saved x stage
  seconds, mirroring the semantic cache's economy).  A concurrent query
  whose stage hash matches an in-flight stage *joins* it: it subscribes to
  the producer's completion instead of recomputing, paying only the
  remaining wait.  If the producer dies mid-flight, subscribers fall back
  to independent execution (once -- the fallback itself never joins).
* **Invalidation.**  The store listens on the catalog's base-table update
  bus exactly like the semantic cache; a write drops the table's
  artifacts and in-flight stages, and the catalog-version key half keeps
  any survivor unreachable anyway.

Payloads are stored in a binding-agnostic canonical form (bare column
names, canonical aggregate-call keys) and rebuilt per consumer, so a hit
is bit-identical to recomputation no matter which alias or ambiguity set
the consuming query uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.sim.clock import SimClock
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.planner import AggregateNode, PlanNode, ScanNode

Env = dict


# -- canonical stage digests ---------------------------------------------------


def canonical_expr(expr, binding: str) -> str:
    """Render ``expr`` with the scan's binding alias canonicalized to ``@``.

    This is the hashing analog of ``describe_expr``: two site-filter trees
    that differ only in the table alias (``i.v < 5`` vs ``items.v < 5`` vs
    bare ``v < 5``) render identically, which is what lets equivalent
    sub-plans collide across statement shapes.
    """
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Column):
        if expr.qualifier is None or expr.qualifier == binding:
            return f"@.{expr.name}"
        return expr.qualified  # foreign binding: keep it distinguishing
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, BinaryOp):
        left = canonical_expr(expr.left, binding)
        right = canonical_expr(expr.right, binding)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, UnaryOp):
        return f"({expr.op} {canonical_expr(expr.operand, binding)})"
    if isinstance(expr, FuncCall):
        args = (
            "*"
            if expr.star
            else ", ".join(canonical_expr(a, binding) for a in expr.args)
        )
        return f"{expr.name}({args})"
    if isinstance(expr, InList):
        items = ", ".join(canonical_expr(i, binding) for i in expr.items)
        negated = "not " if expr.negated else ""
        return f"({canonical_expr(expr.operand, binding)} {negated}in ({items}))"
    if isinstance(expr, Between):
        negated = "not " if expr.negated else ""
        return (
            f"({canonical_expr(expr.operand, binding)} {negated}between "
            f"{canonical_expr(expr.low, binding)} and "
            f"{canonical_expr(expr.high, binding)})"
        )
    # Parameters and anything unrecognized render by repr: distinct from
    # every literal, so an unbound template can never collide with bound
    # data -- it simply never hits.
    return repr(expr)


@dataclass(frozen=True)
class StageSpec:
    """One publishable/consumable stage: a scan, optionally agg-inclusive."""

    scan: ScanNode
    agg: AggregateNode | None = None


def stage_specs(plan: PlanNode) -> "dict[str, StageSpec]":
    """The reusable stages of a logical plan, keyed by scan binding.

    Mirrors the physical planner's stage formation: a split aggregation
    directly over a scan ships partial-aggregate records (one agg-inclusive
    stage); any other scan ships its filtered/projected rows.
    """
    specs: dict[str, StageSpec] = {}

    def walk(node: PlanNode) -> None:
        if (
            isinstance(node, AggregateNode)
            and node.split is not None
            and isinstance(node.child, ScanNode)
        ):
            specs[node.child.binding] = StageSpec(node.child, node)
            return
        if isinstance(node, ScanNode):
            specs[node.binding] = StageSpec(node)
            return
        for child in node.children():
            walk(child)

    walk(plan)
    return specs


def stage_fields(schema, scan: ScanNode) -> tuple[str, ...]:
    """The stage's output columns in schema order (the payload row layout)."""
    names = tuple(schema.field_names)
    if scan.needed_columns is None:
        return names
    keep = set(scan.needed_columns) & set(names)
    if keep >= set(names):
        return names
    return tuple(n for n in names if n in keep)


def stage_hash(catalog, spec: StageSpec) -> str | None:
    """Canonical content hash of one stage's pushed-down subtree.

    Returns ``None`` for stages that are not artifact-eligible: text-index
    scans (their answers depend on the index, not the digested predicates)
    and names that resolve to views rather than base tables.
    """
    scan = spec.scan
    if scan.text_filter is not None:
        return None
    entry = catalog.tables.get(scan.table)
    if entry is None:
        return None
    parts = [
        f"table={scan.table}",
        "fragments=" + ",".join(sorted(f.fragment_id for f in entry.fragments)),
        "pushdown="
        + ";".join(
            sorted(f"{p.column} {p.op} {p.value!r}" for p in scan.pushdown)
        ),
        "filters="
        + ";".join(
            sorted(canonical_expr(c, scan.binding) for c in scan.site_filters)
        ),
        "columns=" + ",".join(stage_fields(entry.schema, scan)),
    ]
    governance = getattr(scan, "governance", None)
    if governance is not None and (governance.rls_residual or governance.masks):
        # Governed stages capture post-RLS, post-mask rows, so the policy
        # work that shaped the payload is part of the stage identity.
        # Pushed RLS conjuncts already flow through ``pushdown=`` above;
        # the residual expressions and masks are added here.  The tenant
        # *name* is deliberately excluded: two tenants with byte-identical
        # policies produce byte-identical payloads and may share, while any
        # difference in predicates or masks changes the digest -- tenants
        # with different RLS can never collide on one artifact.
        parts.append(
            "rls="
            + ";".join(
                sorted(
                    canonical_expr(c, scan.binding)
                    for c in governance.rls_residual
                )
            )
        )
        parts.append(
            "masks="
            + ";".join(
                f"{column}:{style}"
                for column, style in sorted(governance.masks.items())
            )
        )
    if spec.agg is not None:
        parts.append(
            "group="
            + ";".join(
                canonical_expr(g, spec.scan.binding) for g in spec.agg.group_by
            )
        )
        parts.append(
            "aggs="
            + ";".join(
                sorted(
                    canonical_expr(c, spec.scan.binding)
                    for c in spec.agg.split.calls
                )
            )
        )
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


# -- canonical payloads --------------------------------------------------------


@dataclass(frozen=True)
class CanonicalGroup:
    """One partial-aggregate group in binding-agnostic form."""

    key: tuple
    count: int
    states: "dict[str, object]"  # canonical call string -> partial state
    representative: "dict[str, object]"  # bare field name -> value


@dataclass
class StagePayload:
    """A stage's materialized output, stored binding-agnostically.

    ``kind`` is ``"rows"`` (filtered/projected scan output: value tuples in
    ``fields`` order) or ``"groups"`` (partial-aggregate records).  Serving
    rebuilds the consumer-shaped form -- qualified env keys, ``repr(call)``
    state keys -- from this canonical one, so the payload is reusable under
    any alias or ambiguity set.
    """

    kind: str  # "rows" | "groups"
    fields: tuple[str, ...] = ()
    rows: list[tuple] = field(default_factory=list)
    groups: list[CanonicalGroup] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        return len(self.rows) if self.kind == "rows" else len(self.groups)


def rows_payload(
    envs: "list[Env]", binding: str, fields: tuple[str, ...]
) -> StagePayload:
    """Canonicalize a rows stage's output envs into a payload."""
    rows = [tuple(env[f"{binding}.{name}"] for name in fields) for env in envs]
    return StagePayload(kind="rows", fields=fields, rows=rows)


def groups_payload(records, binding: str, calls) -> StagePayload:
    """Canonicalize a partial-aggregate stage's records into a payload."""
    canonical_by_repr = {repr(call): canonical_expr(call, binding) for call in calls}
    groups = []
    for record in records:
        states = {
            canonical_by_repr[key]: state for key, state in record.states.items()
        }
        representative: dict[str, object] = {}
        for key, value in record.representative.items():
            if "." in key:
                qualifier, bare = key.split(".", 1)
                if qualifier == binding:
                    representative[bare] = value
            else:
                representative.setdefault(key, value)
        groups.append(
            CanonicalGroup(
                key=tuple(record.key),
                count=record.count,
                states=states,
                representative=representative,
            )
        )
    return StagePayload(kind="groups", groups=groups)


# -- the stored artifact -------------------------------------------------------


@dataclass
class Artifact:
    """One committed (or in-flight) stage output."""

    key: "tuple[str, int]"  # (stage hash, catalog version)
    table_name: str
    payload: StagePayload
    rows_saved: int  # site rows the producing stage executed
    bytes_saved: int  # wire bytes the producing stage shipped
    fetch_seconds: float  # stage pipeline seconds a hit avoids
    fetched_at: float  # simulated time the producing stage ran
    hits: int = 0

    @property
    def row_count(self) -> int:
        return self.payload.row_count

    def benefit(self) -> float:
        """What evicting this artifact throws away (semantic-cache economy)."""
        return self.rows_saved * self.fetch_seconds

    # -- consumer-shaped serving (see StagePayload) ------------------------

    def serve_rows(self, binding: str, ambiguous: "set[str]") -> "list[Env] | None":
        """Rebuild the stage's envs for a rows consumer, or None on kind
        mismatch (a hash collision guard, not an expected path)."""
        if self.payload.kind != "rows":
            return None
        envs = []
        for values in self.payload.rows:
            env: Env = {}
            for name, value in zip(self.payload.fields, values):
                env[f"{binding}.{name}"] = value
                if name not in ambiguous:
                    env[name] = value
            envs.append(env)
        return envs

    def serve_groups(self, binding: str, ambiguous: "set[str]", calls):
        """Rebuild fresh PartialGroup records for an aggregate consumer.

        Records are rebuilt per serve (the coordinator's final merge
        mutates its copies) and states are re-keyed from canonical call
        strings to the consumer's ``repr(call)`` keys.
        """
        from repro.federation.physical import PartialGroup

        if self.payload.kind != "groups":
            return None
        records = []
        for group in self.payload.groups:
            states = {}
            for call in calls:
                canonical = canonical_expr(call, binding)
                if canonical not in group.states:
                    return None
                states[repr(call)] = group.states[canonical]
            representative: Env = {}
            for name, value in group.representative.items():
                representative[f"{binding}.{name}"] = value
                if name not in ambiguous:
                    representative[name] = value
            records.append(
                PartialGroup(
                    key=group.key,
                    count=group.count,
                    states=states,
                    representative=representative,
                )
            )
        return records


@dataclass
class StageOutput:
    """One stage's output as captured by Ship into the ExecutionReport.

    The engine turns successful reports' stage outputs into in-flight
    registrations; a failed execution simply drops them, so nothing
    half-computed ever becomes visible.
    """

    key: "tuple[str, int]"
    table_name: str
    payload: StagePayload
    rows_saved: int
    bytes_saved: int
    fetch_seconds: float
    fetched_at: float


@dataclass
class _InFlightStage:
    """A registered stage whose producing query has not yet completed."""

    artifact: Artifact
    completes_at: float
    producer: object = None  # the producing QueryHandle, when dispatched via WLM
    subscribers: list = field(default_factory=list)  # joined QueryHandles


class ArtifactStore:
    """Benefit-admitted, write-invalidated store of stage artifacts.

    ``max_rows`` bounds the total materialized rows (admission refuses
    oversized stages; overflow evicts lowest benefit first, exactly the
    semantic cache's policy).  ``serve_seconds_per_row`` and
    ``price_per_second`` shape the bid an artifact makes in the optimizer
    market.  ``max_age_seconds`` is the store's own TTL (None = none);
    per-call staleness bounds always override it for serveability, the
    same contract the semantic cache honors.
    """

    def __init__(
        self,
        clock: SimClock,
        max_rows: int = 100_000,
        max_age_seconds: float | None = None,
        serve_seconds_per_row: float = 0.00002,
        price_per_second: float = 1.0,
        metrics=None,
    ) -> None:
        self.clock = clock
        self.max_rows = max_rows
        self.max_age_seconds = max_age_seconds
        self.serve_seconds_per_row = serve_seconds_per_row
        self.price_per_second = price_per_second
        self.metrics = metrics  # optional MetricsRegistry, attached by the engine
        self._artifacts: "dict[tuple[str, int], Artifact]" = {}
        self._inflight: "dict[tuple[str, int], _InFlightStage]" = {}
        self.hits = 0
        self.joins = 0
        self.misses = 0
        self.published = 0
        self.invalidations = 0
        self.evictions = 0
        self.rejected = 0
        self.aborts = 0
        self.fallbacks = 0

    # -- metrics -----------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _gauge_rows(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("artifacts.stored_rows").set(self.stored_rows())

    # -- freshness ---------------------------------------------------------

    def _servable(self, artifact: Artifact, max_staleness: float | None) -> bool:
        if max_staleness is not None and max_staleness < 0:
            return False  # LIVE_ONLY: no materialized path at all
        limit = (
            max_staleness if max_staleness is not None else self.max_age_seconds
        )
        if limit is None:
            return True
        return (self.clock.now() - artifact.fetched_at) <= limit

    def _sweep(self) -> None:
        """Commit in-flight stages whose producer's modeled completion has
        passed, and reclaim artifacts dead by the store's own TTL."""
        now = self.clock.now()
        for key, stage in list(self._inflight.items()):
            if stage.completes_at <= now:
                del self._inflight[key]
                self._admit(stage.artifact)
        if self.max_age_seconds is not None:
            for key, artifact in list(self._artifacts.items()):
                if (now - artifact.fetched_at) > self.max_age_seconds:
                    del self._artifacts[key]
                    self.evictions += 1
                    self._count("artifacts.evictions")
        self._gauge_rows()

    # -- keying ------------------------------------------------------------

    def stage_key(self, catalog, scan, agg=None) -> "tuple[str, int] | None":
        """The current artifact key for one stage, or None if ineligible."""
        digest = stage_hash(catalog, StageSpec(scan, agg))
        if digest is None:
            return None
        return (digest, catalog.version)

    # -- lookup paths ------------------------------------------------------

    def bid(
        self, key: "tuple[str, int]", max_staleness: float | None = None
    ) -> "tuple[Artifact, float, float] | None":
        """Plan-time offer: ``(artifact, price, age)`` for a *committed*
        artifact, or None.  Books no hit/miss accounting -- the serve-time
        paths do -- so planning does not double count."""
        self._sweep()
        artifact = self._artifacts.get(key)
        if artifact is None or not self._servable(artifact, max_staleness):
            return None
        seconds = artifact.row_count * self.serve_seconds_per_row
        age = self.clock.now() - artifact.fetched_at
        return artifact, seconds * self.price_per_second, age

    def has_twin(
        self, key: "tuple[str, int] | None", max_staleness: float | None = None
    ) -> bool:
        """Migration probe (DESIGN §5i): does a servable committed *or*
        in-flight twin of this stage exist?  Books no accounting -- the
        re-opt controller asks before soliciting sites, and a stage that
        can be served locally needs no market at all."""
        if key is None:
            return False
        self._sweep()
        artifact = self._artifacts.get(key)
        if artifact is not None and self._servable(artifact, max_staleness):
            return True
        stage = self._inflight.get(key)
        return stage is not None and self._servable(stage.artifact, max_staleness)

    def acquire(
        self, key: "tuple[str, int] | None", max_staleness: float | None = None
    ) -> "tuple[Artifact, float, bool] | None":
        """Runtime lookup: ``(artifact, wait_seconds, joined_in_flight)``.

        A committed artifact serves immediately (wait 0).  An in-flight
        stage serves its already-materialized payload but charges the
        remaining wait until the producer's modeled completion -- that is
        the stage *join*.  Books hit/join/miss accounting.
        """
        if key is None:
            return None
        self._sweep()
        now = self.clock.now()
        artifact = self._artifacts.get(key)
        if artifact is not None and self._servable(artifact, max_staleness):
            artifact.hits += 1
            self.hits += 1
            self._count("artifacts.hits")
            if self.metrics is not None:
                self.metrics.histogram("artifacts.hit_age_seconds").observe(
                    now - artifact.fetched_at
                )
            return artifact, 0.0, False
        stage = self._inflight.get(key)
        if stage is not None and self._servable(stage.artifact, max_staleness):
            self.joins += 1
            self._count("artifacts.joins")
            return stage.artifact, max(0.0, stage.completes_at - now), True
        self.misses += 1
        self._count("artifacts.misses")
        return None

    def note_plan_hit(self, artifact: Artifact) -> None:
        """Serve-time accounting for a plan-embedded artifact path."""
        artifact.hits += 1
        self.hits += 1
        self._count("artifacts.hits")
        if self.metrics is not None:
            self.metrics.histogram("artifacts.hit_age_seconds").observe(
                self.clock.now() - artifact.fetched_at
            )

    # -- publication lifecycle ---------------------------------------------

    def begin_stage(
        self,
        output: StageOutput,
        completes_at: float,
        producer=None,
    ) -> bool:
        """Register a completing stage's output as in flight.

        Concurrent queries may join it immediately; it commits to the
        artifact table (under admission) once ``completes_at`` passes.
        Returns False when the key is already present (first producer
        wins) or the payload exceeds the row budget outright.
        """
        self._sweep()
        key = output.key
        if key in self._artifacts or key in self._inflight:
            return False
        if output.payload.row_count > self.max_rows:
            self.rejected += 1
            self._count("artifacts.rejected")
            return False
        artifact = Artifact(
            key=key,
            table_name=output.table_name,
            payload=output.payload,
            rows_saved=output.rows_saved,
            bytes_saved=output.bytes_saved,
            fetch_seconds=output.fetch_seconds,
            fetched_at=output.fetched_at,
        )
        self._inflight[key] = _InFlightStage(
            artifact=artifact, completes_at=completes_at, producer=producer
        )
        return True

    def subscribe(self, key: "tuple[str, int]", subscriber) -> bool:
        """Record that ``subscriber`` joined the in-flight stage at ``key``."""
        stage = self._inflight.get(key)
        if stage is None:
            return False
        stage.subscribers.append(subscriber)
        return True

    def set_producer(self, key: "tuple[str, int]", producer) -> None:
        stage = self._inflight.get(key)
        if stage is not None:
            stage.producer = producer

    def abort_stages(self, keys) -> list:
        """Drop in-flight stages (their producer died); return subscribers.

        The caller (the workload manager) re-executes each returned
        subscriber independently -- the first-failure fallback.
        """
        subscribers: list = []
        for key in keys:
            stage = self._inflight.pop(key, None)
            if stage is None:
                continue
            self.aborts += 1
            self._count("artifacts.inflight_aborts")
            subscribers.extend(stage.subscribers)
        return subscribers

    def note_fallback(self) -> None:
        self.fallbacks += 1
        self._count("artifacts.fallbacks")

    def _admit(self, artifact: Artifact) -> None:
        """Commit one in-flight artifact under the benefit economy."""
        if artifact.row_count > self.max_rows:
            self.rejected += 1
            self._count("artifacts.rejected")
            return
        self._artifacts[artifact.key] = artifact
        self.published += 1
        self._count("artifacts.published")
        while self.stored_rows() > self.max_rows and self._artifacts:
            victim = min(
                self._artifacts,
                key=lambda k: (
                    self._artifacts[k].benefit(),
                    self._artifacts[k].fetched_at,
                ),
            )
            del self._artifacts[victim]
            self.evictions += 1
            self._count("artifacts.evictions")

    # -- invalidation ------------------------------------------------------

    def invalidate_table(self, table_name: str) -> int:
        """Drop all artifacts and in-flight stages of one base table.

        Subscribed queries keep the results they already joined (their
        answers reflect the pre-write snapshot they were dispatched
        against, the simulation's execute-at-dispatch semantics); the drop
        only prevents *new* reuse of the stale content.  The catalog
        version bump makes surviving keys unreachable regardless.
        """
        doomed = [
            k for k, a in self._artifacts.items() if a.table_name == table_name
        ]
        for key in doomed:
            del self._artifacts[key]
        doomed_inflight = [
            k
            for k, s in self._inflight.items()
            if s.artifact.table_name == table_name
        ]
        for key in doomed_inflight:
            del self._inflight[key]
        dropped = len(doomed) + len(doomed_inflight)
        self.invalidations += dropped
        self._count("artifacts.invalidations", dropped)
        self._gauge_rows()
        return dropped

    # -- introspection -----------------------------------------------------

    def stored_rows(self) -> int:
        return sum(a.row_count for a in self._artifacts.values())

    def inflight_keys(self) -> "list[tuple[str, int]]":
        return list(self._inflight)

    def __len__(self) -> int:
        return len(self._artifacts)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.joins + self.misses
        return (self.hits + self.joins) / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ArtifactStore(artifacts={len(self._artifacts)}, "
            f"inflight={len(self._inflight)}, hits={self.hits}, "
            f"joins={self.joins}, misses={self.misses})"
        )


def artifact_scan_assignment(store, catalog, spec, max_staleness):
    """Offer a committed artifact as a priced access path for one stage.

    Returns ``(ScanAssignment, price)`` or None.  The assignment embeds
    the artifact itself (plans are immutable; validity is re-checked at
    execution against the catalog version, like every prepared plan).
    """
    from repro.federation.physical import ScanAssignment

    if store is None or spec is None:
        return None
    key = store.stage_key(catalog, spec.scan, spec.agg)
    if key is None:
        return None
    offer = store.bid(key, max_staleness)
    if offer is None:
        return None
    artifact, price, age = offer
    assignment = ScanAssignment(
        spec.scan.binding,
        spec.scan.table,
        "artifact",
        artifact=artifact,
        artifact_age=age,
        est_bytes=0,
    )
    return assignment, price

"""Materialized views with refresh policies.

The paper's prescription (§3.2 C5): "suppose slowly changing data is defined
in a view, the view materialized at one or more sites, and then refreshed at
a user-specified interval ... slowly changing data is elegantly cached
closer to the location of the user" -- while volatile data is fetched on
demand.  Crucially, "federated systems do not distinguish logically between
views that transform data on demand, and materialized views that have been
pre-loaded"; in this reproduction the engine consults the catalog for a
fresh-enough view before scheduling a live scan, and falls through to
fetch-on-demand transparently otherwise (data independence).

A view's ``refresh_fn`` re-derives its contents from the live federation; a
view may be attached to an :class:`~repro.sim.events.EventLoop` to refresh
periodically, which is also exactly how the warehouse baseline's ETL jobs
run -- the difference the benchmarks measure is *policy*, not machinery.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import QueryError
from repro.core.records import Table
from repro.core.schema import Schema
from repro.sim.events import EventLoop, ScheduledEvent


class MaterializedView:
    """A named, periodically refreshed copy of (part of) a base table."""

    def __init__(
        self,
        name: str,
        base_table: str,
        schema: Schema,
        refresh_fn: "Callable[[], Table] | None",
        site_name: str,
        refresh_interval: float | None = None,
        covers_whole_table: bool = True,
    ) -> None:
        self.name = name
        self.base_table = base_table
        self.schema = schema
        self.refresh_fn = refresh_fn
        self.site_name = site_name
        self.refresh_interval = refresh_interval
        self.covers_whole_table = covers_whole_table
        self.data: Table | None = None
        self.as_of: float = float("-inf")
        self.refresh_count = 0
        self.refresh_failures = 0  # scheduled refreshes lost to dead sources
        self.refresh_cost_seconds = 0.0
        self.rows_served = 0  # rows produced by SiteScan reads of this view
        self._event: ScheduledEvent | None = None

    # -- refresh -----------------------------------------------------------

    def refresh(self, now: float, cost_seconds: float = 0.0) -> Table:
        """Re-materialize from the live base; records cost and timestamp."""
        if self.refresh_fn is None:
            raise QueryError(
                f"view {self.name!r} is engine-managed; refresh it via "
                "FederatedEngine.refresh_view"
            )
        self.data = self.refresh_fn()
        self.as_of = now
        self.refresh_count += 1
        self.refresh_cost_seconds += cost_seconds
        return self.data

    def attach_to(self, loop: EventLoop, cost_seconds: float = 0.0) -> None:
        """Refresh now, then every ``refresh_interval`` on the event loop."""
        if self.refresh_interval is None or self.refresh_interval <= 0:
            raise QueryError(
                f"view {self.name!r} has no positive refresh interval to schedule"
            )
        self.refresh(loop.clock.now(), cost_seconds)
        self._event = loop.schedule_every(
            self.refresh_interval,
            lambda: self.refresh(loop.clock.now(), cost_seconds),
            name=f"refresh:{self.name}",
        )

    def detach(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # -- freshness ---------------------------------------------------------------

    def staleness(self, now: float) -> float:
        """Seconds since the last refresh (inf if never refreshed)."""
        return now - self.as_of

    def is_fresh(self, max_staleness: float | None, now: float) -> bool:
        if self.data is None:
            return False
        if max_staleness is None:
            return True
        return self.staleness(now) <= max_staleness

    def __repr__(self) -> str:
        return (
            f"MaterializedView({self.name!r}, base={self.base_table!r}, "
            f"as_of={self.as_of!r})"
        )

"""The physical operator IR: where each piece of a query actually runs.

A :class:`PhysicalPlan` is the logical tree plus, per scan, the access path
the optimizer chose.  :class:`PhysicalPlanner` compiles it into a tree of
operators split across two placements:

* **Site-side operators** (:class:`SiteScan`, :class:`SiteFilter`,
  :class:`SiteProject`, :class:`PartialAggregate`) run at the site that
  owns the rows and charge *that* site's backlog.  They produce
  :class:`SiteBatch` objects -- per-site row batches that remember how much
  pipeline time they took -- so fragment scans still cost the slowest
  assignment, not the sum.
* An explicit :class:`Ship` operator moves each batch over the network
  model to the coordinator, accounting the transfer and the rows shipped.
* **Coordinator operators** (:class:`Filter`, :class:`Project`,
  :class:`HashJoin`, :class:`NestedLoopJoin`, :class:`Aggregate`,
  :class:`FinalAggregate`, :class:`Sort`, :class:`Limit`) are streaming
  ``open``/``next``/``close`` iterators charged to the coordinator site.

Every operator records rows in/out, seconds of modeled work and its
placement site in :class:`OperatorStats`; the engine renders the tree as
``EXPLAIN ANALYZE`` and feeds it to the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.connect.source import apply_predicates
from repro.core.errors import (
    PartialFailureError,
    QueryError,
    SourceUnavailableError,
)
from repro.core.records import Table
from repro.core.schema import DataType, Field, Schema
from repro.core.values import Money
from repro.federation import columnar
from repro.federation.catalog import FederationCatalog, Fragment
from repro.federation.governance import apply_masks as apply_column_masks
from repro.federation.health import RetryPolicy, SiteHealthTracker
from repro.federation.views import MaterializedView
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    OrderItem,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.sql.expressions import evaluate
from repro.sql.planner import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    conjoin,
    scans_in,
)

Env = dict[str, Any]


# -- the optimizer's output ---------------------------------------------------


@dataclass
class FragmentChoice:
    """One fragment scan placed on one site."""

    fragment: Fragment
    site_name: str


@dataclass
class ScanAssignment:
    """The optimizer's decision for one scan leaf."""

    binding: str
    table_name: str
    kind: str  # "fragments" | "view" | "cache" | "artifact"
    choices: list[FragmentChoice] = field(default_factory=list)
    view: MaterializedView | None = None
    text_filter: tuple[str, str] | None = None  # (column, query) -> use text index
    cached_table: "Table | None" = None  # for kind "cache"
    cached_staleness: float = 0.0
    cached_region: "frozenset | None" = None  # the predicate region served
    # For kind "artifact": the committed stage artifact the plan embeds
    # (validity re-checked against the catalog version at execution time).
    artifact: "Any | None" = None
    artifact_age: float = 0.0  # age in seconds at plan time (EXPLAIN)
    # Zone-map partition elimination accounting for kind "fragments":
    # of ``total_fragments`` in the catalog, ``pruned_fragments`` were
    # proven empty under the scan's predicates and get no choice at all.
    pruned_fragments: int = 0
    total_fragments: int = 0
    # Optimizer's estimate of encoded wire bytes this scan ships to the
    # coordinator (0 for coordinator-local paths such as cache scans).
    est_bytes: int = 0
    # Fragments that had no live replica at *plan* time.  The optimizers
    # record them instead of refusing to plan: the executor retries them
    # (the site may have repaired) and otherwise applies the query's
    # degraded-answer policy -- availability is an execution-time property.
    unreachable: list[Fragment] = field(default_factory=list)


@dataclass
class PhysicalPlan:
    """A logical plan plus all physical decisions."""

    logical: PlanNode
    assignments: dict[str, ScanAssignment]
    coordinator: str
    optimizer: str = ""
    # *Modeled* planning seconds (bid round trips, statistics collection,
    # enumeration work) -- this is what gets charged to the simulation
    # clock, so identical seeded runs stay byte-identical (DESIGN §7).
    optimization_seconds: float = 0.0
    # Real host wall-clock the optimizer burned deciding.  Reported for
    # profiling but never folded into simulated time.
    planner_wall_seconds: float = 0.0
    sites_contacted: int = 0
    total_price: float = 0.0
    # The compiled operator tree.  Optimizers attach one for inspection;
    # the executor recompiles at execution time (annotations such as the
    # cache swap may change between optimization and execution).
    root: "PhysicalOperator | None" = None


@dataclass
class OperatorStats:
    """Per-operator accounting surfaced by EXPLAIN ANALYZE."""

    name: str
    site: str = ""
    rows_in: int = 0
    rows_out: int = 0
    seconds: float = 0.0
    detail: str = ""
    children: list["OperatorStats"] = field(default_factory=list)
    # Columnar data-plane accounting (zero for pure row-path operators).
    batches: int = 0  # column batches this operator processed
    encoded_bytes: int = 0  # wire bytes after column encoding (Ship only)
    raw_bytes: int = 0  # wire bytes under naive row serialization
    encode_seconds: float = 0.0  # modeled serialization work (producer sites)
    decode_seconds: float = 0.0  # modeled deserialization work (coordinator)

    def tree_lines(self, depth: int = 0) -> list[str]:
        parts = [f"{'  ' * depth}{self.name}"]
        if self.site:
            parts.append(f"@ {self.site}")
        parts.append(f"rows_in={self.rows_in} rows_out={self.rows_out}")
        parts.append(f"seconds={self.seconds:.6f}")
        if self.batches:
            parts.append(f"batches={self.batches}")
        if self.raw_bytes:
            ratio = (
                self.raw_bytes / self.encoded_bytes if self.encoded_bytes else 0.0
            )
            parts.append(
                f"bytes={self.encoded_bytes}/{self.raw_bytes} ({ratio:.2f}x)"
            )
        if self.encode_seconds or self.decode_seconds:
            parts.append(
                f"encode={self.encode_seconds:.6f} decode={self.decode_seconds:.6f}"
            )
        if self.detail:
            parts.append(self.detail)
        lines = ["  ".join(parts)]
        for child in self.children:
            lines.extend(child.tree_lines(depth + 1))
        return lines

    def walk(self) -> Iterator["OperatorStats"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class ScanCapture:
    """One live fragment scan's output, kept for the semantic cache.

    ``fetched_at`` is the simulated clock at the moment the sources were
    read -- the engine stamps cache entries with it so staleness is measured
    from the fetch, not from whenever the store happens to run.
    ``fetch_seconds`` is the site work the scan cost, i.e. what a future
    cache hit saves (the benefit term in admission/eviction).
    """

    table: Table
    fetched_at: float
    fetch_seconds: float = 0.0


@dataclass
class ExecutionReport:
    """Accounting for one executed query."""

    response_seconds: float = 0.0
    rows_fetched: int = 0  # rows produced by scans (after source pushdown)
    rows_shipped: int = 0  # rows that crossed the network to the coordinator
    bytes_shipped: int = 0  # encoded wire bytes behind those shipped rows
    rows_returned: int = 0
    staleness_seconds: float = 0.0
    network_seconds: float = 0.0
    site_work: dict[str, float] = field(default_factory=dict)
    price: float = 0.0
    failovers: int = 0  # scans successfully re-routed after a site died mid-query
    failover_attempts: int = 0  # re-route attempts, successful or not
    retry_seconds: float = 0.0  # modeled backoff latency charged for retries
    # Graceful degradation: the fraction of the query's input rows that was
    # reachable (1.0 = complete answer), with the fragments left behind.
    completeness: float = 1.0
    degraded: bool = False
    unreachable_fragments: list[str] = field(default_factory=list)
    dead_sites: list[str] = field(default_factory=list)
    # Host wall-clock the planner spent (kept out of response_seconds so
    # simulated time stays deterministic -- DESIGN §7).
    planner_wall_seconds: float = 0.0
    # Zone-map partition elimination: fragments skipped / considered.
    fragments_pruned: int = 0
    fragments_total: int = 0
    # Multi-tenant workload management (stamped by the WorkloadManager when
    # the query went through submit(): how long it queued before dispatch,
    # which tenant owned it, and which scheduling discipline dispatched it).
    queue_wait_seconds: float = 0.0
    tenant: str | None = None
    scheduler: str | None = None
    # Governance enforcement (stamped by the engine when the plan carried
    # compiled policy annotations): which tenant's policy governed the plan
    # and how many rows site-side residual RLS predicates dropped.
    governed_tenant: str | None = None
    rows_filtered_by_rls: int = 0
    # Live fragment-scan outputs, for the engine's semantic cache to store.
    scan_tables: dict[str, ScanCapture] = field(default_factory=dict)
    # Stage-artifact reuse accounting (see repro.federation.artifacts):
    # hits served from committed artifacts, joins onto in-flight stages,
    # the site rows / wire bytes those reuses avoided, the joined stage
    # keys (for the workload manager's subscription protocol), captured
    # stage outputs awaiting publication, and the keys the engine actually
    # registered in flight.
    artifact_hits: int = 0
    artifact_joins: int = 0
    artifact_rows_saved: int = 0
    artifact_bytes_saved: int = 0
    artifact_join_keys: list = field(default_factory=list)
    stage_outputs: list = field(default_factory=list)
    artifact_published_keys: list = field(default_factory=list)
    # Adaptive mid-query re-optimization (repro.federation.reopt): stages
    # re-quoted, stages actually migrated, the modeled seconds spent on
    # re-quotes that did *not* migrate (plus any superseded partial
    # execution the workload manager discarded), and the event trail.
    reoptimizations: int = 0
    migrated_stages: int = 0
    reopt_wasted_seconds: float = 0.0
    reopt_events: list = field(default_factory=list)
    # Per-stage runtime: binding -> (modeled arrival seconds, sites the
    # stage touched).  The workload manager projects which stages are
    # still pending at a disturbance from these.
    stage_runtimes: dict[str, tuple[float, tuple[str, ...]]] = field(
        default_factory=dict
    )
    operators: OperatorStats | None = None  # per-operator stats tree


# -- execution context ---------------------------------------------------------


def schema_of(catalog: FederationCatalog, assignment: ScanAssignment) -> Schema:
    if assignment.kind == "view":
        assert assignment.view is not None
        return assignment.view.schema
    return catalog.entry(assignment.table_name).schema


def ambiguous_fields(catalog: FederationCatalog, plan: PhysicalPlan) -> set[str]:
    """Field names appearing in more than one scan's schema."""
    seen: set[str] = set()
    ambiguous: set[str] = set()
    for assignment in plan.assignments.values():
        for name in schema_of(catalog, assignment).field_names:
            if name in seen:
                ambiguous.add(name)
            seen.add(name)
    return ambiguous


def row_env(
    binding: str, schema: Schema, values: tuple, ambiguous: set[str]
) -> Env:
    env: Env = {}
    for field_def, value in zip(schema.fields, values):
        env[f"{binding}.{field_def.name}"] = value
        if field_def.name not in ambiguous:
            env[field_def.name] = value
    return env


class ExecContext:
    """Shared state for one execution of a physical plan."""

    def __init__(
        self,
        catalog: FederationCatalog,
        plan: PhysicalPlan,
        report: ExecutionReport,
        health: "SiteHealthTracker | None" = None,
        retry: RetryPolicy | None = None,
        degraded_ok: bool = False,
        cache=None,
        max_staleness: float | None = None,
        columnar: bool = True,
        artifacts=None,
        reuse_artifacts: bool = True,
        reopt=None,
    ) -> None:
        self.catalog = catalog
        self.plan = plan
        self.report = report
        # Batch-at-a-time columnar execution on the site side.  False runs
        # the legacy row-at-a-time path; results are identical either way
        # (the property tests in tests/test_columnar_execution.py hold the
        # two engines row-for-row equal).
        self.columnar = columnar
        self.coordinator = plan.coordinator
        self.scan_elapsed = 0.0  # slowest leaf pipeline (scans run in parallel)
        self.coordinator_seconds = 0.0  # serial coordinator work
        self.ambiguous = ambiguous_fields(catalog, plan)
        # Fault-tolerance state shared by every scan in this execution.
        self.health = health  # per-site outcome memory (may be None)
        self.retry = retry or RetryPolicy()
        self.degraded_ok = degraded_ok
        self.cache = cache  # last-resort covering regions for dead fragments
        # The stage-artifact store (repro.federation.artifacts), and whether
        # this execution may *consume* it.  The workload manager's fallback
        # re-execution sets reuse_artifacts=False so a query whose joined
        # producer died recomputes independently (and publishes nothing).
        self.artifacts = artifacts
        self.reuse_artifacts = reuse_artifacts
        # Adaptive re-optimization controller (repro.federation.reopt), or
        # None for frozen-plan execution.  Ship consults it per stage.
        self.reopt = reopt
        # The query's staleness bound, honored by the covering fallback too:
        # a LIVE_ONLY query must fail rather than silently serve stale data.
        self.max_staleness = max_staleness
        self.retries_used = 0  # failover attempts spent against retry.budget
        self.scan_total_rows = 0  # estimated input rows across all scans
        self.unreachable_rows = 0  # estimated rows behind dead fragments
        self.unreachable_fragments: list[str] = []
        self.dead_sites: set[str] = set()
        # Null-extension rows for outer joins: one all-None env per binding.
        self.null_envs: dict[str, Env] = {}
        for binding, assignment in plan.assignments.items():
            schema = schema_of(catalog, assignment)
            self.null_envs[binding] = row_env(
                binding, schema, (None,) * len(schema), self.ambiguous
            )

    def charge_site(self, site_name: str, rows: int) -> float:
        """Enqueue per-row work on a site's backlog; returns work seconds."""
        work = self.catalog.site(site_name).process(rows)
        self.report.site_work[site_name] = (
            self.report.site_work.get(site_name, 0.0) + work
        )
        return work

    def charge_coordinator(self, rows: int) -> float:
        work = self.charge_site(self.coordinator, rows)
        self.coordinator_seconds += work
        return work

    def charge_site_seconds(self, site_name: str, seconds: float) -> float:
        """Enqueue a fixed amount of work (e.g. encode time) on a site."""
        if seconds <= 0.0:
            return 0.0
        self.catalog.site(site_name).enqueue(seconds)
        self.report.site_work[site_name] = (
            self.report.site_work.get(site_name, 0.0) + seconds
        )
        return seconds

    def charge_coordinator_seconds(self, seconds: float) -> float:
        work = self.charge_site_seconds(self.coordinator, seconds)
        self.coordinator_seconds += work
        return work


# -- operator base classes -----------------------------------------------------


class PhysicalOperator:
    """Base coordinator operator: open(ctx) / next() / close() iteration."""

    name = "Operator"

    def __init__(self, *children: "PhysicalOperator") -> None:
        self.children = [child for child in children if child is not None]
        self.stats = OperatorStats(self.name)

    def open(self, ctx: ExecContext) -> None:
        self.stats = OperatorStats(self.name, site=ctx.coordinator)
        self._ctx = ctx
        self._closed = False
        for child in self.children:
            child.open(ctx)
        self._rows = self._produce(ctx)

    def next(self) -> Any:
        row = next(self._rows, None)
        if row is not None:
            self.stats.rows_out += 1
        return row

    def close(self) -> None:
        if getattr(self, "_closed", True):
            return
        self._closed = True
        self._finish(self._ctx)
        for child in self.children:
            child.close()

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        return iter(())

    def _finish(self, ctx: ExecContext) -> None:
        """Settle accounting once, when the operator closes."""

    def output_names(self) -> list[str] | None:
        """Column names this operator produces (None: derive from env keys)."""
        return None

    def stats_tree(self) -> OperatorStats:
        self.stats.children = [child.stats_tree() for child in self.children]
        return self.stats


@dataclass
class SiteBatch:
    """Rows produced at one site, with the pipeline time spent producing them.

    Under columnar execution ``chunks`` carries the same rows as a list of
    fixed-size :class:`~repro.federation.columnar.ColumnBatch` slices and
    ``rows`` stays empty until the Ship boundary re-materializes envs;
    ``chunks is None`` means the batch is row-form (legacy path, or record
    payloads such as partial-aggregate groups).
    """

    site: str
    rows: list
    elapsed: float  # queue delay + site-side work along this batch's pipeline
    chunks: "list[columnar.ColumnBatch] | None" = None

    def row_count(self) -> int:
        if self.chunks is not None:
            return sum(chunk.count for chunk in self.chunks)
        return len(self.rows)


class SiteOperator(PhysicalOperator):
    """An operator that runs where the data lives, producing per-site batches."""

    def open(self, ctx: ExecContext) -> None:
        self.stats = OperatorStats(self.name)
        self._ctx = ctx
        self._closed = False
        for child in self.children:
            child.open(ctx)
        self._batches = self._compute(ctx)
        sites = sorted({batch.site for batch in self._batches})
        self.stats.site = ",".join(sites) if sites else ctx.coordinator
        self.stats.rows_out = sum(batch.row_count() for batch in self._batches)
        self.stats.batches += sum(
            len(batch.chunks) for batch in self._batches if batch.chunks is not None
        )

    def batches(self) -> list[SiteBatch]:
        return self._batches

    def next(self) -> Any:
        raise QueryError(
            f"{self.name} produces site batches; wrap it in a Ship operator"
        )

    def close(self) -> None:
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for child in self.children:
            child.close()

    def _compute(self, ctx: ExecContext) -> list[SiteBatch]:
        raise NotImplementedError


# -- site-side operators -------------------------------------------------------


class SiteScan(SiteOperator):
    """Materialize one scan's access path at the sites that own the rows."""

    name = "SiteScan"

    def __init__(self, scan: ScanNode) -> None:
        super().__init__()
        self.scan = scan
        self._failover_events: list[str] = []
        self._capture_ok = True

    def _compute(self, ctx: ExecContext) -> list[SiteBatch]:
        assignment = ctx.plan.assignments.get(self.scan.binding)
        if assignment is None:
            raise QueryError(f"no assignment for scan {self.scan.binding!r}")
        predicates = self.scan.pushdown
        now = ctx.catalog.clock.now()
        self._failover_events = []
        # A scan that failed over to a covering view/cache region, or that
        # lost fragments to dead sites, must not feed the semantic cache:
        # its output is stale or incomplete for the predicate region.
        self._capture_ok = True

        if assignment.kind == "view":
            table_batches = self._view_batches(ctx, assignment, predicates)
            ctx.report.staleness_seconds = max(
                ctx.report.staleness_seconds, assignment.view.staleness(now)
            )
        elif assignment.kind == "fragments":
            table_batches = self._fragment_batches(ctx, assignment, predicates)
        elif assignment.kind == "cache":
            table_batches = self._cache_batches(ctx, assignment)
        else:
            raise QueryError(f"unknown scan kind {assignment.kind!r}")

        if assignment.text_filter is not None:
            table_batches = self._apply_text_filter(ctx, assignment, table_batches)
        elif assignment.kind == "fragments":
            # Expose the live result so the engine's semantic cache can
            # remember this predicate region (text-filtered scans are not
            # cacheable under the pushdown key alone).  The capture carries
            # the fetch timestamp and the site work it cost: staleness is
            # measured from the fetch, benefit from the work saved.  Pruned
            # fragments contribute no rows by construction (their zone maps
            # prove them empty under the pushdown), so the capture still
            # answers the full predicate region -- including a *fully*
            # pruned scan, whose provably empty table is as complete an
            # answer as any.  Failover fallbacks and degraded scans are
            # excluded (_capture_ok): their output is stale or partial.
            if self._capture_ok:
                if table_batches:
                    combined = table_batches[0][1]
                    for _, extra, _ in table_batches[1:]:
                        combined = combined.union_all(extra)
                else:
                    combined = Table(
                        ctx.catalog.entry(assignment.table_name).schema, []
                    )
                ctx.report.scan_tables[assignment.binding] = ScanCapture(
                    combined, now, self.stats.seconds
                )

        # Governance enforcement happens *after* the capture: cached regions
        # keep raw rows under their predicate key (every consumer scan
        # re-applies its own residual RLS and masks right here, so rows a
        # policy hides still never leave the site pipeline), and *before*
        # the columnar transpose so masked values flow through the same
        # kernels as any other column.
        table_batches = self._apply_governance(ctx, table_batches)

        ctx.report.rows_fetched += sum(len(t) for _, t, _ in table_batches)
        self.stats.detail = self._describe(assignment)
        binding = assignment.binding
        if ctx.columnar:
            # Transpose each site's table into fixed-size column batches;
            # per-row env dicts are only rebuilt at the Ship boundary.
            return [
                SiteBatch(
                    site,
                    [],
                    elapsed,
                    chunks=columnar.table_chunks(binding, table, ctx.ambiguous),
                )
                for site, table, elapsed in table_batches
            ]
        return [
            SiteBatch(
                site,
                [
                    row_env(binding, table.schema, values, ctx.ambiguous)
                    for values in table.rows
                ],
                elapsed,
            )
            for site, table, elapsed in table_batches
        ]

    # each access path returns [(site_name, table, elapsed_seconds)]

    def _fragment_batches(
        self, ctx: ExecContext, assignment: ScanAssignment, predicates
    ) -> list[tuple[str, Table, float]]:
        choices = list(assignment.choices)
        lost: list[FragmentChoice] = []
        # Fragments with no live replica at plan time are retried now -- the
        # site may have repaired between optimization and execution.
        for fragment in assignment.unreachable:
            preferred = self._preferred_replica(ctx, fragment)
            if preferred is None:
                lost.append(FragmentChoice(fragment, ""))
            else:
                choices.append(FragmentChoice(fragment, preferred))
        if not choices and not lost:
            if (
                assignment.total_fragments > 0
                and assignment.pruned_fragments >= assignment.total_fragments
            ):
                # Every fragment was eliminated by its zone map: the scan is
                # provably empty, no site does any work.
                return []
            raise QueryError(
                f"scan of {assignment.table_name!r} has no fragment choices"
            )
        ctx.scan_total_rows += sum(
            c.fragment.estimated_rows for c in choices + lost
        )
        batches = []
        for choice in choices:
            outcome = self._scan_with_failover(ctx, choice, predicates)
            if outcome is None:
                lost.append(choice)
                continue
            result, work, delay, site_name = outcome
            ctx.report.site_work[site_name] = (
                ctx.report.site_work.get(site_name, 0.0) + work
            )
            self.stats.seconds += work
            batches.append((site_name, result.table, delay + work))
        if lost:
            self._capture_ok = False
            fallback = self._covering_fallback(ctx, assignment, predicates)
            if fallback is not None:
                return fallback
            self._register_unreachable(ctx, lost)
        return batches

    def _preferred_replica(self, ctx: ExecContext, fragment: Fragment) -> str | None:
        """Best replica to (re)try for a fragment the planner gave up on."""
        replicas = fragment.replica_sites()
        if not replicas:
            return None
        live = [name for name in replicas if ctx.catalog.site(name).up]
        candidates = live or replicas
        if ctx.health is not None:
            return ctx.health.prefer(candidates)[0]
        return candidates[0]

    def _scan_with_failover(self, ctx: ExecContext, choice, predicates):
        """Run one fragment scan, rerouting to live replicas if the chosen
        site died after optimization (§3.2 C8's robustness under "issues
        that lie outside the control of the query system").

        Each re-route charges a modeled exponential-backoff pause to the
        batch's pipeline time and spends one unit of the query's retry
        budget.  Returns ``(result, work, delay, site_name)``, or ``None``
        when every candidate failed (the fragment is unreachable); with
        failover disabled the primary's :class:`SourceUnavailableError`
        propagates as it did before the failover layer existed.
        """
        fragment = choice.fragment
        fragment_name = f"{fragment.table_name}/{fragment.fragment_id}"
        retry = ctx.retry
        if not retry.enabled:
            site = ctx.catalog.site(choice.site_name)
            try:
                result, work, delay = site.execute_scan(
                    fragment.replicas[choice.site_name], predicates
                )
            except SourceUnavailableError as error:
                if ctx.health is not None:
                    ctx.health.record_failure(choice.site_name)
                if error.fragment is None:
                    error.fragment = fragment_name
                raise
            if ctx.health is not None:
                ctx.health.record_success(choice.site_name)
            return result, work, delay, choice.site_name

        siblings = [
            name for name in fragment.replica_sites() if name != choice.site_name
        ]
        if ctx.health is not None:
            siblings = ctx.health.prefer(siblings)
        candidates = [choice.site_name] + siblings
        backoff_delay = 0.0
        last_error: Exception | None = None
        for index, site_name in enumerate(candidates):
            if index > 0:
                # A failover attempt: bounded by the per-query budget and
                # charged a backoff pause that escalates per attempt.
                if ctx.retries_used >= retry.budget:
                    break
                pause = retry.backoff_seconds(index - 1)
                ctx.retries_used += 1
                backoff_delay += pause
                ctx.report.failover_attempts += 1
                ctx.report.retry_seconds += pause
            site = ctx.catalog.site(site_name)
            if not site.up:
                if ctx.health is not None:
                    ctx.health.record_failure(site_name)
                last_error = SourceUnavailableError(
                    site_name, site=site_name, fragment=fragment_name
                )
                continue
            try:
                result, work, delay = site.execute_scan(
                    fragment.replicas[site_name], predicates
                )
            except SourceUnavailableError as error:
                if ctx.health is not None:
                    ctx.health.record_failure(site_name)
                if error.fragment is None:
                    error.fragment = fragment_name
                last_error = error
                continue
            if ctx.health is not None:
                ctx.health.record_success(site_name)
            if site_name != choice.site_name:
                ctx.report.failovers += 1
                self._failover_events.append(
                    f"failover {choice.site_name}→{site_name}, "
                    f"+{backoff_delay:.2f}s retry"
                )
            return result, work, delay + backoff_delay, site_name
        # Unreachable: the pauses were still spent waiting -- they bound the
        # scan phase's elapsed time even though no batch carries them.
        ctx.scan_elapsed = max(ctx.scan_elapsed, backoff_delay)
        return None

    def _covering_fallback(
        self, ctx: ExecContext, assignment: ScanAssignment, predicates
    ) -> list[tuple[str, Table, float]] | None:
        """Last resort for dead fragments: answer the *whole* scan from a
        covering copy -- a live whole-table materialized view, else a cache
        region covering the pushdown.  The answer is complete but possibly
        stale (within the query's own ``max_staleness`` bound -- a LIVE_ONLY
        query gets no fallback), so staleness is stamped and the result is
        never re-cached."""
        now = ctx.catalog.clock.now()
        view = ctx.catalog.view_for_table(assignment.table_name, ctx.max_staleness)
        if (
            view is not None
            and view.data is not None
            and ctx.catalog.site(view.site_name).up
        ):
            table = apply_predicates(view.data, predicates)
            work = ctx.charge_site(view.site_name, len(table))
            self.stats.seconds += work
            view.rows_served += len(table)
            ctx.report.staleness_seconds = max(
                ctx.report.staleness_seconds, view.staleness(now)
            )
            ctx.report.failovers += 1
            self._failover_events.append(
                f"failover → view {view.name}@{view.site_name}"
            )
            return [(view.site_name, table, work)]
        if ctx.cache is not None:
            found = ctx.cache.lookup_entry(
                assignment.table_name, list(predicates), ctx.max_staleness
            )
            if found is not None:
                table, age = found
                work = ctx.charge_site(ctx.coordinator, len(table))
                self.stats.seconds += work
                ctx.report.staleness_seconds = max(
                    ctx.report.staleness_seconds, age
                )
                ctx.report.failovers += 1
                self._failover_events.append("failover → cache region")
                return [(ctx.coordinator, table, work)]
        return None

    def _register_unreachable(
        self, ctx: ExecContext, lost: list[FragmentChoice]
    ) -> None:
        """Record dead fragments; degrade gracefully or fail structurally."""
        for choice in lost:
            fragment = choice.fragment
            name = f"{fragment.table_name}/{fragment.fragment_id}"
            if name not in ctx.unreachable_fragments:
                ctx.unreachable_fragments.append(name)
                ctx.unreachable_rows += fragment.estimated_rows
            for site_name in fragment.replica_sites():
                if not ctx.catalog.site(site_name).up:
                    ctx.dead_sites.add(site_name)
        if not ctx.degraded_ok:
            raise PartialFailureError(
                ctx.unreachable_fragments,
                sorted(ctx.dead_sites),
                retries_used=ctx.retries_used,
            )

    def _view_batches(
        self, ctx: ExecContext, assignment: ScanAssignment, predicates
    ) -> list[tuple[str, Table, float]]:
        view = assignment.view
        if view is None or view.data is None:
            raise QueryError(f"view scan for {assignment.table_name!r} has no data")
        ctx.scan_total_rows += len(view.data)
        if not ctx.catalog.site(view.site_name).up:
            # A view has exactly one host -- there is no replica to fail over
            # to.  Register the whole scan unreachable and apply the query's
            # degraded-answer policy.
            self._capture_ok = False
            name = f"view:{view.name}"
            if name not in ctx.unreachable_fragments:
                ctx.unreachable_fragments.append(name)
                ctx.unreachable_rows += len(view.data)
            ctx.dead_sites.add(view.site_name)
            if not ctx.degraded_ok:
                raise PartialFailureError(
                    ctx.unreachable_fragments,
                    sorted(ctx.dead_sites),
                    retries_used=ctx.retries_used,
                )
            return []
        table = apply_predicates(view.data, predicates)
        work = ctx.charge_site(view.site_name, len(table))
        self.stats.seconds += work
        view.rows_served += len(table)
        return [(view.site_name, table, work)]

    def _cache_batches(
        self, ctx: ExecContext, assignment: ScanAssignment
    ) -> list[tuple[str, Table, float]]:
        """Serve a scan from the engine's semantic cache (coordinator-local)."""
        table = assignment.cached_table
        if table is None:
            raise QueryError(
                f"cache scan for {assignment.table_name!r} has no cached rows"
            )
        ctx.scan_total_rows += len(table)
        work = ctx.charge_site(ctx.coordinator, len(table))
        self.stats.seconds += work
        ctx.report.staleness_seconds = max(
            ctx.report.staleness_seconds, assignment.cached_staleness
        )
        return [(ctx.coordinator, table, work)]

    def _apply_text_filter(
        self,
        ctx: ExecContext,
        assignment: ScanAssignment,
        table_batches: list[tuple[str, Table, float]],
    ) -> list[tuple[str, Table, float]]:
        entry = ctx.catalog.entry(assignment.table_name)
        if entry.text_index is None or entry.key_column is None:
            raise QueryError(
                f"MATCH on {assignment.table_name!r} but no text index is registered"
            )
        _, query = assignment.text_filter
        hits = {
            hit.doc_id
            for hit in entry.text_index.search(
                query, limit=entry.estimated_rows() or 1000
            )
        }
        filtered_batches = []
        for site, table, elapsed in table_batches:
            key_index = table.schema.index_of(entry.key_column)
            filtered = Table(table.schema, validate=False)
            filtered.rows = [row for row in table.rows if row[key_index] in hits]
            filtered_batches.append((site, filtered, elapsed))
        return filtered_batches

    def _apply_governance(
        self,
        ctx: ExecContext,
        table_batches: list[tuple[str, Table, float]],
    ) -> list[tuple[str, Table, float]]:
        """Residual RLS then column masks, per batch, as charged site work.

        Pushed RLS conjuncts already ran inside the access path (source
        pushdown / view / cache residual application); what remains here is
        the policy work the optimizers priced as ordinary row volume:
        row-wise evaluation of non-pushable RLS conjuncts on *raw* values,
        then masking at the scan's output.  New tables are built instead of
        mutating inputs -- the semantic-cache capture may hold the same
        Table object.
        """
        governance = self.scan.governance
        if governance is None:
            return table_batches
        residual = (
            conjoin(list(governance.rls_residual))
            if governance.rls_residual
            else None
        )
        out: list[tuple[str, Table, float]] = []
        for site, table, elapsed in table_batches:
            if residual is not None:
                kept = [
                    values
                    for values in table.rows
                    if evaluate(
                        residual,
                        row_env(
                            self.scan.binding, table.schema, values,
                            ctx.ambiguous,
                        ),
                    )
                ]
                ctx.report.rows_filtered_by_rls += len(table.rows) - len(kept)
                work = ctx.charge_site(site, len(table.rows))
                self.stats.seconds += work
                elapsed += work
                filtered = Table(table.schema, validate=False)
                filtered.rows = kept
                table = filtered
            if governance.masks:
                work = ctx.charge_site(site, len(table.rows))
                self.stats.seconds += work
                elapsed += work
                table = apply_column_masks(table, governance.masks)
            out.append((site, table, elapsed))
        return out

    def _describe(self, assignment: ScanAssignment) -> str:
        if assignment.kind == "view":
            detail = f"view {assignment.view.name} @ {assignment.view.site_name}"
        elif assignment.kind == "cache":
            detail = describe_cache_path(assignment)
        else:
            placed = ", ".join(
                f"{c.fragment.fragment_id}@{c.site_name}" for c in assignment.choices
            )
            detail = f"fragments [{placed}]{describe_pruning(assignment)}"
        governance = self.scan.governance
        pushdown = self.scan.pushdown
        if governance is not None and governance.rls_pushed:
            pushdown = [p for p in pushdown if p not in governance.rls_pushed]
        if pushdown:
            predicates = ", ".join(
                f"{p.column} {p.op} {p.value!r}" for p in pushdown
            )
            detail += f" pushdown({predicates})"
        if assignment.text_filter is not None:
            detail += f" text-index{assignment.text_filter!r}"
        if governance is not None:
            rls_parts = [
                f"{p.column} {p.op} {p.value!r}" for p in governance.rls_pushed
            ]
            rls_parts.extend(
                describe_expr(conjunct) for conjunct in governance.rls_residual
            )
            if rls_parts:
                detail += (
                    f" rls(tenant={governance.tenant}: {', '.join(rls_parts)})"
                )
            for column in sorted(governance.masks):
                detail += f" mask({column})"
        for event in self._failover_events:
            detail += f" [{event}]"
        return f"{self.scan.table} as {self.scan.binding}: {detail}"


class ArtifactSource(SiteOperator):
    """Serve one stage from a plan-embedded committed artifact.

    This is the compiled form of an optimizer-chosen ``"artifact"`` scan
    assignment: a coordinator-local pass over the materialized stage
    output -- no site work, no wire bytes.  Like every other decision
    embedded in a prepared plan, validity is re-checked against the live
    catalog at execution time; a version mismatch raises so the engine
    replans instead of serving pre-write rows.
    """

    name = "ArtifactSource"

    def __init__(self, scan: ScanNode, agg=None) -> None:
        super().__init__()
        self.scan = scan
        self.agg = agg

    def _compute(self, ctx: ExecContext) -> list[SiteBatch]:
        assignment = ctx.plan.assignments.get(self.scan.binding)
        artifact = assignment.artifact if assignment is not None else None
        if artifact is None:
            raise QueryError(
                f"artifact scan for {self.scan.binding!r} has no artifact"
            )
        if artifact.key[1] != ctx.catalog.version:
            raise QueryError(
                f"stale artifact plan for {self.scan.table!r} "
                f"(v{artifact.key[1]}, catalog v{ctx.catalog.version})"
            )
        age = ctx.catalog.clock.now() - artifact.fetched_at
        if ctx.max_staleness is not None and (
            ctx.max_staleness < 0 or age > ctx.max_staleness
        ):
            raise QueryError(
                f"artifact for {self.scan.table!r} too stale "
                f"({age:.1f}s > {ctx.max_staleness:.1f}s)"
            )
        if self.agg is not None:
            rows = artifact.serve_groups(
                self.scan.binding, ctx.ambiguous, self.agg.split.calls
            )
        else:
            rows = artifact.serve_rows(self.scan.binding, ctx.ambiguous)
        if rows is None:
            raise QueryError(
                f"artifact payload mismatch for {self.scan.binding!r}"
            )
        ctx.scan_total_rows += len(rows)
        work = ctx.charge_site(ctx.coordinator, len(rows))
        self.stats.seconds = work
        ctx.report.staleness_seconds = max(ctx.report.staleness_seconds, age)
        if ctx.artifacts is not None:
            ctx.artifacts.note_plan_hit(artifact)
        ctx.report.artifact_hits += 1
        ctx.report.artifact_rows_saved += artifact.rows_saved
        ctx.report.artifact_bytes_saved += artifact.bytes_saved
        self.stats.detail = (
            f"{self.scan.table} as {self.scan.binding}: "
            f"{describe_artifact_path(assignment)}"
        )
        return [SiteBatch(ctx.coordinator, rows, work)]


class SiteFilter(SiteOperator):
    """Evaluate residual single-binding conjuncts where the rows live."""

    name = "SiteFilter"

    def __init__(self, child: SiteOperator, condition: Expr) -> None:
        super().__init__(child)
        self.condition = condition

    def _compute(self, ctx: ExecContext) -> list[SiteBatch]:
        out = []
        kernel: "columnar.Kernel | None" = None
        kernel_compiled = False
        for batch in self.children[0].batches():
            self.stats.rows_in += batch.row_count()
            if batch.chunks is not None:
                if not kernel_compiled and batch.chunks:
                    # Compile once against the first chunk's layout; every
                    # chunk of the scan shares it.
                    kernel = columnar.compile_predicate(
                        self.condition, batch.chunks[0]
                    )
                    kernel_compiled = True
                kept_chunks = [
                    self._filter_chunk(chunk, kernel) for chunk in batch.chunks
                ]
                work = ctx.charge_site(batch.site, batch.row_count())
                self.stats.seconds += work
                out.append(
                    SiteBatch(batch.site, [], batch.elapsed + work, kept_chunks)
                )
                continue
            kept = [env for env in batch.rows if evaluate(self.condition, env)]
            work = ctx.charge_site(batch.site, len(batch.rows))
            self.stats.seconds += work
            out.append(SiteBatch(batch.site, kept, batch.elapsed + work))
        self.stats.detail = describe_expr(self.condition)
        return out

    def _filter_chunk(
        self, chunk: "columnar.ColumnBatch", kernel: "columnar.Kernel | None"
    ) -> "columnar.ColumnBatch":
        if kernel is not None:
            try:
                return chunk.take(kernel(chunk, list(range(chunk.count))))
            except columnar.KernelFallback:
                pass  # incomparable values: the row path raises the exact error
        selection = [
            i
            for i, env in enumerate(chunk.to_envs())
            if evaluate(self.condition, env)
        ]
        return chunk.take(selection)


class SiteProject(SiteOperator):
    """Strip unneeded columns before rows ship (projection pruning)."""

    name = "SiteProject"

    def __init__(self, child: SiteOperator, binding: str, keep: tuple[str, ...]) -> None:
        super().__init__(child)
        self.binding = binding
        self.keep = keep

    def _compute(self, ctx: ExecContext) -> list[SiteBatch]:
        allowed = set()
        for name in self.keep:
            allowed.add(f"{self.binding}.{name}")
            allowed.add(name)  # bare key exists only when unambiguous
        out = []
        for batch in self.children[0].batches():
            self.stats.rows_in += batch.row_count()
            if batch.chunks is not None:
                # Column-slice projection: kept columns are shared by
                # reference, dropped ones simply stop flowing.
                pruned_chunks = [chunk.project(allowed) for chunk in batch.chunks]
                work = ctx.charge_site(batch.site, batch.row_count())
                self.stats.seconds += work
                out.append(
                    SiteBatch(batch.site, [], batch.elapsed + work, pruned_chunks)
                )
                continue
            pruned = [
                {key: env[key] for key in env.keys() & allowed} for env in batch.rows
            ]
            work = ctx.charge_site(batch.site, len(batch.rows))
            self.stats.seconds += work
            out.append(SiteBatch(batch.site, pruned, batch.elapsed + work))
        self.stats.detail = f"keep({', '.join(self.keep)})"
        return out


@dataclass
class PartialGroup:
    """One group's partial aggregate state, computed at a site."""

    key: tuple
    count: int  # rows in the group (count(*), avg denominators)
    states: dict[str, Any]  # repr(aggregate call) -> partial state
    representative: Env  # first row seen, for non-aggregate expressions


def partial_state(call: FuncCall, envs: list[Env]) -> Any:
    """This site's partial state for one aggregate call over one group."""
    if call.star:
        if call.name != "count":
            raise QueryError(f"{call.name}(*) is not a valid aggregate")
        return len(envs)
    if len(call.args) != 1:
        raise QueryError(f"aggregate {call.name} takes exactly one argument")
    values = [evaluate(call.args[0], env) for env in envs]
    values = [v for v in values if v is not None]
    if call.name == "count":
        return len(values)
    if call.name == "avg":
        if not values:
            return (None, 0)
        total = values[0]
        for value in values[1:]:
            total = total + value
        return (total, len(values))
    if not values:
        return None
    if call.name == "sum":
        total = values[0]
        for value in values[1:]:
            total = total + value
        return total
    if call.name == "min":
        return min(values)
    if call.name == "max":
        return max(values)
    raise QueryError(f"unknown aggregate {call.name!r}")


def merge_state(call: FuncCall, a: Any, b: Any) -> Any:
    """Combine two sites' partial states for one aggregate call."""
    if call.star or call.name == "count":
        return a + b
    if call.name == "avg":
        (total_a, n_a), (total_b, n_b) = a, b
        if n_a == 0:
            return b
        if n_b == 0:
            return a
        return (total_a + total_b, n_a + n_b)
    if a is None:
        return b
    if b is None:
        return a
    if call.name == "sum":
        return a + b
    if call.name == "min":
        return min(a, b)
    if call.name == "max":
        return max(a, b)
    raise QueryError(f"unknown aggregate {call.name!r}")


def final_value(call: FuncCall, group: PartialGroup) -> Any:
    state = group.states[repr(call)]
    if call.star:
        return group.count
    if call.name == "avg":
        total, count = state
        return None if count == 0 else total / count
    return state  # count/sum/min/max carry their final value directly


class PartialAggregate(SiteOperator):
    """Aggregate each site's rows locally; ship one record per group."""

    name = "PartialAggregate"

    def __init__(self, child: SiteOperator, node: AggregateNode) -> None:
        super().__init__(child)
        self.node = node
        assert node.split is not None
        self.calls = node.split.calls

    def _compute(self, ctx: ExecContext) -> list[SiteBatch]:
        out = []
        for batch in self.children[0].batches():
            rows_in = batch.row_count()
            self.stats.rows_in += rows_in
            if batch.chunks is not None:
                records = self._columnar_records(batch.chunks)
                if records is None:
                    # Group keys or aggregate arguments are general
                    # expressions: materialize envs and take the row path.
                    records = self._row_records(
                        [env for chunk in batch.chunks for env in chunk.to_envs()]
                    )
            else:
                records = self._row_records(batch.rows)
            work = ctx.charge_site(batch.site, rows_in)
            self.stats.seconds += work
            out.append(SiteBatch(batch.site, records, batch.elapsed + work))
        self.stats.detail = ", ".join(describe_expr(c) for c in self.calls)
        return out

    def _row_records(self, envs: list[Env]) -> list[PartialGroup]:
        groups: dict[tuple, list[Env]] = {}
        if self.node.group_by:
            for env in envs:
                key = tuple(evaluate(g, env) for g in self.node.group_by)
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = list(envs)
        records = []
        for key, group_envs in groups.items():
            states = {
                repr(call): partial_state(call, group_envs)
                for call in self.calls
            }
            records.append(
                PartialGroup(
                    key,
                    len(group_envs),
                    states,
                    group_envs[0] if group_envs else {},
                )
            )
        return records

    def _columnar_records(
        self, chunks: "list[columnar.ColumnBatch]"
    ) -> list[PartialGroup] | None:
        """Tight-loop aggregation over column slices.

        Only plain-column group keys and single-column (or ``count(*)``)
        aggregates vectorize; anything else returns ``None`` and the caller
        falls back to the row path.  Partial states stream across chunks in
        row order, so float accumulation performs the exact same
        left-associated addition sequence as :func:`partial_state` and
        results stay bit-identical.
        """
        if not chunks:
            return None
        layout = chunks[0]
        key_indexes = []
        for group_expr in self.node.group_by:
            if not isinstance(group_expr, Column):
                return None
            idx = layout.index_of(group_expr.qualified)
            if idx is None:
                return None
            key_indexes.append(idx)
        specs: list[tuple[str, int | None]] = []
        for call in self.calls:
            if call.star:
                if call.name != "count":
                    return None
                specs.append(("count*", None))
                continue
            if len(call.args) != 1 or not isinstance(call.args[0], Column):
                return None
            if call.name not in ("count", "sum", "avg", "min", "max"):
                return None
            idx = layout.index_of(call.args[0].qualified)
            if idx is None:
                return None
            specs.append((call.name, idx))

        def fresh_states() -> list:
            return [
                0 if name == "count" else [None, 0] if name == "avg" else None
                for name, _ in specs
            ]

        # key -> [row count, representative env, mutable per-call states]
        groups: dict[tuple, list] = {}
        for chunk in chunks:
            cols = chunk.columns
            if key_indexes:
                key_cols = [cols[i] for i in key_indexes]
                local: dict[tuple, list[int]] = {}
                for i in range(chunk.count):
                    local.setdefault(
                        tuple(col[i] for col in key_cols), []
                    ).append(i)
            else:
                local = {(): list(range(chunk.count))}
            for key, indexes in local.items():
                acc = groups.get(key)
                if acc is None:
                    representative = chunk.env_at(indexes[0]) if indexes else {}
                    acc = groups[key] = [0, representative, fresh_states()]
                elif not acc[1] and indexes:
                    # The () group can be created by an empty chunk; adopt
                    # the first real row as representative, like the row
                    # path does.
                    acc[1] = chunk.env_at(indexes[0])
                acc[0] += len(indexes)
                states = acc[2]
                for s, (name, idx) in enumerate(specs):
                    if name == "count*":
                        continue  # the group count is the state
                    column = cols[idx]
                    values = [
                        v for i in indexes if (v := column[i]) is not None
                    ]
                    if name == "count":
                        states[s] += len(values)
                    elif name == "min":
                        if values:
                            low = min(values)
                            states[s] = (
                                low if states[s] is None else min(states[s], low)
                            )
                    elif name == "max":
                        if values:
                            high = max(values)
                            states[s] = (
                                high if states[s] is None else max(states[s], high)
                            )
                    elif name == "sum":
                        total = states[s]
                        for value in values:
                            total = value if total is None else total + value
                        states[s] = total
                    else:  # avg
                        total, seen = states[s]
                        for value in values:
                            total = value if total is None else total + value
                        states[s] = [total, seen + len(values)]

        records = []
        for key, (count, representative, states) in groups.items():
            final_states: dict[str, Any] = {}
            for call, (name, _), state in zip(self.calls, specs, states):
                if name == "count*":
                    final_states[repr(call)] = count
                elif name == "avg":
                    total, seen = state
                    final_states[repr(call)] = (
                        (None, 0) if seen == 0 else (total, seen)
                    )
                else:
                    final_states[repr(call)] = state
            records.append(PartialGroup(key, count, final_states, representative))
        return records


# -- the network boundary ------------------------------------------------------


def record_wire_bytes(record: Any) -> int:
    """Deterministic wire size of one row-form shipped record."""
    if isinstance(record, PartialGroup):
        total = 12  # group header: row count + state count + key arity
        for value in record.key:
            total += columnar.value_wire_bytes(value)
        for state in record.states.values():
            if isinstance(state, tuple):
                total += sum(columnar.value_wire_bytes(v) for v in state)
            else:
                total += columnar.value_wire_bytes(state)
        return total
    if isinstance(record, dict):
        return columnar.env_wire_bytes(record)
    return 8


class Ship(PhysicalOperator):
    """Move site batches to the coordinator over the network model.

    The slowest (pipeline + transfer) batch sets the parallel-scan phase's
    elapsed time; batches not already at the coordinator count as shipped,
    in rows *and* in encoded wire bytes.  Column batches are serialized
    per-column under the cheapest encoding (encode work charged to the
    producing site, decode work to the coordinator) and the network charges
    per encoded byte; coordinator-local batches are handed over by
    reference and never serialize.  This is also the row-compatibility
    boundary: whatever arrives is re-materialized into per-row envs for
    the coordinator operators.
    """

    name = "Ship"

    def __init__(self, child: "PhysicalOperator", stage=None) -> None:
        super().__init__(child)
        # ``(ScanNode, AggregateNode | None)`` when this Ship bounds a
        # content-hashable stage (the unit of artifact reuse); None for
        # plan-embedded artifact scans and non-stage shapes.
        self.stage = stage
        self._stage_key = None
        self._stage_rows_fetched = 0

    def open(self, ctx: ExecContext) -> None:
        self.stats = OperatorStats(self.name, site=ctx.coordinator)
        self._ctx = ctx
        self._closed = False
        served = self._artifact_rows(ctx)
        if served is not None:
            # The whole site-side pipeline is skipped: children are never
            # opened (their close() guards make that safe) and no site does
            # any scan work for this stage.
            self._rows = iter(served)
            return
        if ctx.reopt is not None and self.stage is not None:
            # The stage is unstarted (artifact miss, site pipeline not yet
            # open): the one point where migrating it is free of partial
            # work.  The controller swaps the assignment in place on
            # migrate; SiteScan re-reads it at compute time.
            ctx.reopt.consider(ctx, self.stage[0], self.stage[1])
        before = ctx.report.rows_fetched
        for child in self.children:
            child.open(ctx)
        self._stage_rows_fetched = ctx.report.rows_fetched - before
        self._rows = self._produce(ctx)

    def _artifact_rows(self, ctx: ExecContext) -> "list[Any] | None":
        """Serve this stage from the artifact store: a committed-artifact
        hit (wait 0) or a join onto an identical in-flight stage (charged
        the remaining wait until the producer's modeled completion)."""
        self._stage_key = None
        store = ctx.artifacts
        if store is None or self.stage is None or not ctx.reuse_artifacts:
            return None
        scan, agg = self.stage
        assignment = ctx.plan.assignments.get(scan.binding)
        if assignment is None or assignment.kind != "fragments":
            # View/cache paths carry their own staleness semantics; the
            # stage hash only describes the base-table fragment scan.
            return None
        key = store.stage_key(ctx.catalog, scan, agg)
        if key is None:
            return None
        self._stage_key = key  # the capture target if we miss
        hit = store.acquire(key, ctx.max_staleness)
        if hit is None:
            return None
        artifact, wait, joined = hit
        if agg is not None:
            rows = artifact.serve_groups(scan.binding, ctx.ambiguous, agg.split.calls)
        else:
            rows = artifact.serve_rows(scan.binding, ctx.ambiguous)
        if rows is None:
            # Payload-kind or call mismatch under an identical digest (a
            # hash-collision guard): recompute instead of serving garbage.
            self._stage_key = None
            return None
        serve = ctx.charge_coordinator(len(rows))
        ctx.scan_elapsed = max(ctx.scan_elapsed, wait)
        ctx.scan_total_rows += len(rows)
        age = ctx.catalog.clock.now() - artifact.fetched_at
        ctx.report.staleness_seconds = max(ctx.report.staleness_seconds, age)
        if joined:
            ctx.report.artifact_joins += 1
            ctx.report.artifact_join_keys.append(key)
        else:
            ctx.report.artifact_hits += 1
        ctx.report.artifact_rows_saved += artifact.rows_saved
        ctx.report.artifact_bytes_saved += artifact.bytes_saved
        self.stats.rows_in = len(rows)
        self.stats.seconds = serve
        label = "joined in-flight stage" if joined else "artifact hit"
        self.stats.detail = (
            f"{label} {key[0][:8]} v{key[1]} "
            f"(age {age:.1f}s, wait {wait:.2f}s)"
        )
        return rows

    def _maybe_capture(
        self, ctx: ExecContext, rows: list, shipped_bytes: int, arrival: float
    ) -> None:
        """On an artifact miss, publish this stage's output through the
        report.  The engine registers successful reports' outputs in
        flight; failed executions drop them unseen."""
        key = self._stage_key
        if ctx.artifacts is None or key is None or not ctx.reuse_artifacts:
            return
        # Degraded, failed-over, or covering-fallback output is stale or
        # incomplete for the stage's content hash; never publish it.
        if ctx.unreachable_rows or ctx.unreachable_fragments:
            return
        site_scan = self.children[0]
        while site_scan.children:
            site_scan = site_scan.children[0]
        if not isinstance(site_scan, SiteScan) or not site_scan._capture_ok:
            return
        from repro.federation import artifacts as artifacts_mod

        scan, agg = self.stage
        try:
            if agg is not None:
                payload = artifacts_mod.groups_payload(
                    rows, scan.binding, agg.split.calls
                )
            else:
                entry = ctx.catalog.tables.get(scan.table)
                if entry is None:
                    return
                fields = artifacts_mod.stage_fields(entry.schema, scan)
                payload = artifacts_mod.rows_payload(rows, scan.binding, fields)
        except KeyError:
            return  # rows missing expected columns: not canonically capturable
        ctx.report.stage_outputs.append(
            artifacts_mod.StageOutput(
                key=key,
                table_name=scan.table,
                payload=payload,
                rows_saved=self._stage_rows_fetched,
                bytes_saved=shipped_bytes,
                fetch_seconds=arrival,
                fetched_at=ctx.catalog.clock.now(),
            )
        )

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        rows: list[Any] = []
        arrival = 0.0
        shipped = 0
        shipped_bytes = 0
        encoded_total = 0
        raw_total = 0
        encode_total = 0.0
        decode_total = 0.0
        batch_count = 0
        transfer_total = 0.0
        sources = set()
        stage_sites = set()
        network = ctx.catalog.network
        for batch in self.children[0].batches():
            stage_sites.add(batch.site)
            local = batch.site == ctx.coordinator
            if batch.chunks is not None:
                batch_count += len(batch.chunks)
                batch_rows: list[Env] = []
                elapsed = batch.elapsed
                if local:
                    # Already at the coordinator: no wire, no encoding.
                    for chunk in batch.chunks:
                        batch_rows.extend(chunk.to_envs())
                    transfer = 0.0
                else:
                    batch_bytes = 0
                    for chunk in batch.chunks:
                        encoded = columnar.encode_batch(chunk)
                        batch_bytes += encoded.encoded_bytes
                        raw_total += encoded.raw_bytes
                        batch_rows.extend(columnar.decode_batch(encoded).to_envs())
                    encode_seconds = batch_bytes * columnar.ENCODE_SECONDS_PER_BYTE
                    decode_seconds = batch_bytes * columnar.DECODE_SECONDS_PER_BYTE
                    ctx.charge_site_seconds(batch.site, encode_seconds)
                    ctx.charge_coordinator_seconds(decode_seconds)
                    encode_total += encode_seconds
                    decode_total += decode_seconds
                    elapsed += encode_seconds
                    transfer = network.transfer_seconds_bytes(
                        batch.site, ctx.coordinator, batch_bytes
                    )
                    shipped += len(batch_rows)
                    shipped_bytes += batch_bytes
                    encoded_total += batch_bytes
                    sources.add(batch.site)
                ctx.report.network_seconds += transfer
                transfer_total += transfer
                arrival = max(arrival, elapsed + transfer)
                rows.extend(batch_rows)
                continue
            # Row-form batches: partial-aggregate records, or the legacy
            # row engine when columnar execution is off.
            if ctx.columnar and not local:
                nbytes = sum(record_wire_bytes(r) for r in batch.rows)
                transfer = network.transfer_seconds_bytes(
                    batch.site, ctx.coordinator, nbytes
                )
                shipped_bytes += nbytes
                encoded_total += nbytes
                raw_total += nbytes
            else:
                transfer = network.transfer_seconds(
                    batch.site, ctx.coordinator, len(batch.rows)
                )
            ctx.report.network_seconds += transfer
            transfer_total += transfer
            if not local:
                shipped += len(batch.rows)
                sources.add(batch.site)
            arrival = max(arrival, batch.elapsed + transfer)
            rows.extend(batch.rows)
        ctx.scan_elapsed = max(ctx.scan_elapsed, arrival)
        ctx.report.rows_shipped += shipped
        ctx.report.bytes_shipped += shipped_bytes
        self.stats.rows_in = len(rows)
        self.stats.batches = batch_count
        self.stats.encoded_bytes = encoded_total
        self.stats.raw_bytes = raw_total
        self.stats.encode_seconds = encode_total
        self.stats.decode_seconds = decode_total
        # Unpacking arrived rows is coordinator work, as in the old walker.
        unpack = ctx.charge_coordinator(len(rows))
        self.stats.seconds = transfer_total + unpack + encode_total + decode_total
        self.stats.detail = (
            f"from {', '.join(sorted(sources))}" if sources else "coordinator-local"
        )
        if self.stage is not None:
            binding = self.stage[0].binding
            ctx.report.stage_runtimes[binding] = (
                arrival, tuple(sorted(stage_sites))
            )
            if ctx.reopt is not None:
                note = ctx.reopt.describe(binding)
                if note:
                    self.stats.detail += f"  [{note}]"
        self._maybe_capture(ctx, rows, shipped_bytes, arrival)
        yield from rows


# -- coordinator operators -----------------------------------------------------


class Filter(PhysicalOperator):
    """Residual row filter at the coordinator (streaming)."""

    name = "Filter"

    def __init__(self, child: PhysicalOperator, condition: Expr) -> None:
        super().__init__(child)
        self.condition = condition

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self.stats.detail = describe_expr(self.condition)

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        child = self.children[0]
        while (env := child.next()) is not None:
            self.stats.rows_in += 1
            if evaluate(self.condition, env):
                yield env

    def _finish(self, ctx: ExecContext) -> None:
        self.stats.seconds += ctx.charge_coordinator(self.stats.rows_in)


class _JoinBase(PhysicalOperator):
    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Expr,
        join_type: str,
        right_bindings: list[str],
    ) -> None:
        super().__init__(left, right)
        self.condition = condition
        self.join_type = join_type
        self.right_bindings = right_bindings
        self._extra_charge = 0

    def _null_right(self, ctx: ExecContext) -> Env:
        null_right: Env = {}
        for binding in self.right_bindings:
            null_right.update(ctx.null_envs.get(binding, {}))
        return null_right

    def _finish(self, ctx: ExecContext) -> None:
        self.stats.seconds += ctx.charge_coordinator(
            self.stats.rows_in + self._extra_charge
        )


class HashJoin(_JoinBase):
    """Build on the right input, stream probes from the left.

    The equality keys are resolved at runtime against the first row of each
    input (qualified names may or may not be present depending on the
    projection); when they do not resolve, the operator degrades to a
    nested-loop evaluation of the same condition.
    """

    name = "HashJoin"

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self.stats.detail = describe_expr(self.condition)

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        left, right = self.children
        right_envs = []
        while (env := right.next()) is not None:
            self.stats.rows_in += 1
            right_envs.append(env)
        outer = self.join_type == "left"
        null_right = self._null_right(ctx) if outer else {}

        first_left = left.next()
        keys = equality_keys(
            self.condition, first_left, right_envs[0] if right_envs else None
        )
        if keys is not None:
            left_key, right_key = keys
            buckets: dict[Any, list[Env]] = {}
            for env in right_envs:
                buckets.setdefault(env.get(right_key), []).append(env)
            env = first_left
            while env is not None:
                self.stats.rows_in += 1
                value = env.get(left_key)
                matches = buckets.get(value, ()) if value is not None else ()
                if matches:
                    for right_env in matches:
                        yield {**env, **right_env}
                elif outer:
                    yield {**env, **null_right}
                env = left.next()
            return

        # Keys did not resolve (empty input or non-column condition form):
        # fall back to nested-loop semantics over the same condition.
        self.stats.detail = f"nested-loop fallback {describe_expr(self.condition)}"
        left_envs = []
        env = first_left
        while env is not None:
            self.stats.rows_in += 1
            left_envs.append(env)
            env = left.next()
        self._extra_charge = len(left_envs) * max(1, len(right_envs))
        yield from _nested_loop(
            left_envs, right_envs, self.condition, outer, null_right
        )


class NestedLoopJoin(_JoinBase):
    """General-condition join: evaluate the predicate per row pair."""

    name = "NestedLoopJoin"

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self.stats.detail = describe_expr(self.condition)

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        left, right = self.children
        right_envs = []
        while (env := right.next()) is not None:
            self.stats.rows_in += 1
            right_envs.append(env)
        left_envs = []
        while (env := left.next()) is not None:
            self.stats.rows_in += 1
            left_envs.append(env)
        outer = self.join_type == "left"
        null_right = self._null_right(ctx) if outer else {}
        self._extra_charge = len(left_envs) * max(1, len(right_envs))
        yield from _nested_loop(
            left_envs, right_envs, self.condition, outer, null_right
        )


def _nested_loop(
    left_envs: list[Env],
    right_envs: list[Env],
    condition: Expr,
    outer: bool,
    null_right: Env,
) -> Iterator[Env]:
    for left_env in left_envs:
        matched = False
        for right_env in right_envs:
            merged = {**left_env, **right_env}
            if evaluate(condition, merged):
                matched = True
                yield merged
        if outer and not matched:
            yield {**left_env, **null_right}


def equality_keys(
    condition: Expr, left_env: Env | None, right_env: Env | None
) -> tuple[str, str] | None:
    """Detect ``left.col = right.col`` to enable the hash path."""
    if not (isinstance(condition, BinaryOp) and condition.op == "="):
        return None
    if not (
        isinstance(condition.left, Column) and isinstance(condition.right, Column)
    ):
        return None
    if left_env is None or right_env is None:
        return None
    a, b = condition.left.qualified, condition.right.qualified
    if a in left_env and b in right_env:
        return a, b
    if b in left_env and a in right_env:
        return b, a
    return None


class Project(PhysicalOperator):
    """Evaluate select items (and DISTINCT) at the coordinator."""

    name = "Project"

    def __init__(
        self, child: PhysicalOperator, items: list[SelectItem], distinct: bool
    ) -> None:
        super().__init__(child)
        self.items = items
        self.distinct = distinct

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self._expanded = expand_items(self.items, ctx.plan, ctx.catalog)
        self._names = output_names(self.items, ctx.plan, ctx.catalog)
        self.stats.detail = ("distinct " if self.distinct else "") + ", ".join(
            self._names
        )

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        seen: set[tuple] = set()
        child = self.children[0]
        while (env := child.next()) is not None:
            self.stats.rows_in += 1
            out: Env = {}
            for item, name in zip(self._expanded, self._names):
                out[name] = evaluate(item.expr, env)
            if self.distinct:
                key = tuple(out[name] for name in self._names)
                try:
                    if key in seen:
                        continue
                    seen.add(key)
                except TypeError:
                    pass  # unhashable values: keep the row, as before
            yield out

    def _finish(self, ctx: ExecContext) -> None:
        self.stats.seconds += ctx.charge_coordinator(self.stats.rows_in)

    def output_names(self) -> list[str] | None:
        return self._names


class Aggregate(PhysicalOperator):
    """Whole-group aggregation at the coordinator (multi-table plans)."""

    name = "Aggregate"

    def __init__(self, child: PhysicalOperator, node: AggregateNode) -> None:
        super().__init__(child)
        self.node = node

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self._names = aggregate_names(self.node.items)
        self.stats.detail = ", ".join(self._names)

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        envs = []
        child = self.children[0]
        while (env := child.next()) is not None:
            envs.append(env)
        self.stats.rows_in = len(envs)

        node = self.node
        groups: dict[tuple, list[Env]] = {}
        if node.group_by:
            for env in envs:
                key = tuple(evaluate(g, env) for g in node.group_by)
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = envs

        results: list[Env] = []
        for group_envs in groups.values():
            if not group_envs and node.group_by:
                continue
            out: Env = {}
            for item, name in zip(node.items, self._names):
                out[name] = eval_aggregate_expr(item.expr, group_envs)
            if node.having is not None:
                if not bool(eval_aggregate_expr(node.having, group_envs)):
                    continue
            results.append(out)
        # Deterministic output order: by group key representation.
        results.sort(key=lambda env: tuple(repr(v) for v in env.values()))
        yield from results

    def _finish(self, ctx: ExecContext) -> None:
        self.stats.seconds += ctx.charge_coordinator(self.stats.rows_in)

    def output_names(self) -> list[str] | None:
        return aggregate_names(self.node.items)


class FinalAggregate(PhysicalOperator):
    """Merge sites' partial aggregate states into final groups."""

    name = "FinalAggregate"

    def __init__(self, child: PhysicalOperator, node: AggregateNode) -> None:
        super().__init__(child)
        self.node = node
        assert node.split is not None
        self.calls = node.split.calls

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self._names = aggregate_names(self.node.items)
        self.stats.detail = ", ".join(self._names)

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        merged: dict[tuple, PartialGroup] = {}
        child = self.children[0]
        while (record := child.next()) is not None:
            self.stats.rows_in += 1
            seen = merged.get(record.key)
            if seen is None:
                merged[record.key] = PartialGroup(
                    record.key, record.count, dict(record.states), record.representative
                )
                continue
            seen.count += record.count
            for call in self.calls:
                key = repr(call)
                seen.states[key] = merge_state(call, seen.states[key], record.states[key])
            if not seen.representative and record.representative:
                seen.representative = record.representative

        if not self.node.group_by and not merged:
            merged[()] = PartialGroup(
                (), 0, {repr(call): partial_state(call, []) for call in self.calls}, {}
            )

        results: list[Env] = []
        for group in merged.values():
            if group.count == 0 and self.node.group_by:
                continue
            out: Env = {}
            for item, name in zip(self.node.items, self._names):
                out[name] = self._eval_merged(item.expr, group)
            if self.node.having is not None:
                if not bool(self._eval_merged(self.node.having, group)):
                    continue
            results.append(out)
        results.sort(key=lambda env: tuple(repr(v) for v in env.values()))
        yield from results

    def _eval_merged(self, expr: Expr, group: PartialGroup) -> Any:
        if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
            return final_value(expr, group)
        if isinstance(expr, BinaryOp):
            left = self._eval_merged(expr.left, group)
            right = self._eval_merged(expr.right, group)
            return evaluate(BinaryOp(expr.op, Literal(left), Literal(right)), {})
        # Non-aggregate sub-expression: evaluate against a representative row.
        return evaluate(expr, group.representative)

    def _finish(self, ctx: ExecContext) -> None:
        self.stats.seconds += ctx.charge_coordinator(self.stats.rows_in)

    def output_names(self) -> list[str] | None:
        return aggregate_names(self.node.items)


class Sort(PhysicalOperator):
    """Blocking multi-key sort at the coordinator."""

    name = "Sort"

    def __init__(self, child: PhysicalOperator, order_by: list[OrderItem]) -> None:
        super().__init__(child)
        self.order_by = order_by

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self.stats.detail = ", ".join(
            describe_expr(o.expr) + (" desc" if o.descending else "")
            for o in self.order_by
        )

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        envs = []
        child = self.children[0]
        while (env := child.next()) is not None:
            envs.append(env)
        self.stats.rows_in = len(envs)
        # Stable sorts applied in reverse order give multi-key semantics.
        for order in reversed(self.order_by):
            envs.sort(
                key=lambda env: _sort_key(evaluate(order.expr, env)),
                reverse=order.descending,
            )
        yield from envs

    def _finish(self, ctx: ExecContext) -> None:
        self.stats.seconds += ctx.charge_coordinator(self.stats.rows_in)

    def output_names(self) -> list[str] | None:
        return self.children[0].output_names()


class Limit(PhysicalOperator):
    """Stop pulling from the child after ``limit`` rows."""

    name = "Limit"

    def __init__(self, child: PhysicalOperator, limit: int) -> None:
        super().__init__(child)
        self.limit = limit

    def open(self, ctx: ExecContext) -> None:
        super().open(ctx)
        self.stats.detail = str(self.limit)

    def _produce(self, ctx: ExecContext) -> Iterator[Any]:
        child = self.children[0]
        produced = 0
        while produced < self.limit:
            env = child.next()
            if env is None:
                return
            self.stats.rows_in += 1
            produced += 1
            yield env

    def output_names(self) -> list[str] | None:
        return self.children[0].output_names()


# -- naming / projection helpers -----------------------------------------------


def expand_items(
    items: list[SelectItem], plan: PhysicalPlan, catalog: FederationCatalog
) -> list[SelectItem]:
    """Replace ``*`` / ``alias.*`` with explicit column items."""
    expanded: list[SelectItem] = []
    for item in items:
        if not isinstance(item.expr, Star):
            expanded.append(item)
            continue
        for binding, assignment in plan.assignments.items():
            if item.expr.qualifier is not None and item.expr.qualifier != binding:
                continue
            for field_def in schema_of(catalog, assignment).fields:
                expanded.append(SelectItem(Column(field_def.name, qualifier=binding)))
    return expanded


def output_names(
    items: list[SelectItem], plan: PhysicalPlan, catalog: FederationCatalog
) -> list[str]:
    names: list[str] = []
    used: set[str] = set()
    for i, item in enumerate(expand_items(items, plan, catalog)):
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, Column):
            name = item.expr.name
        elif isinstance(item.expr, FuncCall):
            name = item.expr.name
        else:
            name = f"col{i}"
        base = name
        suffix = 1
        while name in used:
            suffix += 1
            name = f"{base}_{suffix}"
        used.add(name)
        names.append(name)
    return names


def aggregate_names(items: list[SelectItem]) -> list[str]:
    names = []
    for i, item in enumerate(items):
        if item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, Column):
            names.append(item.expr.name)
        elif isinstance(item.expr, FuncCall):
            names.append(item.expr.name)
        else:
            names.append(f"col{i}")
    return names


def eval_aggregate_expr(expr: Expr, group_envs: list[Env]) -> Any:
    """Evaluate an expression that may contain aggregate calls."""
    if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
        return compute_aggregate(expr, group_envs)
    if isinstance(expr, BinaryOp):
        left = eval_aggregate_expr(expr.left, group_envs)
        right = eval_aggregate_expr(expr.right, group_envs)
        return evaluate(BinaryOp(expr.op, Literal(left), Literal(right)), {})
    # Non-aggregate sub-expression: evaluate against a representative row.
    representative = group_envs[0] if group_envs else {}
    return evaluate(expr, representative)


def compute_aggregate(call: FuncCall, group_envs: list[Env]) -> Any:
    if call.star:
        if call.name != "count":
            raise QueryError(f"{call.name}(*) is not a valid aggregate")
        return len(group_envs)
    if len(call.args) != 1:
        raise QueryError(f"aggregate {call.name} takes exactly one argument")
    values = [evaluate(call.args[0], env) for env in group_envs]
    values = [v for v in values if v is not None]
    if call.name == "count":
        return len(values)
    if not values:
        return None
    if call.name == "sum":
        total = values[0]
        for value in values[1:]:
            total = total + value
        return total
    if call.name == "avg":
        total = values[0]
        for value in values[1:]:
            total = total + value
        return total / len(values)
    if call.name == "min":
        return min(values)
    if call.name == "max":
        return max(values)
    raise QueryError(f"unknown aggregate {call.name!r}")


def describe_region(region: "frozenset | None") -> str:
    """Render a predicate region for EXPLAIN (``*`` = the whole table)."""
    if not region:
        return "*"
    rendered = sorted(
        f"{p.column} {p.op} {p.value!r}" for p in region
    )
    return " and ".join(rendered)


def describe_pruning(assignment: ScanAssignment) -> str:
    """Zone-map elimination as EXPLAIN shows it: `` pruned k/n`` or ``""``."""
    if assignment.pruned_fragments <= 0:
        return ""
    return (
        f" pruned {assignment.pruned_fragments}/{assignment.total_fragments}"
    )


def describe_cache_path(assignment: ScanAssignment) -> str:
    """The cache access path as EXPLAIN shows it: region plus entry age."""
    return (
        f"cache(region {describe_region(assignment.cached_region)}, "
        f"age {assignment.cached_staleness:.1f}s)"
    )


def describe_artifact_path(assignment: ScanAssignment) -> str:
    """The artifact access path as EXPLAIN shows it: stage key plus age."""
    artifact = assignment.artifact
    return (
        f"artifact(stage {artifact.key[0][:8]}, v{artifact.key[1]}, "
        f"rows {artifact.row_count}, age {assignment.artifact_age:.1f}s)"
    )


def describe_expr(expr: Expr) -> str:
    """Compact SQL-ish rendering for EXPLAIN output."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, Column):
        return expr.qualified
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, BinaryOp):
        return f"({describe_expr(expr.left)} {expr.op} {describe_expr(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"({expr.op} {describe_expr(expr.operand)})"
    if isinstance(expr, FuncCall):
        args = "*" if expr.star else ", ".join(describe_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, InList):
        items = ", ".join(describe_expr(i) for i in expr.items)
        negated = "not " if expr.negated else ""
        return f"({describe_expr(expr.operand)} {negated}in ({items}))"
    if isinstance(expr, Between):
        negated = "not " if expr.negated else ""
        return (
            f"({describe_expr(expr.operand)} {negated}between "
            f"{describe_expr(expr.low)} and {describe_expr(expr.high)})"
        )
    if isinstance(expr, Like):
        negated = "not " if expr.negated else ""
        return f"({describe_expr(expr.operand)} {negated}like {expr.pattern!r})"
    return repr(expr)


# -- compilation ---------------------------------------------------------------


class PhysicalPlanner:
    """Compiles a PhysicalPlan's logical tree into a physical operator tree."""

    def __init__(self, catalog: FederationCatalog) -> None:
        self.catalog = catalog

    def compile(self, plan: PhysicalPlan) -> PhysicalOperator:
        root = self._node(plan.logical, plan)
        plan.root = root
        return root

    def _node(self, node: PlanNode, plan: PhysicalPlan) -> PhysicalOperator:
        if isinstance(node, ScanNode):
            assignment = plan.assignments.get(node.binding)
            if assignment is not None and assignment.kind == "artifact":
                return Ship(ArtifactSource(node))
            return Ship(self._site_pipeline(node, plan), stage=(node, None))
        if isinstance(node, FilterNode):
            return Filter(self._node(node.child, plan), node.condition)
        if isinstance(node, JoinNode):
            left = self._node(node.left, plan)
            right = self._node(node.right, plan)
            right_bindings = [scan.binding for scan in scans_in(node.right)]
            condition = node.condition
            if (
                isinstance(condition, BinaryOp)
                and condition.op == "="
                and isinstance(condition.left, Column)
                and isinstance(condition.right, Column)
            ):
                return HashJoin(left, right, condition, node.join_type, right_bindings)
            return NestedLoopJoin(
                left, right, condition, node.join_type, right_bindings
            )
        if isinstance(node, ProjectNode):
            return Project(self._node(node.child, plan), node.items, node.distinct)
        if isinstance(node, AggregateNode):
            if node.split is not None and isinstance(node.child, ScanNode):
                assignment = plan.assignments.get(node.child.binding)
                if assignment is not None and assignment.kind == "artifact":
                    return FinalAggregate(
                        Ship(ArtifactSource(node.child, node)), node
                    )
                pipeline = PartialAggregate(
                    self._site_pipeline(node.child, plan), node
                )
                return FinalAggregate(
                    Ship(pipeline, stage=(node.child, node)), node
                )
            return Aggregate(self._node(node.child, plan), node)
        if isinstance(node, SortNode):
            return Sort(self._node(node.child, plan), node.order_by)
        if isinstance(node, LimitNode):
            return Limit(self._node(node.child, plan), node.limit)
        raise QueryError(f"cannot compile plan node {node!r}")

    def _site_pipeline(self, scan: ScanNode, plan: PhysicalPlan) -> SiteOperator:
        op: SiteOperator = SiteScan(scan)
        if scan.site_filters:
            op = SiteFilter(op, conjoin(list(scan.site_filters)))
        keep = self._kept_columns(scan, plan)
        if keep is not None:
            op = SiteProject(op, scan.binding, keep)
        return op

    def _kept_columns(
        self, scan: ScanNode, plan: PhysicalPlan
    ) -> tuple[str, ...] | None:
        if scan.needed_columns is None:
            return None
        assignment = plan.assignments.get(scan.binding)
        if assignment is None:
            return None
        fields = set(schema_of(self.catalog, assignment).field_names)
        keep = scan.needed_columns & fields
        if keep >= fields:
            return None  # nothing to prune
        return tuple(sorted(keep))


# -- output construction -------------------------------------------------------


def envs_to_table(root: PhysicalOperator, envs: list[Env]) -> Table:
    names = root.output_names()
    if names is None:
        # Bare scan/filter/join tree (no projection): emit every env key that
        # is a bare (unqualified) name, in first-env order.
        names = [k for k in envs[0] if "." not in k] if envs else []
    rows = [tuple(env.get(name) for name in names) for env in envs]
    fields = []
    for i, name in enumerate(names):
        column_values = [row[i] for row in rows]
        fields.append(Field(_safe_name(name), _infer_dtype(column_values)))
    table = Table(Schema("result", tuple(fields)), validate=False)
    table.rows = rows
    return table


def _sort_key(value: Any) -> tuple:
    """None sorts first; mixed types keep a stable, comparable form."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    if isinstance(value, Money):
        return (3, value.currency, value.amount)
    return (4, str(value))


def _safe_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return cleaned or "col"


def _infer_dtype(values: list[Any]) -> DataType:
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return DataType.BOOLEAN
        if isinstance(value, int):
            return DataType.INTEGER
        if isinstance(value, float):
            return DataType.FLOAT
        if isinstance(value, Money):
            return DataType.MONEY
        return DataType.STRING
    return DataType.STRING

"""Per-fragment zone-map statistics and predicate-based partition elimination.

The federation descends from Mariposa, where horizontal fragments are the
unit of placement and pricing (§3.2 C8) -- which means fragment count
directly multiplies planning work unless the planner can *rule fragments
out*.  A :class:`ZoneMap` records, per column of one fragment, the min/max
value range, the null count and a distinct-value estimate; the optimizers
test each scan's sargable pushed-down predicates against it and skip
fragments whose ranges cannot satisfy them (partition elimination).  Pruned
fragments solicit no bids and enqueue no site work.

Soundness is the contract: :func:`fragment_can_match` may only return False
when **no** row of the fragment can satisfy the predicates.  The range
reasoning reuses the semantic cache's implication machinery
(:func:`repro.federation.cache.predicate_implies`): a fragment whose values
all lie in ``[lo, hi]`` is prunable by predicate ``p`` exactly when ``p``
entails ``column < lo`` or ``column > hi``.  Anything doubtful -- missing
statistics, incomparable types, un-analyzed operators -- keeps the
fragment, which only costs performance, never correctness.  Statistics are
dropped (never trusted) when the catalog reports a base-table update.

The same statistics replace the old textbook constant selectivities: range
predicates interpolate across the recorded value interval and equalities
use the distinct estimate, so bid prices and the centralized baseline's
makespan estimates reflect how many rows a filtered scan actually ships
(:func:`zone_selectivity` / :func:`fallback_selectivity`, shared by every
optimizer through :func:`fragment_selectivity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.errors import QueryError
from repro.core.records import Table
from repro.connect.source import Predicate
from repro.federation.cache import predicate_implies

_RANGE_OPS = ("<", "<=", ">", ">=")

# The pre-zone-map textbook constants, kept as the estimate of last resort
# (no statistics, unanalyzed column, incomparable values).
_FALLBACK_FRACTION = {
    "=": 0.1,
    "<": 0.3,
    "<=": 0.3,
    ">": 0.3,
    ">=": 0.3,
    "!=": 0.9,
    "contains": 0.5,
}

_MIN_FRACTION = 0.001


@dataclass(frozen=True)
class ColumnStats:
    """Zone-map statistics for one column of one fragment.

    ``minimum``/``maximum`` cover the *non-null* values and are ``None``
    when the column has no comparable non-null values (all-null, or mixed
    incomparable types) -- in which case range reasoning is disabled for
    the column and only the null count remains usable.
    """

    minimum: Any = None
    maximum: Any = None
    null_count: int = 0
    distinct: int = 0  # distinct non-null values (estimate)


@dataclass
class ZoneMap:
    """Per-column statistics for one fragment's rows."""

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @classmethod
    def from_table(cls, table: Table) -> "ZoneMap":
        """Collect statistics in one pass over a fragment's rows."""
        zone = cls(row_count=len(table))
        for index, field_def in enumerate(table.schema.fields):
            values = [row[index] for row in table.rows]
            non_null = [v for v in values if v is not None]
            nulls = len(values) - len(non_null)
            try:
                minimum = min(non_null) if non_null else None
                maximum = max(non_null) if non_null else None
            except Exception:
                # Mixed incomparable types (e.g. Money across currencies):
                # no range statistics, the column is simply never pruned on.
                minimum = maximum = None
            try:
                distinct = len(set(non_null))
            except TypeError:
                distinct = len(non_null)
            zone.columns[field_def.name] = ColumnStats(
                minimum=minimum,
                maximum=maximum,
                null_count=nulls,
                distinct=distinct,
            )
        return zone


def fragment_can_match(
    zone: "ZoneMap | None", predicates: Sequence[Predicate]
) -> bool:
    """Whether any row of a fragment could satisfy all ``predicates``.

    ``True`` is always safe (the fragment is scanned); ``False`` is a proof
    of emptiness under the zone map, so the fragment may be skipped without
    changing the answer.  A missing zone map (external source, invalidated
    statistics) disables pruning entirely.
    """
    if zone is None:
        return True
    if zone.row_count == 0:
        return False  # an empty fragment matches nothing
    for predicate in predicates:
        stats = zone.columns.get(predicate.column)
        if stats is None:
            continue  # un-analyzed column: cannot rule anything out
        if not _predicate_satisfiable(predicate, stats, zone.row_count):
            return False
    return True


def _predicate_satisfiable(
    predicate: Predicate, stats: ColumnStats, row_count: int
) -> bool:
    """Can *some* value in the fragment satisfy this one predicate?"""
    non_null = row_count - stats.null_count
    column = predicate.column
    if predicate.op == "=" and predicate.value is None:
        # ``= NULL`` matches only null cells (Predicate uses == semantics).
        return stats.null_count > 0
    if predicate.op in _RANGE_OPS or predicate.op == "=":
        # Range comparisons and non-null equality never match null cells.
        if non_null == 0:
            return False
        if stats.minimum is None:
            return True  # no range statistics: assume satisfiable
        # All values lie in [minimum, maximum]; the predicate excludes the
        # fragment exactly when it entails falling off either end.  The
        # entailment test is the cache's sound implication machinery.
        below = Predicate(column, "<", stats.minimum)
        above = Predicate(column, ">", stats.maximum)
        try:
            if predicate_implies(predicate, below) or predicate_implies(
                predicate, above
            ):
                return False
        except (TypeError, QueryError):
            return True  # incomparable: conservatively satisfiable
        return True
    if predicate.op == "!=":
        # Null cells satisfy ``!=`` (None != v), so nulls keep the fragment.
        if stats.null_count > 0:
            return True
        if stats.distinct == 1 and stats.minimum is not None:
            try:
                # A single-valued fragment equal to the forbidden value.
                return not bool(stats.minimum == predicate.value == stats.maximum)
            except (TypeError, QueryError):
                return True
        return True
    if predicate.op == "contains":
        # contains never matches null cells; beyond that, min/max say
        # nothing about substrings.
        return non_null > 0
    return True


def zone_selectivity(
    zone: "ZoneMap | None", predicates: Sequence[Predicate]
) -> float:
    """Estimated fraction of the fragment's rows satisfying ``predicates``.

    Conjuncts multiply (independence assumption, as before); each factor is
    interpolated from the zone map when possible -- equality via the
    distinct estimate, ranges via linear interpolation across the recorded
    ``[min, max]`` interval -- and falls back to the textbook constant
    otherwise.  The result is floored so quotes never reach zero.
    """
    if zone is None:
        return fallback_selectivity(predicates)
    if zone.row_count == 0 or not fragment_can_match(zone, predicates):
        return 0.0
    fraction = 1.0
    for predicate in predicates:
        fraction *= _predicate_fraction(predicate, zone)
    return min(1.0, max(fraction, _MIN_FRACTION))


def fallback_selectivity(predicates: Sequence[Predicate]) -> float:
    """The pre-statistics constant heuristic (kept for statless sources)."""
    fraction = 1.0
    for predicate in predicates:
        fraction *= _FALLBACK_FRACTION.get(predicate.op, 0.5)
    return max(fraction, 0.01)


def fragment_selectivity(fragment, predicates: Sequence[Predicate]) -> float:
    """The shared per-fragment estimator every optimizer quotes with."""
    zone = getattr(fragment, "zone_map", None)
    if zone is None:
        return fallback_selectivity(predicates)
    return zone_selectivity(zone, predicates)


def _predicate_fraction(predicate: Predicate, zone: ZoneMap) -> float:
    stats = zone.columns.get(predicate.column)
    if stats is None:
        return _FALLBACK_FRACTION.get(predicate.op, 0.5)
    rows = zone.row_count
    non_null_fraction = (rows - stats.null_count) / rows
    null_fraction = stats.null_count / rows
    op, value = predicate.op, predicate.value
    if op == "=":
        if value is None:
            return null_fraction
        if stats.distinct <= 0:
            return 0.0
        return non_null_fraction / stats.distinct
    if op == "!=":
        # Null cells pass (None != v is True under Predicate semantics).
        if stats.distinct <= 0:
            return null_fraction
        return null_fraction + non_null_fraction * (1.0 - 1.0 / stats.distinct)
    if op in _RANGE_OPS:
        interpolated = _range_fraction(op, value, stats)
        if interpolated is None:
            return _FALLBACK_FRACTION[op] * non_null_fraction
        return interpolated * non_null_fraction
    if op == "contains":
        return _FALLBACK_FRACTION["contains"] * non_null_fraction
    return 0.5


# Naive per-value wire bytes by logical type, matching the columnar byte
# model (:func:`repro.federation.columnar.value_wire_bytes`; strings
# assumed short).
_TYPE_WIRE_BYTES = {
    "STRING": 14,
    "TEXT": 42,
    "INTEGER": 8,
    "FLOAT": 8,
    "TIMESTAMP": 8,
    "BOOLEAN": 1,
    "MONEY": 16,
}


def estimated_row_bytes(schema) -> int:
    """Naive wire bytes per row of ``schema``."""
    total = 0
    for field_def in schema.fields:
        total += _TYPE_WIRE_BYTES.get(field_def.dtype.name, 8)
    return max(1, total)


# Without statistics, assume column encoding halves the payload -- the
# conservative end of what dictionary/RLE/delta achieve on real columns.
_DEFAULT_ENCODING_RATIO = 0.5


def estimated_shipped_bytes(fragment, schema, rows: int) -> int:
    """Estimated *encoded* wire bytes for shipping ``rows`` of a fragment.

    Uses the zone map's distinct counts to model dictionary encoding per
    column (dictionary entries plus small per-row codes); columns without
    statistics assume a flat encoding ratio.  Replica-independent by
    construction: every optimizer prices the same fragment identically
    regardless of which site would serve it, so bytes-aware pricing shifts
    access-path choices (cache vs view vs fragments), never replica
    tie-breaks.
    """
    if rows <= 0:
        return 0
    zone = getattr(fragment, "zone_map", None)
    total = 0.0
    for field_def in schema.fields:
        full = _TYPE_WIRE_BYTES.get(field_def.dtype.name, 8)
        if field_def.dtype.name == "BOOLEAN":
            total += rows * 0.25  # flag columns bit-pack four per byte
            continue
        stats = zone.columns.get(field_def.name) if zone is not None else None
        if stats is None or zone.row_count <= 0:
            total += rows * full * _DEFAULT_ENCODING_RATIO
            continue
        distinct = max(1, stats.distinct)
        index_bytes = 1 if distinct <= 256 else 2
        dictionary = distinct * full / zone.row_count  # amortized per row
        total += rows * min(float(full), index_bytes + dictionary)
    return max(1, int(total))


def _range_fraction(op: str, value: Any, stats: ColumnStats) -> float | None:
    """Linear interpolation of a range predicate across ``[min, max]``.

    Only numeric (non-bool) intervals interpolate; anything else returns
    ``None`` so the caller falls back to the constant heuristic.
    """
    lo, hi = stats.minimum, stats.maximum
    if not all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in (lo, hi, value)
    ):
        return None
    if hi <= lo:  # single-valued column: the predicate either takes it or not
        return 1.0 if Predicate("probe", op, value).matches({"probe": lo}) else 0.0
    if op in ("<", "<="):
        fraction = (value - lo) / (hi - lo)
    else:  # >, >=
        fraction = (hi - value) / (hi - lo)
    return min(1.0, max(0.0, fraction))

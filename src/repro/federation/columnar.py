"""The columnar data plane: batches, filter kernels and wire encodings.

ROADMAP item 1 (and the langbridge worker data plane it cites): the hot
path of the executor should move *columns*, not per-row ``dict`` envs.  A
:class:`ColumnBatch` is one fixed-size slice of one scan's output held as
parallel per-column value arrays (nulls are in-band ``None``; kernels that
need an explicit view call :meth:`ColumnBatch.null_mask`).  Site-side
operators pass batches by reference and work on whole columns:

* **Filter kernels** (:func:`compile_predicate`) compile a residual
  predicate into a selection-vector function ``kernel(batch, sel) ->
  sel'``.  Conjunctions short-circuit exactly like
  :func:`repro.sql.expressions.evaluate` (the right side only sees rows
  the left side kept), and the null semantics replicate ``evaluate`` bit
  for bit -- ``NULL != x`` is True, range comparisons against NULL are
  False, ``x IN (...)`` with a NULL operand is False even under ``NOT
  IN``.  Anything the compiler cannot prove equivalent returns ``None``
  and the operator falls back to per-row ``evaluate`` over the same batch,
  so behavior (including errors) is identical by construction; a kernel
  that discovers an incomparable pair mid-flight raises
  :class:`KernelFallback` for the same reason.
* **Wire encodings** (:func:`encode_batch` / :func:`decode_batch`): the
  Ship operator serializes each column under the cheapest of five
  self-describing encodings -- plain, dictionary (low-cardinality
  columns), run-length (sorted/flag columns), zigzag-varint delta (int
  columns) and front-coded prefixes (sorted-ish string columns).  Encoded
  sizes use a fixed byte model (:func:`value_wire_bytes`), so
  ``bytes_shipped`` is deterministic (DESIGN §7) and the network can
  charge per byte instead of per row.  Decoding is exact: every encoding
  round-trips values (and their types) unchanged.

The row-compatibility shim is :meth:`ColumnBatch.to_envs`: at the Ship
boundary batches are re-materialized into the same ``{qualified: value,
bare: value}`` envs the coordinator operators, DB-API surface, semantic
cache and workload manager always consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.records import Table
from repro.core.values import Money
from repro.sql.ast import (
    Between,
    BinaryOp,
    Column,
    Expr,
    InList,
    Like,
    Literal,
    UnaryOp,
)
from repro.sql.expressions import like_to_regex

# Rows per batch.  Large enough that per-batch overhead (kernel dispatch,
# encoding headers) amortizes to noise, small enough that a batch of wide
# strings stays cache-resident and pipelined operators keep peak memory
# bounded (see DESIGN §5f for the measured tradeoff).
DEFAULT_BATCH_SIZE = 1024

# Modeled (de)serialization cost, charged per *encoded* byte: encoding is
# producer-site work, decoding is coordinator work.  Deterministic by
# construction -- these never read the host clock.
ENCODE_SECONDS_PER_BYTE = 2e-9
DECODE_SECONDS_PER_BYTE = 1e-9

# Every serialized column carries a small self-description header
# (encoding tag, value count, name id).
COLUMN_HEADER_BYTES = 4


class KernelFallback(Exception):
    """A compiled kernel hit a case it cannot decide (e.g. incomparable
    types mid-column); the caller must re-run the batch through the row
    path, which reproduces ``evaluate``'s exact behavior and errors."""


class ColumnBatch:
    """One fixed-size slice of a scan's rows, stored column-wise.

    ``names`` are the qualified env keys (``binding.field``); ``aliases``
    maps bare field names to column indexes for fields that are
    unambiguous across the query's scans (mirroring
    :func:`repro.federation.physical.row_env`).  ``count`` is tracked
    explicitly so a batch projected down to zero columns still knows how
    many rows it carries.
    """

    __slots__ = ("names", "columns", "aliases", "count", "_index")

    def __init__(
        self,
        names: list[str],
        columns: list[list],
        aliases: dict[str, int],
        count: int | None = None,
    ) -> None:
        self.names = names
        self.columns = columns
        self.aliases = aliases
        self.count = count if count is not None else (len(columns[0]) if columns else 0)
        self._index: dict[str, int] | None = None

    def __len__(self) -> int:
        return self.count

    def index_of(self, key: str) -> int | None:
        """Column index for a qualified or (unambiguous) bare env key."""
        index = self._index
        if index is None:
            index = {name: i for i, name in enumerate(self.names)}
            index.update(self.aliases)
            self._index = index
        return index.get(key)

    def null_mask(self, column_index: int) -> list[bool]:
        """Explicit null mask for one column (True where the value is NULL)."""
        return [value is None for value in self.columns[column_index]]

    def take(self, selection: list[int]) -> "ColumnBatch":
        """Materialize the rows named by an ascending selection vector."""
        return ColumnBatch(
            self.names,
            [[column[i] for i in selection] for column in self.columns],
            self.aliases,
            len(selection),
        )

    def project(self, allowed: set[str]) -> "ColumnBatch":
        """Column-slice projection: keep columns whose env key is allowed.

        Kept columns are shared by reference -- projection copies nothing.
        """
        keep = [j for j, name in enumerate(self.names) if name in allowed]
        remap = {old: new for new, old in enumerate(keep)}
        return ColumnBatch(
            [self.names[j] for j in keep],
            [self.columns[j] for j in keep],
            {
                alias: remap[j]
                for alias, j in self.aliases.items()
                if alias in allowed and j in remap
            },
            self.count,
        )

    def env_at(self, i: int) -> dict[str, Any]:
        """One row's env (qualified keys plus unambiguous bare keys)."""
        env = {name: column[i] for name, column in zip(self.names, self.columns)}
        for alias, j in self.aliases.items():
            env[alias] = self.columns[j][i]
        return env

    def to_envs(self) -> list[dict[str, Any]]:
        """The row-compatibility shim: rebuild per-row env dicts."""
        keys = list(self.names) + list(self.aliases)
        if not keys:
            return [{} for _ in range(self.count)]
        cols = self.columns + [self.columns[j] for j in self.aliases.values()]
        return [dict(zip(keys, values)) for values in zip(*cols)]


def table_chunks(
    binding: str,
    table: Table,
    ambiguous: set[str],
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> list[ColumnBatch]:
    """Split one site's scan output table into fixed-size column batches."""
    fields = table.schema.fields
    names = [f"{binding}.{field_def.name}" for field_def in fields]
    aliases = {
        field_def.name: i
        for i, field_def in enumerate(fields)
        if field_def.name not in ambiguous
    }
    rows = table.rows
    chunks = []
    for start in range(0, len(rows), batch_size):
        slice_rows = rows[start : start + batch_size]
        columns = [list(column) for column in zip(*slice_rows)]
        if not columns:
            columns = [[] for _ in names]
        chunks.append(ColumnBatch(names, columns, aliases, len(slice_rows)))
    return chunks


# -- filter kernels ------------------------------------------------------------

Kernel = Callable[[ColumnBatch, list[int]], list[int]]

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=", "contains")


def compile_predicate(expr: Expr, layout: ColumnBatch) -> Kernel | None:
    """Compile a predicate into a selection-vector kernel, or ``None``.

    The returned kernel maps an ascending selection vector to the subset
    of row indexes where the predicate is truthy, preserving order.
    ``None`` means "not provably equivalent to :func:`evaluate`" -- the
    caller must use the row path for the whole batch.
    """
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            left = compile_predicate(expr.left, layout)
            right = compile_predicate(expr.right, layout)
            if left is None or right is None:
                return None
            # evaluate() short-circuits: the right side only ever runs on
            # rows the left side kept, so an error lurking in the right
            # operand surfaces (or not) exactly as in the row path.
            return lambda batch, sel: right(batch, left(batch, sel))
        if expr.op == "or":
            left = compile_predicate(expr.left, layout)
            right = compile_predicate(expr.right, layout)
            if left is None or right is None:
                return None

            def _or(batch: ColumnBatch, sel: list[int]) -> list[int]:
                hits = left(batch, sel)
                taken = set(hits)
                more = right(batch, [i for i in sel if i not in taken])
                return _merge_ascending(hits, more)

            return _or
        if expr.op in _COMPARISONS:
            left = _operand(expr.left, layout)
            right = _operand(expr.right, layout)
            if left is None or right is None:
                return None
            return _comparison_kernel(expr.op, left, right)
        return None
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            inner = compile_predicate(expr.operand, layout)
            if inner is None:
                return None

            def _not(batch: ColumnBatch, sel: list[int]) -> list[int]:
                hits = set(inner(batch, sel))
                return [i for i in sel if i not in hits]

            return _not
        if expr.op in ("is-null", "is-not-null"):
            if not isinstance(expr.operand, Column):
                return None
            idx = layout.index_of(expr.operand.qualified)
            if idx is None:
                return None
            want_null = expr.op == "is-null"

            def _nulls(batch: ColumnBatch, sel: list[int]) -> list[int]:
                mask = batch.null_mask(idx)
                return [i for i in sel if mask[i] is want_null]

            return _nulls
        return None
    if isinstance(expr, InList):
        return _in_list_kernel(expr, layout)
    if isinstance(expr, Between):
        return _between_kernel(expr, layout)
    if isinstance(expr, Like):
        return _like_kernel(expr, layout)
    return None


def _operand(expr: Expr, layout: ColumnBatch):
    if isinstance(expr, Literal):
        return ("lit", expr.value)
    if isinstance(expr, Column):
        idx = layout.index_of(expr.qualified)
        if idx is None:
            return None
        return ("col", idx)
    return None


def _merge_ascending(a: list[int], b: list[int]) -> list[int]:
    if not a:
        return b
    if not b:
        return a
    out: list[int] = []
    ia = ib = 0
    while ia < len(a) and ib < len(b):
        if a[ia] < b[ib]:
            out.append(a[ia])
            ia += 1
        else:
            out.append(b[ib])
            ib += 1
    out.extend(a[ia:])
    out.extend(b[ib:])
    return out


def _comparison_kernel(op: str, left, right) -> Kernel | None:
    lkind, lval = left
    rkind, rval = right
    if lkind == "lit" and rkind == "lit":
        return None  # constant predicate: rare, leave to the row path
    if lkind == "col" and rkind == "col":
        return _col_col_kernel(op, lval, rval)
    if lkind == "col":
        return _col_lit_kernel(op, lval, rval)
    # literal <op> column: flip range operators so the column is on the
    # left; =, != and the null rules are symmetric.  ``contains`` is not
    # symmetric (haystack CONTAINS needle), so it keeps its orientation.
    if op in _FLIP:
        return _col_lit_kernel(_FLIP[op], rval, lval)
    if op in ("=", "!="):
        return _col_lit_kernel(op, rval, lval)
    if op == "contains":
        return _lit_col_contains_kernel(lval, rval)
    return None


def _col_lit_kernel(op: str, idx: int, lit: Any) -> Kernel:
    if op == "=":
        if lit is None:
            return lambda batch, sel: [
                i for i in sel if batch.columns[idx][i] is None
            ]

        def _eq(batch: ColumnBatch, sel: list[int]) -> list[int]:
            col = batch.columns[idx]
            return [i for i in sel if (v := col[i]) is not None and v == lit]

        return _eq
    if op == "!=":
        if lit is None:
            return lambda batch, sel: [
                i for i in sel if batch.columns[idx][i] is not None
            ]

        def _ne(batch: ColumnBatch, sel: list[int]) -> list[int]:
            col = batch.columns[idx]
            return [i for i in sel if (v := col[i]) is None or v != lit]

        return _ne
    if op == "contains":
        if lit is None:
            return lambda batch, sel: []
        needle = str(lit).lower()

        def _contains(batch: ColumnBatch, sel: list[int]) -> list[int]:
            col = batch.columns[idx]
            return [
                i
                for i in sel
                if (v := col[i]) is not None and needle in str(v).lower()
            ]

        return _contains
    # Range comparisons: NULL on either side is False; an incomparable
    # pair aborts the kernel so the row path can raise its exact error.
    if lit is None:
        return lambda batch, sel: []

    def _range(batch: ColumnBatch, sel: list[int]) -> list[int]:
        col = batch.columns[idx]
        try:
            if op == "<":
                return [i for i in sel if (v := col[i]) is not None and v < lit]
            if op == "<=":
                return [i for i in sel if (v := col[i]) is not None and v <= lit]
            if op == ">":
                return [i for i in sel if (v := col[i]) is not None and v > lit]
            return [i for i in sel if (v := col[i]) is not None and v >= lit]
        except TypeError as error:
            raise KernelFallback() from error

    return _range


def _col_col_kernel(op: str, a: int, b: int) -> Kernel | None:
    if op == "=" or op == "!=":
        want_equal = op == "="

        def _eq(batch: ColumnBatch, sel: list[int]) -> list[int]:
            ca, cb = batch.columns[a], batch.columns[b]
            out = []
            for i in sel:
                x, y = ca[i], cb[i]
                if x is None or y is None:
                    equal = x is None and y is None
                else:
                    equal = bool(x == y)
                if equal is want_equal:
                    out.append(i)
            return out

        return _eq
    if op == "contains":

        def _contains(batch: ColumnBatch, sel: list[int]) -> list[int]:
            ca, cb = batch.columns[a], batch.columns[b]
            return [
                i
                for i in sel
                if (x := ca[i]) is not None
                and (y := cb[i]) is not None
                and str(y).lower() in str(x).lower()
            ]

        return _contains

    def _range(batch: ColumnBatch, sel: list[int]) -> list[int]:
        ca, cb = batch.columns[a], batch.columns[b]
        try:
            if op == "<":
                return [
                    i
                    for i in sel
                    if (x := ca[i]) is not None
                    and (y := cb[i]) is not None
                    and x < y
                ]
            if op == "<=":
                return [
                    i
                    for i in sel
                    if (x := ca[i]) is not None
                    and (y := cb[i]) is not None
                    and x <= y
                ]
            if op == ">":
                return [
                    i
                    for i in sel
                    if (x := ca[i]) is not None
                    and (y := cb[i]) is not None
                    and x > y
                ]
            return [
                i
                for i in sel
                if (x := ca[i]) is not None
                and (y := cb[i]) is not None
                and x >= y
            ]
        except TypeError as error:
            raise KernelFallback() from error

    return _range


def _lit_col_contains_kernel(lit: Any, idx: int) -> Kernel:
    """``literal CONTAINS column``: the haystack is constant."""
    if lit is None:
        return lambda batch, sel: []
    haystack = str(lit).lower()

    def _contains(batch: ColumnBatch, sel: list[int]) -> list[int]:
        col = batch.columns[idx]
        return [
            i
            for i in sel
            if (v := col[i]) is not None and str(v).lower() in haystack
        ]

    return _contains


def _in_list_kernel(expr: InList, layout: ColumnBatch) -> Kernel | None:
    if not isinstance(expr.operand, Column):
        return None
    idx = layout.index_of(expr.operand.qualified)
    if idx is None:
        return None
    if not all(isinstance(item, Literal) for item in expr.items):
        return None
    values = [item.value for item in expr.items]
    negated = expr.negated
    try:
        value_set: set | None = set(values)
    except TypeError:
        value_set = None

    def _in(batch: ColumnBatch, sel: list[int]) -> list[int]:
        col = batch.columns[idx]
        out = []
        for i in sel:
            v = col[i]
            if v is None:
                continue  # NULL IN / NOT IN is False either way
            if value_set is not None:
                try:
                    hit = v in value_set
                except TypeError:
                    hit = any(item == v for item in values)
            else:
                hit = any(item == v for item in values)
            if hit != negated:
                out.append(i)
        return out

    return _in


def _between_kernel(expr: Between, layout: ColumnBatch) -> Kernel | None:
    if not isinstance(expr.operand, Column):
        return None
    idx = layout.index_of(expr.operand.qualified)
    if idx is None:
        return None
    if not (isinstance(expr.low, Literal) and isinstance(expr.high, Literal)):
        return None
    low, high = expr.low.value, expr.high.value
    negated = expr.negated

    def _between(batch: ColumnBatch, sel: list[int]) -> list[int]:
        col = batch.columns[idx]
        out = []
        try:
            for i in sel:
                v = col[i]
                if v is None:
                    continue
                if (low <= v <= high) != negated:
                    out.append(i)
        except TypeError as error:
            raise KernelFallback() from error
        return out

    return _between


def _like_kernel(expr: Like, layout: ColumnBatch) -> Kernel | None:
    if not isinstance(expr.operand, Column):
        return None
    idx = layout.index_of(expr.operand.qualified)
    if idx is None:
        return None
    regex = like_to_regex(expr.pattern)
    negated = expr.negated

    def _like(batch: ColumnBatch, sel: list[int]) -> list[int]:
        col = batch.columns[idx]
        return [
            i
            for i in sel
            if (v := col[i]) is not None
            and ((regex.fullmatch(str(v)) is not None) != negated)
        ]

    return _like


# -- wire encodings ------------------------------------------------------------


def value_wire_bytes(value: Any) -> int:
    """Bytes one value costs under naive (plain) row serialization."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, Money):
        return 16
    if isinstance(value, str):
        return 2 + len(value.encode("utf-8"))
    return 2 + len(str(value).encode("utf-8"))


def env_wire_bytes(env: dict[str, Any]) -> int:
    """Naive wire size of one row env (each field counted once)."""
    values = [v for k, v in env.items() if "." in k]
    if not values and env:
        values = list(env.values())
    return COLUMN_HEADER_BYTES + sum(value_wire_bytes(v) for v in values)


@dataclass
class EncodedColumn:
    """One column serialized under its cheapest encoding."""

    name: str
    encoding: str  # plain | dict | rle | delta | bits | scaled | prefix
    count: int
    payload: Any
    encoded_bytes: int
    raw_bytes: int


@dataclass
class EncodedBatch:
    """One ColumnBatch on the wire."""

    names: list[str]
    aliases: dict[str, int]
    count: int
    columns: list[EncodedColumn]

    @property
    def encoded_bytes(self) -> int:
        return sum(column.encoded_bytes for column in self.columns)

    @property
    def raw_bytes(self) -> int:
        return sum(column.raw_bytes for column in self.columns)


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _varint_len(n: int) -> int:
    return max(1, (n.bit_length() + 6) // 7)


def encode_column(name: str, values: list) -> EncodedColumn:
    """Serialize one column under the cheapest applicable encoding."""
    count = len(values)
    raw = COLUMN_HEADER_BYTES + sum(value_wire_bytes(v) for v in values)
    encoding, payload, size = "plain", list(values), raw

    if count:
        # Dictionary: first-appearance codes.  Keys pair the value with its
        # type so 1/1.0/True never collapse into one entry; floats key by
        # repr so 0.0/-0.0 stay distinct (and all NaNs share one entry).
        mapping: dict = {}
        dict_values: list = []
        codes: list[int] = []
        hashable = True
        try:
            for v in values:
                key = (type(v), repr(v)) if type(v) is float else (type(v), v)
                code = mapping.get(key, -1)
                if code < 0:
                    code = mapping[key] = len(dict_values)
                    dict_values.append(v)
                codes.append(code)
        except TypeError:
            hashable = False
        if hashable and len(dict_values) < count and len(dict_values) <= 65536:
            index_bytes = 1 if len(dict_values) <= 256 else 2
            dict_size = (
                COLUMN_HEADER_BYTES
                + sum(value_wire_bytes(v) for v in dict_values)
                + count * index_bytes
            )
            if dict_size < size:
                encoding, payload, size = "dict", (dict_values, codes), dict_size

        # Run-length: runs compare by (type, value) so True/1 stay distinct;
        # floats compare by repr so 0.0/-0.0 never merge and equal-repr NaNs
        # do (bit-equivalent on decode).
        runs: list[tuple[Any, int]] = []
        for v in values:
            if runs:
                last, n = runs[-1]
                if type(last) is type(v):
                    if type(v) is float:
                        same = repr(last) == repr(v)
                    else:
                        try:
                            same = bool(last == v)
                        except Exception:
                            same = False
                    if same:
                        runs[-1] = (last, n + 1)
                        continue
            runs.append((v, 1))
        rle_size = COLUMN_HEADER_BYTES + sum(
            value_wire_bytes(v) + 2 for v, _ in runs
        )
        if rle_size < size:
            encoding, payload, size = "rle", list(runs), rle_size

        # Delta: exact-int columns only (bool is excluded so decode
        # preserves types), zigzag-varint deltas.
        if all(type(v) is int for v in values):
            deltas = [values[i] - values[i - 1] for i in range(1, count)]
            delta_size = (
                COLUMN_HEADER_BYTES
                + 9
                + sum(_varint_len(_zigzag(d)) for d in deltas)
            )
            if delta_size < size:
                encoding, payload, size = "delta", (values[0], deltas), delta_size

        # Bit-packing: pure flag columns (bool or NULL) at two bits per
        # value -- random flags defeat RLE but still pack four values per
        # byte against one byte each under plain.
        if all(v is None or type(v) is bool for v in values):
            bits_size = COLUMN_HEADER_BYTES + (count + 3) // 4
            if bits_size < size:
                encoding, payload, size = "bits", list(values), bits_size

        # Scaled-decimal delta: float columns holding short decimals
        # (prices, distances) store integer multiples of 1/scale,
        # delta-coded.  Chosen only when every value provably round-trips
        # bit-exactly through the scaling.
        if all(type(v) is float for v in values):
            for scale in (10, 100):
                scaled: "list[int] | None" = []
                for v in values:
                    try:
                        i = round(v * scale)
                    except (OverflowError, ValueError):  # inf, nan
                        scaled = None
                        break
                    if repr(i / scale) != repr(v):
                        scaled = None
                        break
                    scaled.append(i)
                if scaled is None:
                    continue
                deltas = [scaled[i] - scaled[i - 1] for i in range(1, count)]
                scaled_size = (
                    COLUMN_HEADER_BYTES
                    + 1  # the scale
                    + 9
                    + sum(_varint_len(_zigzag(d)) for d in deltas)
                )
                if scaled_size < size:
                    encoding, payload, size = (
                        "scaled",
                        (scale, scaled[0], deltas),
                        scaled_size,
                    )
                break

        # Prefix (front coding): string columns that share leading bytes
        # with their predecessor (sorted or clustered identifiers).
        if any(type(v) is str for v in values) and all(
            v is None or type(v) is str for v in values
        ):
            entries: list = []
            prefix_size = COLUMN_HEADER_BYTES
            prev = ""
            for v in values:
                if v is None:
                    entries.append(None)
                    prefix_size += 1
                    continue
                shared = 0
                limit = min(len(prev), len(v))
                while shared < limit and prev[shared] == v[shared]:
                    shared += 1
                suffix = v[shared:]
                entries.append((shared, suffix))
                prefix_size += 2 + len(suffix.encode("utf-8"))
                prev = v
            if prefix_size < size:
                encoding, payload, size = "prefix", entries, prefix_size

    return EncodedColumn(name, encoding, count, payload, size, raw)


def decode_column(column: EncodedColumn) -> list:
    """Exact inverse of :func:`encode_column`."""
    if column.encoding == "plain":
        return list(column.payload)
    if column.encoding == "dict":
        dict_values, codes = column.payload
        return [dict_values[code] for code in codes]
    if column.encoding == "rle":
        out: list = []
        for value, run in column.payload:
            out.extend([value] * run)
        return out
    if column.encoding == "delta":
        first, deltas = column.payload
        out = [first]
        current = first
        for delta in deltas:
            current += delta
            out.append(current)
        return out
    if column.encoding == "bits":
        return list(column.payload)
    if column.encoding == "scaled":
        scale, first, deltas = column.payload
        ints = [first]
        current = first
        for delta in deltas:
            current += delta
            ints.append(current)
        return [i / scale for i in ints]
    if column.encoding == "prefix":
        out = []
        prev = ""
        for entry in column.payload:
            if entry is None:
                out.append(None)
                continue
            shared, suffix = entry
            value = prev[:shared] + suffix
            out.append(value)
            prev = value
        return out
    raise ValueError(f"unknown column encoding {column.encoding!r}")


def encode_batch(batch: ColumnBatch) -> EncodedBatch:
    """Serialize a batch column-by-column for the wire."""
    return EncodedBatch(
        names=list(batch.names),
        aliases=dict(batch.aliases),
        count=batch.count,
        columns=[
            encode_column(name, column)
            for name, column in zip(batch.names, batch.columns)
        ],
    )


def decode_batch(encoded: EncodedBatch) -> ColumnBatch:
    """Exact inverse of :func:`encode_batch`."""
    return ColumnBatch(
        list(encoded.names),
        [decode_column(column) for column in encoded.columns],
        dict(encoded.aliases),
        encoded.count,
    )

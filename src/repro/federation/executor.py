"""The distributed executor.

Takes a :class:`PhysicalPlan` (a logical tree plus, for every scan, the
access path the optimizer chose: fragment replicas at sites, or a
materialized view) and runs it:

* fragment scans execute **in parallel** across their sites -- the scan
  phase costs the *slowest* assignment, not the sum;
* fetched rows ship to the coordinator site over the network model;
* joins (hash join on equality conditions, nested loop otherwise),
  filters, aggregation, sort and limit run at the coordinator;
* every second of work lands on some site's backlog, so concurrent queries
  interfere realistically -- which is what makes load balancing measurable.

The report records response time, per-site work, rows moved and the
worst-case staleness of the access paths used (0 for all-live plans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.connect.source import apply_predicates
from repro.core.errors import QueryError, SourceUnavailableError
from repro.core.records import Table
from repro.core.schema import DataType, Field, Schema
from repro.core.values import Money
from repro.federation.catalog import FederationCatalog, Fragment
from repro.federation.views import MaterializedView
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    Column,
    Expr,
    FuncCall,
    SelectItem,
    Star,
)
from repro.sql.expressions import evaluate
from repro.sql.planner import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    scans_in,
)

Env = dict[str, Any]


@dataclass
class FragmentChoice:
    """One fragment scan placed on one site."""

    fragment: Fragment
    site_name: str


@dataclass
class ScanAssignment:
    """The optimizer's decision for one scan leaf."""

    binding: str
    table_name: str
    kind: str  # "fragments" | "view" | "cache"
    choices: list[FragmentChoice] = field(default_factory=list)
    view: MaterializedView | None = None
    text_filter: tuple[str, str] | None = None  # (column, query) -> use text index
    cached_table: "Table | None" = None  # for kind "cache"
    cached_staleness: float = 0.0


@dataclass
class PhysicalPlan:
    """A logical plan plus all physical decisions."""

    logical: PlanNode
    assignments: dict[str, ScanAssignment]
    coordinator: str
    optimizer: str = ""
    optimization_seconds: float = 0.0  # real wall-clock spent deciding
    sites_contacted: int = 0
    total_price: float = 0.0


@dataclass
class ExecutionReport:
    """Accounting for one executed query."""

    response_seconds: float = 0.0
    rows_fetched: int = 0
    rows_returned: int = 0
    staleness_seconds: float = 0.0
    network_seconds: float = 0.0
    site_work: dict[str, float] = field(default_factory=dict)
    price: float = 0.0
    failovers: int = 0  # scans re-routed after a site died mid-query
    # Live fragment-scan outputs, for the engine's semantic cache to store.
    scan_tables: dict[str, Table] = field(default_factory=dict)


class Executor:
    """Runs physical plans against the catalog's sites."""

    def __init__(self, catalog: FederationCatalog) -> None:
        self.catalog = catalog

    # -- public API -----------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> tuple[Table, ExecutionReport]:
        report = ExecutionReport(price=plan.total_price)
        scan_results: dict[str, tuple[list[Env], Schema]] = {}
        scan_elapsed = 0.0

        ambiguous = self._ambiguous_fields(plan)
        # Null-extension rows for outer joins: one all-None env per binding.
        self._null_envs = {
            binding: self._row_env(
                binding,
                self._schema_of(assignment),
                (None,) * len(self._schema_of(assignment)),
                ambiguous,
            )
            for binding, assignment in plan.assignments.items()
        }
        for binding, assignment in plan.assignments.items():
            envs, schema, elapsed = self._materialize_scan(
                plan, assignment, ambiguous, report
            )
            scan_results[binding] = (envs, schema)
            scan_elapsed = max(scan_elapsed, elapsed)

        coordinator = self.catalog.site(plan.coordinator)
        envs, coordinator_rows = self._run_node(plan.logical, plan, scan_results)
        coordinator_work = coordinator.process(max(coordinator_rows, len(envs)))
        queue_delay = 0.0  # process() already queued; delay folded into backlog

        report.site_work[coordinator.name] = (
            report.site_work.get(coordinator.name, 0.0) + coordinator_work
        )
        report.response_seconds = scan_elapsed + coordinator_work + queue_delay
        report.rows_returned = len(envs)

        table = self._envs_to_table(plan, envs)
        return table, report

    # -- scan materialization -----------------------------------------------------

    def _ambiguous_fields(self, plan: PhysicalPlan) -> set[str]:
        """Field names appearing in more than one scan's schema."""
        seen: set[str] = set()
        ambiguous: set[str] = set()
        for assignment in plan.assignments.values():
            schema = self._schema_of(assignment)
            for name in schema.field_names:
                if name in seen:
                    ambiguous.add(name)
                seen.add(name)
        return ambiguous

    def _schema_of(self, assignment: ScanAssignment) -> Schema:
        if assignment.kind == "view":
            assert assignment.view is not None
            return assignment.view.schema
        return self.catalog.entry(assignment.table_name).schema

    def _materialize_scan(
        self,
        plan: PhysicalPlan,
        assignment: ScanAssignment,
        ambiguous: set[str],
        report: ExecutionReport,
    ) -> tuple[list[Env], Schema, float]:
        scan_node = self._find_scan(plan.logical, assignment.binding)
        predicates = scan_node.pushdown if scan_node is not None else []
        now = self.catalog.clock.now()

        if assignment.kind == "view":
            table, elapsed = self._scan_view(plan, assignment, predicates, report)
            report.staleness_seconds = max(
                report.staleness_seconds, assignment.view.staleness(now)
            )
        elif assignment.kind == "fragments":
            table, elapsed = self._scan_fragments(plan, assignment, predicates, report)
        elif assignment.kind == "cache":
            table, elapsed = self._scan_cache(plan, assignment, report)
        else:
            raise QueryError(f"unknown scan kind {assignment.kind!r}")

        if assignment.text_filter is not None:
            table = self._apply_text_filter(assignment, table)
        elif assignment.kind == "fragments":
            # Expose the live result so the engine's semantic cache can
            # remember this predicate region (text-filtered scans are not
            # cacheable under the pushdown key alone).
            report.scan_tables[assignment.binding] = table

        report.rows_fetched += len(table)
        schema = table.schema
        envs = [
            self._row_env(assignment.binding, schema, values, ambiguous)
            for values in table.rows
        ]
        return envs, schema, elapsed

    def _scan_fragments(
        self,
        plan: PhysicalPlan,
        assignment: ScanAssignment,
        predicates,
        report: ExecutionReport,
    ) -> tuple[Table, float]:
        if not assignment.choices:
            raise QueryError(
                f"scan of {assignment.table_name!r} has no fragment choices"
            )
        tables: list[Table] = []
        elapsed = 0.0
        for choice in assignment.choices:
            result, work, delay, site_name = self._scan_with_failover(
                choice, predicates, report
            )
            transfer = self.catalog.network.transfer_seconds(
                site_name, plan.coordinator, len(result.table)
            )
            report.site_work[site_name] = report.site_work.get(site_name, 0.0) + work
            report.network_seconds += transfer
            elapsed = max(elapsed, delay + work + transfer)
            tables.append(result.table)
        combined = tables[0]
        for extra in tables[1:]:
            combined = combined.union_all(extra)
        return combined, elapsed

    def _scan_with_failover(
        self,
        choice: FragmentChoice,
        predicates,
        report: ExecutionReport,
    ):
        """Run one fragment scan, rerouting to another live replica if the
        chosen site died after optimization (§3.2 C8's robustness under
        "issues that lie outside the control of the query system")."""
        candidates = [choice.site_name] + [
            name
            for name in choice.fragment.replica_sites()
            if name != choice.site_name
        ]
        last_error: Exception | None = None
        for site_name in candidates:
            site = self.catalog.site(site_name)
            if not site.up:
                continue
            try:
                result, work, delay = site.execute_scan(
                    choice.fragment.replicas[site_name], predicates
                )
            except SourceUnavailableError as error:
                last_error = error
                continue
            if site_name != choice.site_name:
                report.failovers += 1
            return result, work, delay, site_name
        raise QueryError(
            f"every replica of {choice.fragment.table_name}/"
            f"{choice.fragment.fragment_id} is unavailable"
            + (f" (last error: {last_error})" if last_error else "")
        )

    def _scan_view(
        self,
        plan: PhysicalPlan,
        assignment: ScanAssignment,
        predicates,
        report: ExecutionReport,
    ) -> tuple[Table, float]:
        view = assignment.view
        if view is None or view.data is None:
            raise QueryError(f"view scan for {assignment.table_name!r} has no data")
        site = self.catalog.site(view.site_name)
        table = apply_predicates(view.data, predicates)
        work = site.process(len(table))
        transfer = self.catalog.network.transfer_seconds(
            view.site_name, plan.coordinator, len(table)
        )
        report.site_work[site.name] = report.site_work.get(site.name, 0.0) + work
        report.network_seconds += transfer
        return table, work + transfer

    def _scan_cache(
        self,
        plan: PhysicalPlan,
        assignment: ScanAssignment,
        report: ExecutionReport,
    ) -> tuple[Table, float]:
        """Serve a scan from the engine's semantic cache (local rows)."""
        table = assignment.cached_table
        if table is None:
            raise QueryError(
                f"cache scan for {assignment.table_name!r} has no cached rows"
            )
        coordinator = self.catalog.site(plan.coordinator)
        work = coordinator.process(len(table))
        report.site_work[coordinator.name] = (
            report.site_work.get(coordinator.name, 0.0) + work
        )
        report.staleness_seconds = max(
            report.staleness_seconds, assignment.cached_staleness
        )
        return table, work

    def _apply_text_filter(self, assignment: ScanAssignment, table: Table) -> Table:
        entry = self.catalog.entry(assignment.table_name)
        if entry.text_index is None or entry.key_column is None:
            raise QueryError(
                f"MATCH on {assignment.table_name!r} but no text index is registered"
            )
        _, query = assignment.text_filter
        hits = {
            hit.doc_id
            for hit in entry.text_index.search(query, limit=entry.estimated_rows() or 1000)
        }
        key_index = table.schema.index_of(entry.key_column)
        filtered = Table(table.schema, validate=False)
        filtered.rows = [row for row in table.rows if row[key_index] in hits]
        return filtered

    @staticmethod
    def _row_env(
        binding: str, schema: Schema, values: tuple, ambiguous: set[str]
    ) -> Env:
        env: Env = {}
        for field_def, value in zip(schema.fields, values):
            env[f"{binding}.{field_def.name}"] = value
            if field_def.name not in ambiguous:
                env[field_def.name] = value
        return env

    @staticmethod
    def _find_scan(node: PlanNode, binding: str) -> ScanNode | None:
        if isinstance(node, ScanNode):
            return node if node.binding == binding else None
        for child in node.children():
            found = Executor._find_scan(child, binding)
            if found is not None:
                return found
        return None

    # -- logical evaluation at the coordinator ----------------------------------------

    def _run_node(
        self,
        node: PlanNode,
        plan: PhysicalPlan,
        scans: dict[str, tuple[list[Env], Schema]],
    ) -> tuple[list[Env], int]:
        """Evaluate ``node``; returns (envs, rows_processed_for_costing)."""
        if isinstance(node, ScanNode):
            envs, _ = scans[node.binding]
            return list(envs), len(envs)
        if isinstance(node, FilterNode):
            child_envs, processed = self._run_node(node.child, plan, scans)
            kept = [env for env in child_envs if evaluate(node.condition, env)]
            return kept, processed + len(child_envs)
        if isinstance(node, JoinNode):
            return self._run_join(node, plan, scans)
        if isinstance(node, ProjectNode):
            child_envs, processed = self._run_node(node.child, plan, scans)
            projected = self._project(node, child_envs, plan)
            return projected, processed + len(child_envs)
        if isinstance(node, AggregateNode):
            child_envs, processed = self._run_node(node.child, plan, scans)
            grouped = self._aggregate(node, child_envs)
            return grouped, processed + len(child_envs)
        if isinstance(node, SortNode):
            child_envs, processed = self._run_node(node.child, plan, scans)
            ordered = self._sort(node, child_envs)
            return ordered, processed + len(child_envs)
        if isinstance(node, LimitNode):
            child_envs, processed = self._run_node(node.child, plan, scans)
            return child_envs[:node.limit], processed
        raise QueryError(f"cannot execute plan node {node!r}")

    def _run_join(
        self,
        node: JoinNode,
        plan: PhysicalPlan,
        scans: dict[str, tuple[list[Env], Schema]],
    ) -> tuple[list[Env], int]:
        left_envs, left_processed = self._run_node(node.left, plan, scans)
        right_envs, right_processed = self._run_node(node.right, plan, scans)
        processed = left_processed + right_processed + len(left_envs) + len(right_envs)

        outer = node.join_type == "left"
        null_right: Env = {}
        if outer:
            for scan in scans_in(node.right):
                null_right.update(self._null_envs.get(scan.binding, {}))

        equality = self._equality_keys(node.condition, left_envs, right_envs)
        joined: list[Env] = []
        if equality is not None:
            left_key, right_key = equality
            buckets: dict[Any, list[Env]] = {}
            for env in right_envs:
                buckets.setdefault(env.get(right_key), []).append(env)
            for left_env in left_envs:
                value = left_env.get(left_key)
                matches = buckets.get(value, ()) if value is not None else ()
                if matches:
                    for right_env in matches:
                        joined.append({**left_env, **right_env})
                elif outer:
                    joined.append({**left_env, **null_right})
        else:
            for left_env in left_envs:
                matched = False
                for right_env in right_envs:
                    merged = {**left_env, **right_env}
                    if evaluate(node.condition, merged):
                        joined.append(merged)
                        matched = True
                if outer and not matched:
                    joined.append({**left_env, **null_right})
            processed += len(left_envs) * max(1, len(right_envs))
        return joined, processed

    @staticmethod
    def _equality_keys(
        condition: Expr, left_envs: list[Env], right_envs: list[Env]
    ) -> tuple[str, str] | None:
        """Detect ``left.col = right.col`` to enable the hash join."""
        if not (isinstance(condition, BinaryOp) and condition.op == "="):
            return None
        if not (isinstance(condition.left, Column) and isinstance(condition.right, Column)):
            return None
        if not left_envs or not right_envs:
            return None
        first_left, first_right = left_envs[0], right_envs[0]
        a, b = condition.left.qualified, condition.right.qualified
        if a in first_left and b in first_right:
            return a, b
        if b in first_left and a in first_right:
            return b, a
        return None

    # -- projection / aggregation / sort ------------------------------------------------

    def _project(
        self, node: ProjectNode, envs: list[Env], plan: PhysicalPlan
    ) -> list[Env]:
        names = self._output_names(node.items, plan)
        projected: list[Env] = []
        for env in envs:
            out: Env = {}
            for item, name in zip(self._expand_items(node.items, plan), names):
                out[name] = evaluate(item.expr, env)
            projected.append(out)
        if node.distinct:
            seen: set[tuple] = set()
            unique: list[Env] = []
            for env in projected:
                key = tuple(env[name] for name in names)
                try:
                    hashable = key
                    if hashable not in seen:
                        seen.add(hashable)
                        unique.append(env)
                except TypeError:
                    unique.append(env)
            projected = unique
        return projected

    def _expand_items(
        self, items: list[SelectItem], plan: PhysicalPlan
    ) -> list[SelectItem]:
        """Replace ``*`` / ``alias.*`` with explicit column items."""
        expanded: list[SelectItem] = []
        for item in items:
            if not isinstance(item.expr, Star):
                expanded.append(item)
                continue
            for binding, assignment in plan.assignments.items():
                if item.expr.qualifier is not None and item.expr.qualifier != binding:
                    continue
                schema = self._schema_of(assignment)
                for field_def in schema.fields:
                    expanded.append(
                        SelectItem(Column(field_def.name, qualifier=binding))
                    )
        return expanded

    def _output_names(self, items: list[SelectItem], plan: PhysicalPlan) -> list[str]:
        names: list[str] = []
        used: set[str] = set()
        for i, item in enumerate(self._expand_items(items, plan)):
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, Column):
                name = item.expr.name
            elif isinstance(item.expr, FuncCall):
                name = item.expr.name
            else:
                name = f"col{i}"
            base = name
            suffix = 1
            while name in used:
                suffix += 1
                name = f"{base}_{suffix}"
            used.add(name)
            names.append(name)
        return names

    def _aggregate(self, node: AggregateNode, envs: list[Env]) -> list[Env]:
        groups: dict[tuple, list[Env]] = {}
        if node.group_by:
            for env in envs:
                key = tuple(evaluate(g, env) for g in node.group_by)
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = list(envs)

        names = self._aggregate_names(node.items)
        results: list[Env] = []
        for key in groups:
            group_envs = groups[key]
            if not group_envs and node.group_by:
                continue
            out: Env = {}
            for item, name in zip(node.items, names):
                out[name] = self._eval_with_aggregates(item.expr, group_envs)
            if node.having is not None:
                if not self._eval_with_aggregates(node.having, group_envs, boolean=True):
                    continue
            results.append(out)
        # Deterministic output order: by group key representation.
        results.sort(key=lambda env: tuple(repr(v) for v in env.values()))
        return results

    @staticmethod
    def _aggregate_names(items: list[SelectItem]) -> list[str]:
        names = []
        for i, item in enumerate(items):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, Column):
                names.append(item.expr.name)
            elif isinstance(item.expr, FuncCall):
                names.append(item.expr.name)
            else:
                names.append(f"col{i}")
        return names

    def _eval_with_aggregates(
        self, expr: Expr, group_envs: list[Env], boolean: bool = False
    ) -> Any:
        """Evaluate an expression that may contain aggregate calls."""
        value = self._eval_aggregate_expr(expr, group_envs)
        return bool(value) if boolean else value

    def _eval_aggregate_expr(self, expr: Expr, group_envs: list[Env]) -> Any:
        if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
            return self._compute_aggregate(expr, group_envs)
        if isinstance(expr, BinaryOp):
            left = self._eval_aggregate_expr(expr.left, group_envs)
            right = self._eval_aggregate_expr(expr.right, group_envs)
            return evaluate(
                BinaryOp(expr.op, _lit(left), _lit(right)), {}
            )
        # Non-aggregate sub-expression: evaluate against a representative row.
        representative = group_envs[0] if group_envs else {}
        return evaluate(expr, representative)

    @staticmethod
    def _compute_aggregate(call: FuncCall, group_envs: list[Env]) -> Any:
        if call.star:
            if call.name != "count":
                raise QueryError(f"{call.name}(*) is not a valid aggregate")
            return len(group_envs)
        if len(call.args) != 1:
            raise QueryError(f"aggregate {call.name} takes exactly one argument")
        values = [evaluate(call.args[0], env) for env in group_envs]
        values = [v for v in values if v is not None]
        if call.name == "count":
            return len(values)
        if not values:
            return None
        if call.name == "sum":
            total = values[0]
            for value in values[1:]:
                total = total + value
            return total
        if call.name == "avg":
            total = values[0]
            for value in values[1:]:
                total = total + value
            return total / len(values)
        if call.name == "min":
            return min(values)
        if call.name == "max":
            return max(values)
        raise QueryError(f"unknown aggregate {call.name!r}")

    @staticmethod
    def _sort(node: SortNode, envs: list[Env]) -> list[Env]:
        ordered = list(envs)
        # Stable sorts applied in reverse order give multi-key semantics.
        for order in reversed(node.order_by):
            ordered.sort(
                key=lambda env: _sort_key(evaluate(order.expr, env)),
                reverse=order.descending,
            )
        return ordered

    # -- output construction -------------------------------------------------------------

    def _envs_to_table(self, plan: PhysicalPlan, envs: list[Env]) -> Table:
        names = self._final_names(plan.logical, plan, envs)
        rows = [tuple(env.get(name) for name in names) for env in envs]
        fields = []
        for i, name in enumerate(names):
            column_values = [row[i] for row in rows]
            fields.append(Field(_safe_name(name), _infer_dtype(column_values)))
        table = Table(Schema("result", tuple(fields)), validate=False)
        table.rows = rows
        return table

    def _final_names(
        self, node: PlanNode, plan: PhysicalPlan, envs: list[Env]
    ) -> list[str]:
        if isinstance(node, (SortNode, LimitNode)):
            return self._final_names(node.child, plan, envs)
        if isinstance(node, ProjectNode):
            return self._output_names(node.items, plan)
        if isinstance(node, AggregateNode):
            return self._aggregate_names(node.items)
        # Bare scan/filter/join tree (no projection): emit every env key that
        # is a bare (unqualified) name, in first-env order.
        if envs:
            return [k for k in envs[0] if "." not in k]
        return []


def _lit(value: Any):
    from repro.sql.ast import Literal

    return Literal(value)


def _sort_key(value: Any) -> tuple:
    """None sorts first; mixed types keep a stable, comparable form."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    if isinstance(value, Money):
        return (3, value.currency, value.amount)
    return (4, str(value))


def _safe_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return cleaned or "col"


def _infer_dtype(values: list[Any]) -> DataType:
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return DataType.BOOLEAN
        if isinstance(value, int):
            return DataType.INTEGER
        if isinstance(value, float):
            return DataType.FLOAT
        if isinstance(value, Money):
            return DataType.MONEY
        return DataType.STRING
    return DataType.STRING

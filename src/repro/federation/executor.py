"""The distributed executor: drives a compiled physical operator tree.

The execution machinery itself lives in :mod:`repro.federation.physical`:
the optimizers produce a :class:`PhysicalPlan` (logical tree + per-scan
access path), :class:`~repro.federation.physical.PhysicalPlanner` compiles
it into site-side operators (SiteScan, SiteFilter, SiteProject,
PartialAggregate), an explicit Ship over the network model, and streaming
coordinator operators (joins, residual filters, final aggregation, sort,
limit).  The :class:`Executor` here opens the root, drains it, and settles
the timing model:

* site-side batches run **in parallel** across their sites -- the scan
  phase costs the *slowest* pipeline, not the sum;
* every second of work lands on some site's backlog, so concurrent
  queries interfere realistically -- which makes load balancing measurable;
* response time is slowest-scan-pipeline plus serial coordinator work.

The report records response time, per-site work, rows fetched vs rows
actually shipped across the network, worst-case access-path staleness, and
a per-operator stats tree (rows in/out, seconds, placement) that the engine
renders as ``EXPLAIN ANALYZE``.

The physical-plan dataclasses are re-exported here for compatibility:
``FragmentChoice``, ``ScanAssignment``, ``PhysicalPlan``,
``ExecutionReport``.
"""

from __future__ import annotations

from repro.core.records import Table
from repro.federation.catalog import FederationCatalog
from repro.federation.health import RetryPolicy, SiteHealthTracker
from repro.federation.physical import (
    Env,
    ExecContext,
    ExecutionReport,
    FragmentChoice,
    PhysicalPlan,
    PhysicalPlanner,
    ScanAssignment,
    envs_to_table,
)

__all__ = [
    "Env",
    "ExecutionReport",
    "Executor",
    "FragmentChoice",
    "PhysicalPlan",
    "ScanAssignment",
]


class Executor:
    """Runs physical plans against the catalog's sites.

    ``health`` (a :class:`SiteHealthTracker`) receives every scan outcome;
    ``retry`` bounds and prices scan-level failover; ``cache`` is the
    engine's semantic cache, consulted as a last-resort covering copy for
    fragments with no live replica.
    """

    def __init__(
        self,
        catalog: FederationCatalog,
        health: SiteHealthTracker | None = None,
        retry: RetryPolicy | None = None,
        cache=None,
        columnar: bool = True,
        artifacts=None,
    ) -> None:
        self.catalog = catalog
        self.planner = PhysicalPlanner(catalog)
        self.health = health
        self.retry = retry or RetryPolicy()
        self.cache = cache
        # The stage-artifact store (repro.federation.artifacts), consulted
        # and fed at the Ship boundary of every hashable stage.
        self.artifacts = artifacts
        # Batch-at-a-time columnar site-side execution; False selects the
        # legacy row-at-a-time path (results are identical -- see
        # tests/test_columnar_execution.py).
        self.columnar = columnar

    def execute(
        self,
        plan: PhysicalPlan,
        degraded_ok: bool = False,
        max_staleness: float | None = None,
        reuse_artifacts: bool = True,
        reopt=None,
    ) -> tuple[Table, ExecutionReport]:
        report = ExecutionReport(price=plan.total_price)
        # Recompile every time: assignments may have changed since the
        # optimizer attached a tree (cache swap, text-filter annotation),
        # and operators hold per-execution state.
        root = self.planner.compile(plan)
        ctx = ExecContext(
            self.catalog,
            plan,
            report,
            health=self.health,
            retry=self.retry,
            degraded_ok=degraded_ok,
            cache=self.cache,
            max_staleness=max_staleness,
            columnar=self.columnar,
            artifacts=self.artifacts,
            reuse_artifacts=reuse_artifacts,
            reopt=reopt,
        )

        root.open(ctx)
        envs: list[Env] = []
        while (env := root.next()) is not None:
            envs.append(env)
        root.close()

        report.response_seconds = ctx.scan_elapsed + ctx.coordinator_seconds
        if reopt is not None:
            # Every re-quote costs modeled time whether or not it migrated
            # -- the economy pays for its own adaptivity.
            report.response_seconds += reopt.modeled_seconds
            report.reoptimizations = reopt.attempts
            report.migrated_stages = reopt.migrations
            report.reopt_wasted_seconds = reopt.wasted_seconds
            report.reopt_events = list(reopt.events)
        report.rows_returned = len(envs)
        report.operators = root.stats_tree()
        report.unreachable_fragments = list(ctx.unreachable_fragments)
        report.dead_sites = sorted(ctx.dead_sites)
        if ctx.unreachable_rows > 0:
            report.degraded = True
            if ctx.scan_total_rows > 0:
                report.completeness = (
                    ctx.scan_total_rows - ctx.unreachable_rows
                ) / ctx.scan_total_rows
            else:
                report.completeness = 0.0
        return envs_to_table(root, envs), report

"""Cohera Integrate analog: the federated query processor.

§4: "Cohera Integrate is a federated query processing engine ... based on
the agoric, federated query processor architecture of the Mariposa system
... Because of Cohera's scalable agoric optimizer, new compute and cache
machines can be added to a Cohera installation incrementally."

The pieces:

* :mod:`repro.federation.site` / :mod:`repro.federation.network` -- the
  machine room: sites with processing rates, load backlogs, prices and
  failures; a network with latency and transfer costs.
* :mod:`repro.federation.catalog` -- the federation catalog: global tables,
  horizontal fragments, replica placement, text indexes and materialized
  views as alternative access paths.
* :mod:`repro.federation.views` -- materialized views with refresh policies
  (fetch-in-advance over federated technology, §3.2 C5).
* :mod:`repro.federation.cache` -- a semantic predicate-region cache.
* :mod:`repro.federation.agoric` -- the Mariposa-style bid-based optimizer
  (live per-site bids; O(replicas) optimization work).
* :mod:`repro.federation.central` -- the baseline the paper calls
  unacceptable: a centralized compile-time cost-based optimizer that
  enumerates site assignments against a periodically refreshed statistics
  snapshot.
* :mod:`repro.federation.physical` -- the physical operator IR: site-side
  operators (SiteScan/SiteFilter/SiteProject/PartialAggregate) charge the
  owning site, an explicit Ship crosses the network model, and streaming
  coordinator operators (joins, final aggregation, sort, limit) each
  record rows in/out, seconds and placement.
* :mod:`repro.federation.executor` -- compiles physical plans into that
  operator tree and drives it: parallel fragment scans, per-site
  accounting, EXPLAIN ANALYZE stats.
* :mod:`repro.federation.loadbalance` -- replica-choice policies.
* :mod:`repro.federation.availability` -- failure injection, placement
  strategies, availability probes ("some of the content all of the time").
* :mod:`repro.federation.health` -- per-site failure memory, the half-open
  circuit breaker, availability-aware risk pricing, and the retry/backoff
  policy that bounds scan-level failover.
* :mod:`repro.federation.reopt` -- adaptive mid-query re-optimization:
  migrate *unstarted* stages of a running plan when the cluster degrades
  (circuit opens, congestion spikes, deadline projects an overrun).
* :mod:`repro.federation.engine` -- :class:`FederatedEngine`: SQL and XPath
  in, rows or XML out.
* :mod:`repro.federation.workload` / :mod:`repro.federation.scheduler` --
  the multi-tenant workload manager: admission control (slots, quotas,
  bounded queues, deadlines), pluggable scheduling (FIFO / strict priority /
  weighted fair), and the per-site congestion gauges that feed concurrency
  back into the agoric prices.
* :mod:`repro.federation.gateway` -- the client-facing serving layer:
  pooled sessions, a prepared-statement plan cache keyed by normalized
  SQL, and cursor-token result pagination, all dispatching through the
  workload manager.
"""

from repro.federation.agoric import AgoricOptimizer, Bid, BudgetExceededError
from repro.federation.availability import (
    AvailabilityProbe,
    FailureInjector,
    PlacementStrategy,
    place_fragments,
)
from repro.federation.artifacts import Artifact, ArtifactStore
from repro.federation.cache import SemanticCache
from repro.federation.catalog import FederationCatalog, Fragment, TableEntry
from repro.federation.central import CentralizedOptimizer
from repro.federation.engine import FederatedEngine, PreparedStatement, QueryResult
from repro.federation.executor import ExecutionReport, Executor, PhysicalPlan
from repro.federation.gateway import Gateway, GatewaySession, Page, PlanCache
from repro.federation.health import (
    CircuitState,
    RetryPolicy,
    SiteHealth,
    SiteHealthTracker,
)
from repro.federation.physical import OperatorStats, PhysicalPlanner
from repro.federation.reopt import ReoptController, ReoptEvent, ReoptPolicy
from repro.federation.loadbalance import (
    LeastLoadedPolicy,
    PolicyOptimizer,
    RandomPolicy,
    ReplicaPolicy,
    RoundRobinPolicy,
    SnapshotLoadPolicy,
)
from repro.federation.network import Network
from repro.federation.secure import SecureNetwork, TamperedPayloadError, seal, unseal
from repro.federation.site import Site
from repro.federation.stats import (
    ColumnStats,
    ZoneMap,
    fallback_selectivity,
    fragment_can_match,
    fragment_selectivity,
    zone_selectivity,
)
from repro.federation.views import MaterializedView
from repro.federation.scheduler import (
    FifoScheduler,
    Scheduler,
    StrictPriorityScheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from repro.federation.workload import (
    QueryHandle,
    QueryState,
    Tenant,
    WorkloadManager,
)

__all__ = [
    "AgoricOptimizer",
    "Bid",
    "BudgetExceededError",
    "AvailabilityProbe",
    "FailureInjector",
    "PlacementStrategy",
    "place_fragments",
    "Artifact",
    "ArtifactStore",
    "SemanticCache",
    "FederationCatalog",
    "Fragment",
    "TableEntry",
    "CentralizedOptimizer",
    "FederatedEngine",
    "PreparedStatement",
    "QueryResult",
    "ExecutionReport",
    "Executor",
    "PhysicalPlan",
    "Gateway",
    "GatewaySession",
    "Page",
    "PlanCache",
    "CircuitState",
    "RetryPolicy",
    "SiteHealth",
    "SiteHealthTracker",
    "OperatorStats",
    "PhysicalPlanner",
    "ReoptController",
    "ReoptEvent",
    "ReoptPolicy",
    "LeastLoadedPolicy",
    "PolicyOptimizer",
    "RandomPolicy",
    "ReplicaPolicy",
    "RoundRobinPolicy",
    "SnapshotLoadPolicy",
    "Network",
    "SecureNetwork",
    "TamperedPayloadError",
    "seal",
    "unseal",
    "Site",
    "ColumnStats",
    "ZoneMap",
    "fallback_selectivity",
    "fragment_can_match",
    "fragment_selectivity",
    "zone_selectivity",
    "MaterializedView",
    "FifoScheduler",
    "Scheduler",
    "StrictPriorityScheduler",
    "WeightedFairScheduler",
    "make_scheduler",
    "QueryHandle",
    "QueryState",
    "Tenant",
    "WorkloadManager",
]

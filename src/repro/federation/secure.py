"""Secure channels between federation components.

§4: "Cohera optionally provides full SSL encryption between its
components, to allow for secure E-Business communication across public
channels."  Two halves are reproduced:

* **Cost model** -- :class:`SecureNetwork` wraps the network model: the
  first transfer between a site pair pays a handshake, and every transfer
  pays an encryption throughput factor.  Benchmarks can thus price the
  privacy of cross-enterprise links.
* **Envelope semantics** -- :func:`seal` / :func:`unseal` implement a *toy*
  stream cipher with an integrity tag.  It is a simulation stand-in for
  TLS, NOT real cryptography (the keystream is a seeded PRNG); what it
  gives the reproduction is the *behaviour* that matters to the system:
  payloads are unreadable without the session key, and tampering is
  detected at unseal time.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.core.errors import ContentIntegrationError
from repro.federation.network import Network


class TamperedPayloadError(ContentIntegrationError):
    """An envelope failed its integrity check."""


@dataclass(frozen=True)
class SessionKey:
    """A shared secret between two components (post-handshake)."""

    key_id: str
    secret: int


def establish_session(site_a: str, site_b: str, shared_secret: int) -> SessionKey:
    """Derive the pair's session key (the handshake's output)."""
    pair = "|".join(sorted((site_a, site_b)))
    digest = hashlib.sha256(f"{pair}:{shared_secret}".encode()).digest()
    return SessionKey(key_id=pair, secret=int.from_bytes(digest[:8], "big"))


def _keystream(key: SessionKey, length: int) -> bytes:
    rng = random.Random(key.secret)
    return bytes(rng.randrange(256) for _ in range(length))


def _tag(key: SessionKey, ciphertext: bytes) -> bytes:
    return hashlib.sha256(
        key.secret.to_bytes(8, "big") + ciphertext
    ).digest()[:16]


def seal(payload: str, key: SessionKey) -> bytes:
    """Encrypt-and-tag a payload for the wire."""
    data = payload.encode("utf-8")
    ciphertext = bytes(
        b ^ k for b, k in zip(data, _keystream(key, len(data)))
    )
    return _tag(key, ciphertext) + ciphertext


def unseal(envelope: bytes, key: SessionKey) -> str:
    """Verify integrity and decrypt; raises on tampering or wrong key."""
    if len(envelope) < 16:
        raise TamperedPayloadError("envelope too short to carry a tag")
    tag, ciphertext = envelope[:16], envelope[16:]
    if _tag(key, ciphertext) != tag:
        raise TamperedPayloadError("integrity tag mismatch")
    data = bytes(
        b ^ k for b, k in zip(ciphertext, _keystream(key, len(ciphertext)))
    )
    return data.decode("utf-8")


class SecureNetwork(Network):
    """The network model with per-pair handshakes and encryption overhead.

    The first transfer between two sites performs the handshake (a fixed
    latency); the session is then cached, so steady-state cost is just the
    ``encryption_factor`` on transfer time -- the familiar TLS cost shape.
    """

    def __init__(
        self,
        base_latency: float = 0.02,
        seconds_per_row: float = 0.00001,
        handshake_seconds: float = 0.08,
        encryption_factor: float = 1.15,
        shared_secret: int = 0xC0FEE,
    ) -> None:
        super().__init__(base_latency, seconds_per_row)
        if encryption_factor < 1.0:
            raise ValueError("encryption cannot speed transfers up")
        self.handshake_seconds = handshake_seconds
        self.encryption_factor = encryption_factor
        self.shared_secret = shared_secret
        self._sessions: dict[tuple[str, str], SessionKey] = {}
        self.handshakes_performed = 0

    def session_for(self, site_a: str, site_b: str) -> SessionKey:
        """The pair's session key, performing the handshake if new."""
        key = self._key(site_a, site_b)
        if key not in self._sessions:
            self._sessions[key] = establish_session(
                site_a, site_b, self.shared_secret
            )
            self.handshakes_performed += 1
        return self._sessions[key]

    def transfer_seconds(self, site_a: str, site_b: str, rows: int) -> float:
        if site_a == site_b:
            return 0.0
        handshake = 0.0
        if self._key(site_a, site_b) not in self._sessions:
            self.session_for(site_a, site_b)
            handshake = self.handshake_seconds
        return handshake + super().transfer_seconds(site_a, site_b, rows) * self.encryption_factor

    def transfer_seconds_bytes(self, site_a: str, site_b: str, nbytes: int) -> float:
        if site_a == site_b:
            return 0.0
        handshake = 0.0
        if self._key(site_a, site_b) not in self._sessions:
            self.session_for(site_a, site_b)
            handshake = self.handshake_seconds
        return (
            handshake
            + super().transfer_seconds_bytes(site_a, site_b, nbytes)
            * self.encryption_factor
        )

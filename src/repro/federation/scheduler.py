"""Pluggable scheduling disciplines for the workload manager.

When an execution slot frees, the :class:`~repro.federation.workload.WorkloadManager`
asks its scheduler which queued query starts next.  Three disciplines are
provided, each a different answer to "who gets the federation first":

* :class:`FifoScheduler` -- arrival order, the throughput baseline.  Fair in
  expectation only: one aggressive tenant's flood delays everyone behind it
  (the head-of-line victimization E13's fairness ablation measures).
* :class:`StrictPriorityScheduler` -- highest ``priority`` first, FIFO within
  a priority level.  Latency-critical tenants jump the queue; low-priority
  work can starve under sustained high-priority load (by design).
* :class:`WeightedFairScheduler` -- stride scheduling over tenant weights:
  each tenant carries a virtual *pass* value advanced by ``1 / weight`` per
  dispatch, and the eligible tenant with the smallest pass goes next.  Over
  any saturated interval each tenant's dispatch share converges to its
  weight share, and a tenant that was idle re-enters at the current virtual
  time (``global_pass``) rather than with accumulated credit -- so a light
  tenant is served almost immediately when it does show up, no matter how
  deep the aggressive tenant's queue is.

Every discipline is deterministic: ties break on submission sequence, then
tenant name.  Schedulers only order; admission control (queue bounds, slot
quotas, deadlines) lives in the workload manager.

Items need four attributes -- ``seq`` (submission order), ``tenant_name``,
``priority`` and ``weight`` -- so the schedulers are reusable for anything
queue-shaped, not just SQL submissions.
"""

from __future__ import annotations

from typing import Callable, Iterable


class Scheduler:
    """Orders queued submissions; subclasses define the discipline."""

    name = "base"

    def push(self, item) -> None:
        raise NotImplementedError

    def pop(self, eligible: Callable[[object], bool]) -> object | None:
        """Remove and return the next dispatchable item, or None.

        ``eligible`` is the workload manager's slot test (per-tenant
        concurrency quota); items failing it are skipped, not dropped.
        """
        raise NotImplementedError

    def remove(self, item) -> bool:
        """Withdraw a queued item (deadline timeout); False if not queued."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def queued_for(self, tenant_name: str) -> int:
        """Queue depth for one tenant (admission control's bound)."""
        raise NotImplementedError


class FifoScheduler(Scheduler):
    """First come, first served, skipping over-quota tenants."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: list = []

    def push(self, item) -> None:
        self._queue.append(item)

    def pop(self, eligible: Callable[[object], bool]) -> object | None:
        for index, item in enumerate(self._queue):
            if eligible(item):
                return self._queue.pop(index)
        return None

    def remove(self, item) -> bool:
        for index, queued in enumerate(self._queue):
            if queued is item:
                del self._queue[index]
                return True
        return False

    def __len__(self) -> int:
        return len(self._queue)

    def queued_for(self, tenant_name: str) -> int:
        return sum(1 for item in self._queue if item.tenant_name == tenant_name)


class StrictPriorityScheduler(FifoScheduler):
    """Highest ``priority`` value first; FIFO within a priority level."""

    name = "priority"

    def pop(self, eligible: Callable[[object], bool]) -> object | None:
        best_index = -1
        best_key: tuple[float, int] | None = None
        for index, item in enumerate(self._queue):
            if not eligible(item):
                continue
            key = (-item.priority, item.seq)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        if best_index < 0:
            return None
        return self._queue.pop(best_index)


class WeightedFairScheduler(Scheduler):
    """Stride scheduling: dispatch share converges to tenant weight share."""

    name = "weighted-fair"

    def __init__(self) -> None:
        self._queues: dict[str, list] = {}
        self._pass: dict[str, float] = {}
        self._global_pass = 0.0

    def push(self, item) -> None:
        queue = self._queues.setdefault(item.tenant_name, [])
        if not queue:
            # A tenant (re)entering the race starts at the current virtual
            # time: idling earns no banked credit, but a fresh arrival is
            # never behind tenants that kept dispatching (their pass has
            # advanced past global_pass), so light tenants get served
            # promptly under an aggressive tenant's flood.
            self._pass[item.tenant_name] = max(
                self._pass.get(item.tenant_name, 0.0), self._global_pass
            )
        queue.append(item)

    def pop(self, eligible: Callable[[object], bool]) -> object | None:
        for tenant_name in sorted(
            (name for name, queue in self._queues.items() if queue),
            key=lambda name: (self._pass[name], name),
        ):
            queue = self._queues[tenant_name]
            for index, item in enumerate(queue):
                if not eligible(item):
                    continue
                queue.pop(index)
                self._global_pass = self._pass[tenant_name]
                self._pass[tenant_name] += 1.0 / max(item.weight, 1e-9)
                return item
        return None

    def remove(self, item) -> bool:
        queue = self._queues.get(item.tenant_name, [])
        for index, queued in enumerate(queue):
            if queued is item:
                del queue[index]
                return True
        return False

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queued_for(self, tenant_name: str) -> int:
        return len(self._queues.get(tenant_name, []))


_SCHEDULERS: dict[str, type[Scheduler]] = {
    FifoScheduler.name: FifoScheduler,
    StrictPriorityScheduler.name: StrictPriorityScheduler,
    WeightedFairScheduler.name: WeightedFairScheduler,
    "fair": WeightedFairScheduler,  # convenient alias
}


def make_scheduler(spec: "str | Scheduler") -> Scheduler:
    """Resolve a scheduler name (or pass an instance through)."""
    if isinstance(spec, Scheduler):
        return spec
    if spec not in _SCHEDULERS:
        known = ", ".join(sorted(set(_SCHEDULERS)))
        raise ValueError(f"unknown scheduler {spec!r} (known: {known})")
    return _SCHEDULERS[spec]()


def scheduler_names() -> Iterable[str]:
    return sorted(set(_SCHEDULERS))

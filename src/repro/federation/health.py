"""Per-site health tracking: failure memory, circuit breaking, risk pricing.

§3.2 C8 argues the federation must ride through "issues that lie outside
the control of the query system".  Liveness (``Site.up``) is the instant
truth, but a site that *just* repaired -- or keeps flapping -- is a worse
bet than one that has served every request for an hour.  This module keeps
that memory:

* :class:`SiteHealthTracker` records every observed scan outcome per site:
  consecutive failures, totals, and last failure/success times on the
  simulation clock.
* A simple **half-open circuit breaker**: after ``failure_threshold``
  consecutive failures a site's circuit opens; while open, planners avoid
  it when an alternative replica exists.  After ``cooldown_seconds`` the
  circuit goes half-open and probes are allowed through; a streak of
  ``half_open_successes`` consecutive probe successes closes it, any
  failure re-opens it (one lucky probe against a still-sick site must
  not fully restore trust).
* **Availability-aware pricing**: :meth:`SiteHealthTracker.price_multiplier`
  inflates a flaky site's bid by up to ``1 + max_price_penalty``; the
  penalty decays linearly over ``risk_decay_seconds`` since the last
  failure, so a site earns its way back into the market by staying up --
  the adaptive half of the agoric story applied to *availability* instead
  of load.
* :class:`RetryPolicy` bounds the executor's failover: a per-query retry
  budget and an exponential backoff schedule whose modeled pauses are
  charged to the simulated response time.

All three optimizers consult the tracker (the engine attaches its tracker
to whatever optimizer it is built with, exactly as it attaches the
semantic cache) and the executor feeds it outcomes, closing the loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.clock import SimClock


class CircuitState(enum.Enum):
    """The classic three breaker states."""

    CLOSED = "closed"  # healthy: requests flow
    OPEN = "open"  # tripped: avoid while alternatives exist
    HALF_OPEN = "half-open"  # cooled down: one probe allowed


@dataclass
class SiteHealth:
    """Observed availability record for one site."""

    consecutive_failures: int = 0
    total_failures: int = 0
    total_successes: int = 0
    last_failure_at: float | None = None
    last_success_at: float | None = None
    opened_at: float | None = None  # when the circuit tripped (None = closed)
    probe_successes: int = 0  # consecutive half-open probe successes


@dataclass
class RetryPolicy:
    """Bounds and prices the executor's scan-level failover.

    ``budget`` is per *query*: the total number of failover attempts (site
    re-routes after a failed or dead primary) one execution may spend.
    Each attempt is charged a modeled pause of
    ``backoff_base_seconds * backoff_multiplier ** attempts_so_far``
    (capped), accumulated into the scan pipeline's elapsed time -- so a
    query that survives on retries pays for them in simulated latency, and
    two identical seeded runs stay byte-identical.

    ``enabled=False`` reproduces the pre-failover engine: the first dead
    site aborts the query with :class:`~repro.core.errors.SourceUnavailableError`.
    """

    enabled: bool = True
    budget: int = 8
    backoff_base_seconds: float = 0.02
    backoff_multiplier: float = 2.0
    backoff_cap_seconds: float = 1.0

    def backoff_seconds(self, retry_index: int) -> float:
        """The modeled pause before retry number ``retry_index`` (0-based)."""
        pause = self.backoff_base_seconds * (
            self.backoff_multiplier ** max(0, retry_index)
        )
        return min(self.backoff_cap_seconds, pause)


class SiteHealthTracker:
    """Remembers per-site scan outcomes; prices risk; breaks circuits."""

    def __init__(
        self,
        clock: SimClock,
        failure_threshold: int = 3,
        cooldown_seconds: float = 60.0,
        risk_decay_seconds: float = 600.0,
        max_price_penalty: float = 4.0,
        half_open_successes: int = 2,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_seconds <= 0:
            # A non-positive cooldown half-opens a tripped circuit on the
            # very next state() call, defeating the breaker entirely.
            raise ValueError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds}"
            )
        if risk_decay_seconds <= 0:
            # risk_penalty divides by this decay horizon.
            raise ValueError(
                f"risk_decay_seconds must be > 0, got {risk_decay_seconds}"
            )
        if half_open_successes < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, got {half_open_successes}"
            )
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.risk_decay_seconds = risk_decay_seconds
        self.max_price_penalty = max_price_penalty
        self.half_open_successes = half_open_successes
        self.trips = 0  # lifetime circuit-open transitions
        self._sites: dict[str, SiteHealth] = {}

    def health(self, site_name: str) -> SiteHealth:
        if site_name not in self._sites:
            self._sites[site_name] = SiteHealth()
        return self._sites[site_name]

    # -- outcome recording -------------------------------------------------

    def record_failure(self, site_name: str) -> None:
        record = self.health(site_name)
        record.consecutive_failures += 1
        record.total_failures += 1
        record.last_failure_at = self.clock.now()
        record.probe_successes = 0  # any failure breaks the closing streak
        if (
            record.consecutive_failures >= self.failure_threshold
            and record.opened_at is None
        ):
            record.opened_at = self.clock.now()
            self.trips += 1
        elif record.opened_at is not None and self.state(site_name) is not (
            CircuitState.OPEN
        ):
            # A failed half-open probe re-opens the circuit from *now*.
            record.opened_at = self.clock.now()

    def record_success(self, site_name: str) -> None:
        record = self.health(site_name)
        record.total_successes += 1
        record.last_success_at = self.clock.now()
        if record.opened_at is None:
            record.consecutive_failures = 0
            return
        if self.state(site_name) is not CircuitState.HALF_OPEN:
            # Forced traffic against a fully open circuit is not a
            # sanctioned probe; it earns nothing toward closing.
            return
        # Half-open probe: one lucky success against a still-sick site
        # must not fully restore trust.  Only a streak closes the circuit.
        record.probe_successes += 1
        if record.probe_successes >= self.half_open_successes:
            record.opened_at = None
            record.consecutive_failures = 0
            record.probe_successes = 0

    # -- breaker -----------------------------------------------------------

    def state(self, site_name: str) -> CircuitState:
        record = self._sites.get(site_name)
        if record is None or record.opened_at is None:
            return CircuitState.CLOSED
        if self.clock.now() - record.opened_at >= self.cooldown_seconds:
            return CircuitState.HALF_OPEN
        return CircuitState.OPEN

    def allow(self, site_name: str) -> bool:
        """May work be routed here?  Open circuits say no; half-open lets a
        probe through so the site can prove itself repaired."""
        return self.state(site_name) is not CircuitState.OPEN

    # -- risk pricing ------------------------------------------------------

    def risk_penalty(self, site_name: str) -> float:
        """A [0, 1] risk factor: 0 = no recent failures, 1 = tripped now.

        Scales with how close the site is to (or past) the trip threshold
        and decays linearly over ``risk_decay_seconds`` since the last
        failure, so stale incidents stop distorting prices.
        """
        record = self._sites.get(site_name)
        if (
            record is None
            or record.consecutive_failures == 0
            or record.last_failure_at is None
        ):
            return 0.0
        severity = min(1.0, record.consecutive_failures / self.failure_threshold)
        age = self.clock.now() - record.last_failure_at
        freshness = max(0.0, 1.0 - age / self.risk_decay_seconds)
        return severity * freshness

    def price_multiplier(self, site_name: str) -> float:
        """Inflate a flaky site's ask: ``1 + max_price_penalty * risk``."""
        return 1.0 + self.max_price_penalty * self.risk_penalty(site_name)

    def prefer(self, site_names: list[str]) -> list[str]:
        """Order candidate sites best-bet first (risk, then name).

        Sites with open circuits sort last but are never dropped: when
        every replica looks bad, the least-bad one still gets the probe.
        """
        return sorted(
            site_names,
            key=lambda name: (
                0 if self.allow(name) else 1,
                self.risk_penalty(name),
                name,
            ),
        )

    def snapshot(self) -> dict[str, SiteHealth]:
        """A copy of the per-site records (for reports and tests)."""
        return dict(self._sites)

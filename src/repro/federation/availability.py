"""Availability: failures, placement strategies, and content reachability.

§3.2 C8 sets out the design space this module makes measurable:

* a central site delivers all of the content some of the time;
* fragmentation delivers "*some of the content all of the time*";
* a hot standby (full replication) delivers everything at double hardware;
* "a combination of replication and fragmentation can deliver *most of the
  content all of the time*, and is the design of choice".

:func:`place_fragments` produces the replica placement for each strategy,
:class:`FailureInjector` schedules site crashes and repairs on the event
loop, and :class:`AvailabilityProbe` reports what fraction of the catalog's
rows is reachable at any instant -- experiment E5 sweeps exactly this.
"""

from __future__ import annotations

import enum
import math
import random

from repro.core.errors import QueryError
from repro.federation.catalog import FederationCatalog
from repro.sim.events import EventLoop


class PlacementStrategy(enum.Enum):
    """The §3.2 C8 design points."""

    CENTRAL = "central"  # everything on one site
    FRAGMENTED = "fragmented"  # spread, no replication
    HOT_STANDBY = "hot-standby"  # full copy on a second site
    FRAGMENT_REPLICATE = "fragment+replicate"  # spread with replication factor k


def place_fragments(
    strategy: PlacementStrategy,
    fragment_count: int,
    site_names: list[str],
    replication_factor: int = 2,
) -> list[list[str]]:
    """Return ``placement[i]`` = sites holding replicas of fragment ``i``.

    The hardware cost of a placement is the total replica count (the
    paper's "doubling of all hardware resources" for hot standby).
    """
    if not site_names:
        raise QueryError("no sites to place fragments on")
    if strategy is PlacementStrategy.CENTRAL:
        return [[site_names[0]] for _ in range(fragment_count)]
    if strategy is PlacementStrategy.FRAGMENTED:
        return [
            [site_names[i % len(site_names)]] for i in range(fragment_count)
        ]
    if strategy is PlacementStrategy.HOT_STANDBY:
        if len(site_names) < 2:
            raise QueryError("hot standby needs at least two sites")
        return [[site_names[0], site_names[1]] for _ in range(fragment_count)]
    if strategy is PlacementStrategy.FRAGMENT_REPLICATE:
        if replication_factor < 1:
            raise QueryError(f"bad replication factor {replication_factor}")
        factor = min(replication_factor, len(site_names))
        return [
            [site_names[(i + r) % len(site_names)] for r in range(factor)]
            for i in range(fragment_count)
        ]
    raise QueryError(f"unknown placement strategy {strategy!r}")


def hardware_cost(placement: list[list[str]]) -> int:
    """Total replica count -- the unit of hardware spend E5 reports."""
    return sum(len(sites) for sites in placement)


class FailureInjector:
    """Schedules exponential crash/repair cycles for sites.

    Each site independently fails after ~Exp(mttf) and repairs after
    ~Exp(mttr), driven by the shared event loop, so availability windows
    interleave deterministically for a given seed.

    ``max_concurrent_failures`` optionally caps how many sites may be down
    at once: a failure drawn while the cap is reached is skipped and the
    site draws a fresh time-to-failure instead.  ``max_concurrent_failures=1``
    models the single-site-failure regime in which RF=2 placement
    guarantees every fragment a live replica -- the regime where failover
    should never lose a query.

    Every up/down transition is appended to :attr:`history` as
    ``(time, site_name, "fail" | "repair")``, so tests can assert that the
    same seed produces the identical failure schedule.

    Beyond hard crashes the injector also models **transient slowdowns**
    (load spikes, noisy neighbors): :meth:`slow_at` schedules a window in
    which a site's :attr:`~repro.federation.site.Site.slowdown_factor`
    multiplies all its service times, recorded in :attr:`history` as
    ``"slow"`` / ``"recover"``, and :meth:`start_slowdowns` runs a seeded
    recurring slowdown process alongside the crash process.  Deterministic
    one-shot scheduling (:meth:`fail_at` / :meth:`repair_at` /
    :meth:`slow_at`) lets benchmarks place disturbances at exact modeled
    times.  Observers registered with :meth:`on_transition` (the workload
    manager's mid-flight re-planner, for one) are called after every
    transition with ``(time, site_name, kind)``.
    """

    def __init__(
        self,
        loop: EventLoop,
        catalog: FederationCatalog,
        mttf: float,
        mttr: float,
        rng: random.Random,
        site_names: list[str] | None = None,
        max_concurrent_failures: int | None = None,
    ) -> None:
        if mttf <= 0 or mttr <= 0:
            raise QueryError("mttf and mttr must be positive")
        if max_concurrent_failures is not None and max_concurrent_failures < 1:
            raise QueryError(
                f"max_concurrent_failures must be >= 1, got {max_concurrent_failures}"
            )
        self.loop = loop
        self.catalog = catalog
        self.mttf = mttf
        self.mttr = mttr
        self.rng = rng
        self.site_names = site_names or sorted(catalog.sites)
        self.max_concurrent_failures = max_concurrent_failures
        self.failures = 0
        self.repairs = 0
        self.skipped_failures = 0  # draws suppressed by the concurrency cap
        self.slowdowns = 0
        self.history: list[tuple[float, str, str]] = []
        self._listeners: list = []

    def start(self) -> None:
        for name in self.site_names:
            self._schedule_failure(name)

    def on_transition(self, callback) -> None:
        """Register ``callback(time, site_name, kind)`` for every transition.

        ``kind`` is one of ``"fail"``, ``"repair"``, ``"slow"``,
        ``"recover"``.  Listeners run synchronously inside the loop event,
        in registration order, so reactions are deterministic.
        """
        self._listeners.append(callback)

    def _transition(self, name: str, kind: str) -> None:
        now = self.loop.clock.now()
        self.history.append((now, name, kind))
        for callback in self._listeners:
            callback(now, name, kind)

    def _down_count(self) -> int:
        return sum(1 for name in self.site_names if not self.catalog.site(name).up)

    def _schedule_failure(self, name: str) -> None:
        delay = self.rng.expovariate(1.0 / self.mttf)
        self.loop.schedule_after(delay, lambda: self._fail(name), f"fail:{name}")

    def _schedule_repair(self, name: str) -> None:
        delay = self.rng.expovariate(1.0 / self.mttr)
        self.loop.schedule_after(delay, lambda: self._repair(name), f"repair:{name}")

    def _fail(self, name: str) -> None:
        site = self.catalog.site(name)
        if site.up and (
            self.max_concurrent_failures is None
            or self._down_count() < self.max_concurrent_failures
        ):
            site.up = False
            self.failures += 1
            self._transition(name, "fail")
            self._schedule_repair(name)
            return
        # Already down, or the concurrency cap is reached: stay up and draw
        # a fresh time-to-failure so the site's crash process continues.
        if site.up:
            self.skipped_failures += 1
        self._schedule_failure(name)

    def _repair(self, name: str) -> None:
        site = self.catalog.site(name)
        if not site.up:
            site.up = True
            self.repairs += 1
            self._transition(name, "repair")
        self._schedule_failure(name)

    # -- deterministic one-shot disturbances -------------------------------

    def fail_at(self, name: str, at: float) -> None:
        """Kill ``name`` at an exact modeled time (no repair scheduled)."""
        self.loop.schedule_at(at, lambda: self._fail_once(name), f"fail:{name}")

    def repair_at(self, name: str, at: float) -> None:
        """Bring ``name`` back up at an exact modeled time."""
        self.loop.schedule_at(at, lambda: self._repair_once(name), f"repair:{name}")

    def _fail_once(self, name: str) -> None:
        site = self.catalog.site(name)
        if site.up:
            site.up = False
            self.failures += 1
            self._transition(name, "fail")

    def _repair_once(self, name: str) -> None:
        site = self.catalog.site(name)
        if not site.up:
            site.up = True
            self.repairs += 1
            self._transition(name, "repair")

    # -- transient slowdowns -----------------------------------------------

    def slow_at(
        self, name: str, at: float, duration: float, factor: float
    ) -> None:
        """Schedule one slowdown window: ``name`` runs ``factor`` times
        slower from ``at`` until ``at + duration``."""
        if duration <= 0:
            raise QueryError(f"slowdown duration must be positive, got {duration}")
        if factor < 1.0:
            raise QueryError(f"slowdown factor must be >= 1.0, got {factor}")
        self.loop.schedule_at(
            at, lambda: self._slow(name, duration, factor), f"slow:{name}"
        )

    def start_slowdowns(
        self,
        mean_interval: float,
        duration: float,
        factor: float,
        site_names: list[str] | None = None,
    ) -> None:
        """Seeded recurring slowdown process, like :meth:`start` for spikes.

        Each site independently enters a ``duration``-second slowdown of
        ``factor`` after ~Exp(mean_interval), repeatedly, drawn from the
        injector's rng — so a given seed produces the identical spike
        schedule every run.
        """
        if mean_interval <= 0:
            raise QueryError(
                f"mean_interval must be positive, got {mean_interval}"
            )
        if duration <= 0:
            raise QueryError(f"slowdown duration must be positive, got {duration}")
        if factor < 1.0:
            raise QueryError(f"slowdown factor must be >= 1.0, got {factor}")
        for name in site_names or self.site_names:
            self._schedule_slowdown(name, mean_interval, duration, factor)

    def _schedule_slowdown(
        self, name: str, mean_interval: float, duration: float, factor: float
    ) -> None:
        delay = self.rng.expovariate(1.0 / mean_interval)
        self.loop.schedule_after(
            delay,
            lambda: self._slow(
                name, duration, factor,
                reschedule=(mean_interval, duration, factor),
            ),
            f"slow:{name}",
        )

    def _slow(
        self,
        name: str,
        duration: float,
        factor: float,
        reschedule: tuple[float, float, float] | None = None,
    ) -> None:
        site = self.catalog.site(name)
        if site.slowdown_factor == 1.0:
            site.set_slowdown(factor)
            self.slowdowns += 1
            self._transition(name, "slow")
            self.loop.schedule_after(
                duration,
                lambda: self._recover(name, reschedule),
                f"recover:{name}",
            )
            return
        # Already slowed: skip this window, keep the process alive.
        if reschedule is not None:
            self._schedule_slowdown(name, *reschedule)

    def _recover(
        self, name: str, reschedule: tuple[float, float, float] | None
    ) -> None:
        site = self.catalog.site(name)
        if site.slowdown_factor != 1.0:
            site.clear_slowdown()
            self._transition(name, "recover")
        if reschedule is not None:
            self._schedule_slowdown(name, *reschedule)


class AvailabilityProbe:
    """Measures reachable content over time."""

    def __init__(self, catalog: FederationCatalog) -> None:
        self.catalog = catalog
        self.samples: list[tuple[float, float]] = []  # (time, available fraction)

    def available_fraction(self, table_name: str | None = None) -> float:
        """Row-weighted fraction of content with at least one live replica."""
        tables = (
            [self.catalog.entry(table_name)]
            if table_name is not None
            else list(self.catalog.tables.values())
        )
        total = 0
        reachable = 0
        for entry in tables:
            for fragment in entry.fragments:
                total += fragment.estimated_rows
                if any(
                    self.catalog.site(name).up for name in fragment.replica_sites()
                ):
                    reachable += fragment.estimated_rows
        if total == 0:
            return 1.0
        return reachable / total

    def sample(self) -> float:
        fraction = self.available_fraction()
        self.samples.append((self.catalog.clock.now(), fraction))
        return fraction

    def attach_to(self, loop: EventLoop, interval: float) -> None:
        """Sample availability periodically on the event loop."""
        loop.schedule_every(interval, self.sample, name="availability-probe")

    def mean_availability(self) -> float:
        if not self.samples:
            return self.available_fraction()
        return sum(f for _, f in self.samples) / len(self.samples)

    def nines(self) -> float:
        """The "number of nines" of mean availability (§3.2 C8).

        "Five nines" (99.999%) returns 5.0; perfect availability returns
        ``inf``.  The paper's uptime currency, computable for any run.
        """
        mean = self.mean_availability()
        if mean >= 1.0:
            return float("inf")
        if mean <= 0.0:
            return 0.0
        return -math.log10(1.0 - mean)

    def full_availability_fraction(self) -> float:
        """Fraction of samples where *all* content was reachable."""
        if not self.samples:
            return 1.0 if self.available_fraction() == 1.0 else 0.0
        return sum(1 for _, f in self.samples if f >= 1.0) / len(self.samples)

"""Multi-tenant workload management for concurrent federated queries.

The paper's §4 e-marketplace is explicitly multi-user -- many trading
partners issue catalog queries against the same federation at once -- and
§3.2 C8's scalability claim only means something under concurrent load.
:class:`~repro.federation.engine.FederatedEngine` answers one query at a
time; this module adds the runtime layer that admits, queues, schedules and
overlaps many in-flight queries on the shared simulation clock:

* **Tenancy.**  A :class:`Tenant` names one query population (a trading
  partner, a portal user class) with a fair-share ``weight``, an in-flight
  ``max_concurrency`` quota and a bounded ``queue_limit``.
* **Admission control.**  :meth:`WorkloadManager.submit` enforces a global
  in-flight slot limit plus the per-tenant quotas.  A full tenant queue
  sheds load with :class:`~repro.core.errors.QueryRejectedError`; a queued
  query whose ``deadline`` passes before dispatch times out with
  :class:`~repro.core.errors.QueryTimeoutError` -- overload degrades
  crisply instead of growing queues without bound.
* **Scheduling.**  When a slot frees, a pluggable discipline
  (:mod:`repro.federation.scheduler`: FIFO, strict priority, weighted fair)
  picks the next queued query.  Dispatch, execution and completion are all
  events on the :class:`~repro.sim.events.EventLoop`, so runs are
  deterministic under identical seeds.
* **Congestion feedback.**  While a query is in flight, every site it
  touched holds an elevated ``active_scans`` gauge; sites inflate both
  executed and *quoted* service times by their congestion curve, so the
  agoric market prices contention and later queries route around busy
  replicas -- adaptive load balancing emerges from the economics, exactly
  the C8 story, now under real concurrency.
* **Mid-flight re-planning.**  :meth:`WorkloadManager.watch` subscribes to
  a :class:`~repro.federation.availability.FailureInjector`; when a site
  fails or slows under a running query that still has *unstarted* stage
  work there, the manager tears up the remaining work and re-executes the
  plan at today's prices (``FederatedEngine.rerun_physical``).  With a
  :class:`~repro.federation.reopt.ReoptPolicy` on the engine the
  re-execution migrates pending stages to healthier replicas; without one
  it re-prices the original assignments under the degraded cluster -- the
  adaptive-vs-static contrast experiment E16 measures.

Execution model: the simulator executes a query's operator tree at dispatch
time (clock frozen) to learn its modeled duration and site footprint, then
holds the slot, the tenant quota and the site gauges until a completion
event fires ``duration`` seconds later.  Queries dispatched in that window
see the earlier query's congestion -- in their operator timings and in the
bids their optimizer collects -- which is what makes concurrency more than
bookkeeping.

Every outcome lands on the engine's :class:`~repro.sim.metrics.MetricsRegistry`
(per-tenant queue depth gauges, wait/service/total latency histograms,
admission/rejection/timeout counters) and the completed query's
:class:`~repro.federation.physical.ExecutionReport` carries
``queue_wait_seconds`` / ``tenant`` / ``scheduler``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.errors import (
    ContentIntegrationError,
    QueryError,
    QueryRejectedError,
    QueryTimeoutError,
)
from repro.federation.engine import FederatedEngine, PreparedStatement, QueryResult
from repro.federation.scheduler import Scheduler, make_scheduler
from repro.sim.events import EventLoop, ScheduledEvent
from repro.sim.metrics import MetricsRegistry


@dataclass
class Tenant:
    """One query population sharing the federation.

    ``weight`` is the fair-share entitlement under the weighted-fair
    scheduler; ``max_concurrency`` caps this tenant's simultaneously running
    queries (None = bounded only by the global slot limit); ``queue_limit``
    bounds its waiting queries -- submissions beyond it are shed.
    """

    name: str
    weight: float = 1.0
    max_concurrency: int | None = None
    queue_limit: int | None = None
    # Lifetime accounting, mirrored into the metrics registry.
    submitted: int = field(default=0, compare=False)
    completed: int = field(default=0, compare=False)
    failed: int = field(default=0, compare=False)
    rejected: int = field(default=0, compare=False)
    timed_out: int = field(default=0, compare=False)
    running: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise QueryError(f"tenant {self.name!r} needs a positive weight")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise QueryError(f"tenant {self.name!r}: max_concurrency must be >= 1")
        if self.queue_limit is not None and self.queue_limit < 0:
            raise QueryError(f"tenant {self.name!r}: queue_limit must be >= 0")


class QueryState(enum.Enum):
    """Lifecycle of one submission."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    TIMED_OUT = "timed-out"


class QueryHandle:
    """One submitted query: resolves when its completion event fires.

    Returned by :meth:`WorkloadManager.submit`.  Not a future in the
    threading sense -- resolution happens as the event loop runs (drive it
    with ``loop.run_until`` or :meth:`WorkloadManager.drain`).
    """

    def __init__(
        self,
        seq: int,
        sql: str,
        tenant: Tenant,
        priority: float,
        submitted_at: float,
        deadline: float | None,
        max_staleness: float | None,
        degraded_ok: bool,
        prepared: PreparedStatement | None = None,
        params: tuple = (),
    ) -> None:
        self.seq = seq
        self.sql = sql
        self.tenant = tenant
        self.priority = priority
        self.submitted_at = submitted_at
        self.deadline = deadline
        self.max_staleness = max_staleness
        self.degraded_ok = degraded_ok
        # When set, dispatch runs the prepared template with ``params``
        # bound instead of re-parsing ``sql`` (the gateway's fast path).
        self.prepared = prepared
        self.params = params
        self.state = QueryState.QUEUED
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.error: Exception | None = None
        self._result: QueryResult | None = None
        self._deadline_event: ScheduledEvent | None = None
        self._completion_event: ScheduledEvent | None = None
        self._busy_sites: tuple[str, ...] = ()
        # Stage keys this query registered in flight with the artifact
        # store (it is their *producer*); cancelling the query aborts them
        # and falls back any subscribers.
        self._stage_keys: tuple = ()
        # Mid-flight re-planning state: the in-flight execution whose
        # completion event is pending, when it was (re)executed on the sim
        # clock, and how many times a cluster disturbance has already torn
        # it up (bounded by the replan cap -- thrash damping).
        self._inflight_result: QueryResult | None = None
        self._executed_at: float | None = None
        self._replans = 0

    # The scheduler-facing surface (see repro.federation.scheduler).

    @property
    def tenant_name(self) -> str:
        return self.tenant.name

    @property
    def weight(self) -> float:
        return self.tenant.weight

    # -- resolution --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in (
            QueryState.COMPLETED,
            QueryState.FAILED,
            QueryState.TIMED_OUT,
        )

    def result(self) -> QueryResult:
        """The finished query's result; raises its error if it failed."""
        if not self.done:
            raise QueryError(
                f"query #{self.seq} is {self.state.value}; run the event loop "
                "(WorkloadManager.drain) before reading its result"
            )
        if self.error is not None:
            raise self.error
        assert self._result is not None
        return self._result

    @property
    def queue_wait_seconds(self) -> float:
        """Seconds spent queued before dispatch (or before timing out)."""
        end = self.started_at if self.started_at is not None else self.finished_at
        if end is None:
            return 0.0
        return end - self.submitted_at

    def __repr__(self) -> str:
        return (
            f"QueryHandle(#{self.seq}, tenant={self.tenant.name!r}, "
            f"{self.state.value})"
        )


class WorkloadManager:
    """Admits, queues, schedules and overlaps queries on one engine.

    ``max_in_flight`` is the global execution slot count (the federation's
    multiprogramming level); ``scheduler`` is a name (``"fifo"``,
    ``"priority"``, ``"weighted-fair"``/``"fair"``) or a
    :class:`~repro.federation.scheduler.Scheduler` instance.  Unknown
    tenants are auto-registered with defaults on first use; configure real
    ones up front with :meth:`register_tenant`.
    """

    def __init__(
        self,
        engine: FederatedEngine,
        loop: EventLoop,
        scheduler: "str | Scheduler" = "weighted-fair",
        max_in_flight: int = 4,
        metrics: MetricsRegistry | None = None,
        max_replans: int = 2,
    ) -> None:
        if max_in_flight < 1:
            raise QueryError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_replans < 0:
            raise QueryError(f"max_replans must be >= 0, got {max_replans}")
        if loop.clock is not engine.catalog.clock:
            raise QueryError(
                "workload manager's event loop must share the engine's clock"
            )
        self.engine = engine
        self.loop = loop
        self.scheduler = make_scheduler(scheduler)
        self.max_in_flight = max_in_flight
        self.metrics = metrics or engine.metrics
        self.tenants: dict[str, Tenant] = {}
        self.in_flight = 0
        self.dispatched = 0  # lifetime dispatches
        self.max_replans = max_replans  # per-query cap when the engine has
        # no re-optimization policy of its own (engine.reopt wins otherwise)
        self.replans = 0  # lifetime mid-flight re-executions
        self._seq = itertools.count()
        self._unfinished = 0  # queued + running
        self._running: dict[int, QueryHandle] = {}  # seq -> RUNNING handle

    # -- tenancy -----------------------------------------------------------

    def register_tenant(
        self,
        tenant: "Tenant | str",
        weight: float = 1.0,
        max_concurrency: int | None = None,
        queue_limit: int | None = None,
    ) -> Tenant:
        """Register a tenant (pass a :class:`Tenant` or a name + limits)."""
        if isinstance(tenant, str):
            tenant = Tenant(tenant, weight, max_concurrency, queue_limit)
        if tenant.name in self.tenants:
            raise QueryError(f"tenant {tenant.name!r} already registered")
        self.tenants[tenant.name] = tenant
        self._gauge(tenant.name, "queue_depth").set(0)
        return tenant

    def tenant(self, name: str) -> Tenant:
        """Look up (auto-registering with defaults) a tenant by name."""
        if name not in self.tenants:
            return self.register_tenant(Tenant(name))
        return self.tenants[name]

    # -- submission --------------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self.scheduler)

    def submit(
        self,
        sql: str | None = None,
        tenant: str = "default",
        priority: float = 0.0,
        deadline: float | None = None,
        max_staleness: float | None = None,
        degraded_ok: bool = False,
        prepared: PreparedStatement | None = None,
        params: "tuple | list" = (),
    ) -> QueryHandle:
        """Admit one query; returns a handle resolved via the event loop.

        ``priority`` matters to the strict-priority scheduler (higher value
        first); ``deadline`` (seconds from now) bounds how long the query
        may *queue* -- once dispatched it runs to completion.  Raises
        :class:`QueryRejectedError` immediately when the tenant's queue is
        full.

        Pass ``prepared`` (with ``params``) instead of ``sql`` to dispatch
        a prepared template through the same admission/scheduling path;
        the statement's ``max_staleness`` was fixed at prepare time, so
        the per-submission argument is not accepted alongside it.
        """
        if (sql is None) == (prepared is None):
            raise QueryError("submit() takes exactly one of sql or prepared")
        if prepared is not None and max_staleness is not None:
            raise QueryError(
                "max_staleness is fixed at prepare time for prepared "
                "statements; do not pass it to submit()"
            )
        owner = self.tenant(tenant)
        if deadline is not None and deadline <= 0:
            raise QueryError(f"deadline must be positive, got {deadline!r}")
        if (
            owner.queue_limit is not None
            and self.scheduler.queued_for(owner.name) >= owner.queue_limit
        ):
            owner.rejected += 1
            self._counter(owner.name, "rejected").inc()
            raise QueryRejectedError(owner.name, owner.queue_limit)

        # Governance admission rides the same shedding path as the bounded
        # queue: rate limits (a deterministic token bucket on the sim clock)
        # and exhausted cost budgets reject here, before a handle exists; a
        # budget declared ``on_exhausted: degrade`` admits the query with
        # degraded answers forced instead.
        force_degraded = False
        governance = getattr(self.engine, "governance", None)
        if governance is not None:
            if prepared is not None and (
                getattr(prepared, "policy_signature", None)
                != governance.signature_for(owner.name)
            ):
                raise QueryError(
                    f"prepared statement was planned for tenant "
                    f"{prepared.tenant!r} under a different governance "
                    f"policy; prepare it for tenant {owner.name!r}"
                )
            try:
                admission = governance.admit(owner.name, self.loop.clock.now())
            except QueryRejectedError:
                owner.rejected += 1
                self._counter(owner.name, "rejected").inc()
                raise
            force_degraded = admission == "degrade"

        handle = QueryHandle(
            seq=next(self._seq),
            sql=sql if sql is not None else prepared.sql,
            tenant=owner,
            priority=priority,
            submitted_at=self.loop.clock.now(),
            deadline=deadline,
            max_staleness=(
                max_staleness if prepared is None else prepared.max_staleness
            ),
            degraded_ok=degraded_ok or force_degraded,
            prepared=prepared,
            params=tuple(params),
        )
        owner.submitted += 1
        self._counter(owner.name, "admitted").inc()
        self.scheduler.push(handle)
        self._unfinished += 1
        if deadline is not None:
            handle._deadline_event = self.loop.schedule_after(
                deadline,
                lambda: self._timeout(handle),
                name=f"wlm-deadline:{handle.seq}",
            )
        self._dispatch()
        self._gauge(owner.name, "queue_depth").set(
            self.scheduler.queued_for(owner.name)
        )
        return handle

    # -- scheduling machinery ----------------------------------------------

    def _eligible(self, handle: QueryHandle) -> bool:
        quota = handle.tenant.max_concurrency
        return quota is None or handle.tenant.running < quota

    def _dispatch(self) -> None:
        """Fill free slots with whatever the scheduler picks next."""
        while self.in_flight < self.max_in_flight:
            handle = self.scheduler.pop(self._eligible)
            if handle is None:
                break
            self._start(handle)

    def _start(self, handle: QueryHandle) -> None:
        now = self.loop.clock.now()
        handle.state = QueryState.RUNNING
        handle.started_at = now
        if handle._deadline_event is not None:
            handle._deadline_event.cancel()  # dispatched: deadline satisfied
        owner = handle.tenant
        owner.running += 1
        self.in_flight += 1
        self.dispatched += 1
        self.metrics.gauge("workload.in_flight").set(self.in_flight)
        self.metrics.counter("workload.dispatches").inc()
        self._gauge(owner.name, "queue_depth").set(
            self.scheduler.queued_for(owner.name)
        )
        wait = now - handle.submitted_at
        self._histogram(owner.name, "queue_wait_seconds").observe(wait)

        # Execute now (clock frozen) to learn the modeled duration and the
        # site footprint; occupancy is modeled by holding the slot and the
        # site congestion gauges until the completion event.  The absolute
        # deadline rides along so the engine's re-optimization controller
        # (when configured) can migrate stages that project an overrun.
        try:
            if handle.prepared is not None:
                result = self.engine.execute(
                    handle.prepared,
                    handle.params,
                    advance_clock=False,
                    degraded_ok=handle.degraded_ok,
                    deadline_at=self._deadline_at(handle),
                )
            else:
                result = self.engine.query(
                    handle.sql,
                    max_staleness=handle.max_staleness,
                    advance_clock=False,
                    degraded_ok=handle.degraded_ok,
                    deadline_at=self._deadline_at(handle),
                    tenant=owner.name,
                )
        except ContentIntegrationError as error:
            self._finish(handle, error=error)
            return
        report = result.report
        report.queue_wait_seconds = wait
        report.tenant = owner.name
        report.scheduler = self.scheduler.name
        self._occupy(handle, result)

    def _occupy(self, handle: QueryHandle, result: QueryResult) -> None:
        """Hold the query's modeled footprint until its completion event:
        site congestion gauges, plus its artifact-store roles (producer of
        the stages it registered, subscriber of the stages it joined)."""
        report = result.report
        handle._inflight_result = result
        handle._executed_at = self.loop.clock.now()
        self._running[handle.seq] = handle
        handle._busy_sites = tuple(sorted(report.site_work))
        catalog = self.engine.catalog
        for site_name in handle._busy_sites:
            site = catalog.site(site_name)
            site.scan_started()
            self.metrics.gauge(f"site.{site_name}.active_scans").set(
                site.active_scans
            )
        store = getattr(self.engine, "artifacts", None)
        if store is not None:
            if report.artifact_published_keys:
                handle._stage_keys = tuple(report.artifact_published_keys)
                for key in handle._stage_keys:
                    store.set_producer(key, handle)
            for key in report.artifact_join_keys:
                store.subscribe(key, handle)
        handle._completion_event = self.loop.schedule_after(
            report.response_seconds,
            lambda: self._complete(handle, result),
            name=f"wlm-complete:{handle.seq}",
        )

    def _release_sites(self, handle: QueryHandle) -> None:
        catalog = self.engine.catalog
        for site_name in handle._busy_sites:
            site = catalog.site(site_name)
            site.scan_finished()
            self.metrics.gauge(f"site.{site_name}.active_scans").set(
                site.active_scans
            )
        handle._busy_sites = ()

    def _complete(self, handle: QueryHandle, result: QueryResult) -> None:
        self._release_sites(handle)
        self._finish(handle, result=result)

    def _finish(
        self,
        handle: QueryHandle,
        result: QueryResult | None = None,
        error: Exception | None = None,
    ) -> None:
        now = self.loop.clock.now()
        owner = handle.tenant
        self._running.pop(handle.seq, None)
        handle._inflight_result = None
        handle.finished_at = now
        owner.running -= 1
        self.in_flight -= 1
        self._unfinished -= 1
        self.metrics.gauge("workload.in_flight").set(self.in_flight)
        if error is not None:
            handle.state = QueryState.FAILED
            handle.error = error
            owner.failed += 1
            self._counter(owner.name, "failed").inc()
        else:
            assert result is not None
            handle.state = QueryState.COMPLETED
            handle._result = result
            owner.completed += 1
            self._counter(owner.name, "completed").inc()
            self._histogram(owner.name, "service_seconds").observe(
                result.report.response_seconds
            )
            self._histogram(owner.name, "total_seconds").observe(
                now - handle.submitted_at
            )
        self._dispatch()

    def _timeout(self, handle: QueryHandle) -> None:
        if handle.state is not QueryState.QUEUED:
            return  # dispatched (or resolved) before the deadline fired
        self.scheduler.remove(handle)
        now = self.loop.clock.now()
        owner = handle.tenant
        handle.state = QueryState.TIMED_OUT
        handle.finished_at = now
        waited = now - handle.submitted_at
        handle.error = QueryTimeoutError(owner.name, handle.deadline or 0.0, waited)
        owner.timed_out += 1
        self._unfinished -= 1
        self._counter(owner.name, "timed_out").inc()
        self._histogram(owner.name, "queue_wait_seconds").observe(waited)
        self._gauge(owner.name, "queue_depth").set(
            self.scheduler.queued_for(owner.name)
        )

    # -- cancellation and stage fallback -----------------------------------

    def cancel(self, handle: QueryHandle) -> bool:
        """Cancel a queued or running query; returns False if already done.

        Cancelling a *running* producer aborts any stages it had registered
        in flight with the artifact store: every query that joined one of
        those stages is transparently re-executed without artifact reuse
        (the first-failure fallback), so a dying producer never strands its
        subscribers with unresolved results.
        """
        if handle.done:
            return False
        if handle.state is QueryState.QUEUED:
            self.scheduler.remove(handle)
            if handle._deadline_event is not None:
                handle._deadline_event.cancel()
            owner = handle.tenant
            handle.state = QueryState.FAILED
            handle.finished_at = self.loop.clock.now()
            handle.error = QueryError(f"query #{handle.seq} cancelled")
            owner.failed += 1
            self._unfinished -= 1
            self._counter(owner.name, "failed").inc()
            self._gauge(owner.name, "queue_depth").set(
                self.scheduler.queued_for(owner.name)
            )
            return True
        # RUNNING: drop the pending completion, release the site footprint,
        # abort produced stages (falling back their subscribers), then
        # settle the handle as failed.
        if handle._completion_event is not None:
            handle._completion_event.cancel()
        self._release_sites(handle)
        self._abort_stages(handle)
        self._finish(
            handle, error=QueryError(f"query #{handle.seq} cancelled")
        )
        return True

    def _abort_stages(self, handle: QueryHandle) -> None:
        store = getattr(self.engine, "artifacts", None)
        if store is None or not handle._stage_keys:
            return
        subscribers = store.abort_stages(handle._stage_keys)
        handle._stage_keys = ()
        for subscriber in subscribers:
            self._fallback(subscriber)

    def _fallback(self, subscriber: QueryHandle) -> None:
        """Re-execute a subscriber whose in-flight producer died.

        The re-execution disables artifact reuse entirely -- the fallback
        must not join another doomed stage, and it publishes nothing -- and
        replaces the subscriber's pending completion with one scheduled off
        the fresh, independent execution.
        """
        if subscriber.state is not QueryState.RUNNING:
            return
        store = getattr(self.engine, "artifacts", None)
        if store is not None:
            store.note_fallback()
        if subscriber._completion_event is not None:
            subscriber._completion_event.cancel()
        self._release_sites(subscriber)
        try:
            if subscriber.prepared is not None:
                result = self.engine.execute(
                    subscriber.prepared,
                    subscriber.params,
                    advance_clock=False,
                    degraded_ok=subscriber.degraded_ok,
                    reuse_artifacts=False,
                    deadline_at=self._deadline_at(subscriber),
                )
            else:
                result = self.engine.query(
                    subscriber.sql,
                    max_staleness=subscriber.max_staleness,
                    advance_clock=False,
                    degraded_ok=subscriber.degraded_ok,
                    reuse_artifacts=False,
                    deadline_at=self._deadline_at(subscriber),
                    tenant=subscriber.tenant.name,
                )
        except ContentIntegrationError as error:
            self._finish(subscriber, error=error)
            return
        report = result.report
        if subscriber.started_at is not None:
            report.queue_wait_seconds = (
                subscriber.started_at - subscriber.submitted_at
            )
        report.tenant = subscriber.tenant.name
        report.scheduler = self.scheduler.name
        self._occupy(subscriber, result)

    # -- mid-flight re-planning (DESIGN §5i) --------------------------------

    def _deadline_at(self, handle: QueryHandle) -> float | None:
        """The handle's absolute deadline on the sim clock, if it has one."""
        if handle.deadline is None:
            return None
        return handle.submitted_at + handle.deadline

    def _replan_cap(self) -> int:
        """Per-query replan budget: the engine's re-optimization policy wins
        when configured, else the manager's own ``max_replans`` default."""
        policy = getattr(self.engine, "reopt", None)
        if policy is not None:
            return policy.max_replans
        return self.max_replans

    def watch(self, injector) -> None:
        """Wire a :class:`~repro.federation.availability.FailureInjector`'s
        site transitions into mid-flight re-planning: every failure or
        slowdown it injects wakes :meth:`site_event`."""
        injector.on_transition(
            lambda time, site_name, kind: self.site_event(site_name, kind)
        )

    def site_event(self, site_name: str, kind: str = "fail") -> None:
        """A site just degraded (``"fail"`` or ``"slow"``): tear up and
        re-execute every running query with *unstarted* stage work there.

        Repairs and recoveries are ignored -- a query modeled against a
        degraded cluster already paid for it, and chasing every recovery
        is exactly the thrash the replan cap and the re-optimizer's
        hysteresis exist to prevent.  Handles are visited in submission
        order so seeded runs stay deterministic.
        """
        if kind in ("repair", "recover"):
            return
        now = self.loop.clock.now()
        affected = [
            self._running[seq]
            for seq in sorted(self._running)
            if self._pending_on_site(self._running[seq], site_name, now)
        ]
        for handle in affected:
            self._reexecute(handle)

    def _pending_on_site(
        self, handle: QueryHandle, site_name: str, now: float
    ) -> bool:
        """Does ``handle`` still have an unstarted stage touching the site?

        A stage whose modeled arrival offset exceeds the time the query has
        already been in flight has not started yet; only those are worth
        (and safe to model as) re-planning -- completed stage work stands.
        """
        if handle.state is not QueryState.RUNNING:
            return False
        if handle._replans >= self._replan_cap():
            return False
        result = handle._inflight_result
        if result is None or handle._executed_at is None:
            return False
        elapsed = now - handle._executed_at
        return any(
            arrival > elapsed and site_name in sites
            for arrival, sites in result.report.stage_runtimes.values()
        )

    def _reexecute(self, handle: QueryHandle) -> None:
        """Re-run a disturbed query's plan at today's prices (clock frozen),
        replacing its pending completion with one off the fresh execution.

        The original plan template is preserved: with a re-optimization
        policy on the engine, its controller migrates unstarted stages to
        healthier replicas; without one the same assignments are simply
        re-priced under the degraded cluster (failover backoff, congestion
        inflation) -- so static and adaptive configurations face identical
        disturbances and differ only in how they respond.
        """
        if handle.state is not QueryState.RUNNING:
            return
        result = handle._inflight_result
        if result is None:
            return
        now = self.loop.clock.now()
        elapsed = max(0.0, now - (handle._executed_at or now))
        if handle._completion_event is not None:
            handle._completion_event.cancel()
        self._release_sites(handle)
        # The rerun must not join its own about-to-die in-flight stages.
        self._abort_stages(handle)
        try:
            fresh = self.engine.rerun_physical(
                result,
                max_staleness=handle.max_staleness,
                degraded_ok=handle.degraded_ok,
                deadline_at=self._deadline_at(handle),
            )
        except ContentIntegrationError as error:
            self._finish(handle, error=error)
            return
        report = fresh.report
        if handle.started_at is not None:
            report.queue_wait_seconds = handle.started_at - handle.submitted_at
        report.tenant = handle.tenant.name
        report.scheduler = self.scheduler.name
        if getattr(self.engine, "reopt", None) is not None:
            # In-flight work the disturbance threw away is charged against
            # adaptivity, not hidden: it lands in the wasted-seconds ledger.
            report.reopt_wasted_seconds += elapsed
        handle._replans += 1
        self.replans += 1
        self.metrics.counter("workload.replans").inc()
        self._counter(handle.tenant.name, "replans").inc()
        self._occupy(handle, fresh)

    # -- driving -----------------------------------------------------------

    def drain(self, *handles: QueryHandle) -> None:
        """Run the event loop until ``handles`` (or all work) resolve."""

        def settled() -> bool:
            if handles:
                return all(handle.done for handle in handles)
            return self._unfinished == 0

        while not settled():
            if self.loop.run_next() is None:
                raise QueryError(
                    "workload manager stalled: submissions pending but the "
                    "event loop is empty"
                )

    def explain_analyze(
        self,
        sql: str,
        tenant: str = "default",
        priority: float = 0.0,
        max_staleness: float | None = None,
    ) -> str:
        """EXPLAIN ANALYZE through the queue: the rendered plan includes the
        tenant, the scheduler and the time the query spent queued."""
        handle = self.submit(
            sql, tenant=tenant, priority=priority, max_staleness=max_staleness
        )
        self.drain(handle)
        return self.engine.render_analyze(handle.result())

    def __repr__(self) -> str:
        return (
            f"WorkloadManager({self.scheduler.name}, "
            f"in_flight={self.in_flight}/{self.max_in_flight}, "
            f"queued={self.queued}, tenants={sorted(self.tenants)})"
        )

    # -- metrics helpers ---------------------------------------------------

    def _counter(self, tenant_name: str, what: str):
        return self.metrics.counter(f"workload.{tenant_name}.{what}")

    def _gauge(self, tenant_name: str, what: str):
        return self.metrics.gauge(f"workload.{tenant_name}.{what}")

    def _histogram(self, tenant_name: str, what: str):
        return self.metrics.histogram(f"workload.{tenant_name}.{what}")

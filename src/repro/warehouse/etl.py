"""Batch Extract-Transform-Load jobs.

An :class:`EtlJob` pulls a full snapshot from a
:class:`~repro.connect.source.ContentSource`, pushes it through an
imperative transform script (any ``Table -> Table`` function -- exactly the
"non-standard imperative scripting languages" of §3.2 C5), and hands the
result to the warehouse.  Because the transform is opaque code, an ETL run
carries **no lineage**: ask an :class:`EtlRun` where a value came from and
the honest answer is "the script" -- the contrast with
:class:`repro.workbench.transforms.Pipeline` that experiment E10 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.connect.source import ContentSource
from repro.core.errors import TransformError
from repro.core.records import Table

TransformScript = Callable[[Table], Table]


@dataclass
class EtlRun:
    """Accounting for one completed ETL execution."""

    job_name: str
    started_at: float
    extract_seconds: float
    rows_in: int
    rows_out: int
    table: Table = field(repr=False, default=None)

    def origin_of(self, row_index: int):
        """ETL cannot answer row provenance; that is the point."""
        raise LookupError(
            f"ETL job {self.job_name!r} ran an opaque transform script; "
            "row provenance was not preserved"
        )


class EtlJob:
    """One source -> script -> warehouse-table batch job."""

    def __init__(
        self,
        name: str,
        source: ContentSource,
        transform: TransformScript | None = None,
        target_table: str | None = None,
    ) -> None:
        self.name = name
        self.source = source
        self.transform = transform
        self.target_table = target_table or name
        self.runs: list[EtlRun] = []

    def run(self, now: float) -> EtlRun:
        """Execute one batch: full extract, transform, return the load table."""
        result = self.source.fetch()
        table = result.table
        if self.transform is not None:
            table = self.transform(table)
            if not isinstance(table, Table):
                raise TransformError(
                    f"ETL transform of job {self.name!r} must return a Table"
                )
        table = table.extended(self.target_table)
        run = EtlRun(
            job_name=self.name,
            started_at=now,
            extract_seconds=result.cost_seconds,
            rows_in=len(result.table),
            rows_out=len(table),
            table=table,
        )
        self.runs.append(run)
        return run

    @property
    def total_extract_seconds(self) -> float:
        return sum(run.extract_seconds for run in self.runs)

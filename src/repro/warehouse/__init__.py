"""The data-warehouse baseline the paper argues against.

§3.2 C5: "many vendors are trying to solve content integration problems
using data warehousing approaches.  Warehousing systems are built solely
around the 'fetch in advance' paradigm.  To deal with volatile data, they
suggest refreshing the warehouse more frequently, which is neither scalable
nor sufficiently close to real time."

To measure that claim we build the warehouse:

* :class:`~repro.warehouse.etl.EtlJob` -- batch Extract-Transform-Load with
  an *imperative* transform script (the "arbitrary code" whose lost lineage
  §3.2 C5 criticizes).
* :class:`~repro.warehouse.warehouse.Warehouse` -- the store plus refresh
  scheduling.  Internally it is built **over federated technology** (a
  single-site :class:`~repro.federation.engine.FederatedEngine`) -- the
  paper itself notes "there is no reason not to build data warehouses over
  federated database technology" -- so SQL over the warehouse costs exactly
  the same machinery as SQL over the federation, isolating *policy*
  (fetch-in-advance vs on-demand) as the only experimental variable.
"""

from repro.warehouse.etl import EtlJob, EtlRun
from repro.warehouse.warehouse import Warehouse

__all__ = ["EtlJob", "EtlRun", "Warehouse"]

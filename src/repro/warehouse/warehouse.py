"""The warehouse store and its refresh machinery.

A :class:`Warehouse` owns a set of :class:`~repro.warehouse.etl.EtlJob`
objects and a single "warehouse site".  Each refresh re-runs every job and
replaces the stored snapshot; queries are answered *only* from snapshots
(fetch-in-advance, always), and each answer carries the snapshot's
staleness so experiments can score it against live ground truth.

SQL support comes from embedding a one-site federated engine -- same
parser, same executor as the federation, so benchmark comparisons isolate
the fetch policy rather than implementation differences.
"""

from __future__ import annotations

from repro.connect.source import StaticSource
from repro.core.errors import QueryError
from repro.core.records import Table
from repro.federation.catalog import FederationCatalog
from repro.federation.engine import FederatedEngine, QueryResult
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop
from repro.sql.parser import parse_sql
from repro.warehouse.etl import EtlJob


class Warehouse:
    """Batch-refreshed store answering SQL from its latest snapshots."""

    def __init__(self, clock: SimClock, site_name: str = "warehouse") -> None:
        self.clock = clock
        self.site_name = site_name
        self.catalog = FederationCatalog(clock)
        self.catalog.make_site(site_name)
        self.engine = FederatedEngine(self.catalog)
        self.jobs: list[EtlJob] = []
        self.loaded_at: dict[str, float] = {}
        self.refresh_count = 0
        self.refresh_seconds_total = 0.0

    # -- definition ----------------------------------------------------------

    def add_job(self, job: EtlJob) -> EtlJob:
        if any(j.target_table == job.target_table for j in self.jobs):
            raise QueryError(
                f"warehouse already has a job loading {job.target_table!r}"
            )
        self.jobs.append(job)
        return job

    # -- refresh -----------------------------------------------------------------

    def refresh(self) -> float:
        """Run every ETL job and load the results; returns total cost seconds.

        The paper's criticism is cost-side: a full refresh re-extracts every
        source, so its cost scales with total content size regardless of
        how little changed.
        """
        now = self.clock.now()
        total_cost = 0.0
        for job in self.jobs:
            run = job.run(now)
            self._load(run.table, now)
            total_cost += run.extract_seconds
        self.refresh_count += 1
        self.refresh_seconds_total += total_cost
        return total_cost

    def schedule_refresh(self, loop: EventLoop, interval: float) -> None:
        """Refresh every ``interval`` seconds (the warehouse's only knob)."""
        if interval <= 0:
            raise QueryError(f"refresh interval must be positive, got {interval!r}")
        loop.schedule_every(interval, self.refresh, name="warehouse-refresh")

    def _load(self, table: Table, now: float) -> None:
        name = table.schema.name
        source = StaticSource(f"{name}@warehouse", table, cost_seconds=0.005)
        if name in self.catalog.tables:
            fragment = self.catalog.entry(name).fragments[0]
            self.catalog.site(self.site_name).host(source, fragment.replicas[self.site_name])
            fragment.estimated_rows = len(table)
        else:
            entry = self.catalog.create_table(name, table.schema)
            fragment = self.catalog.add_fragment(name, "f0", len(table))
            self.catalog.place_replica(fragment, self.site_name, source)
        self.loaded_at[name] = now

    # -- querying ------------------------------------------------------------------

    def staleness(self, table_name: str) -> float:
        """Seconds since ``table_name`` was last loaded (inf if never)."""
        if table_name not in self.loaded_at:
            return float("inf")
        return self.clock.now() - self.loaded_at[table_name]

    def query(self, sql: str) -> QueryResult:
        """Answer SQL from snapshots; the report carries their staleness."""
        statement = parse_sql(sql)
        referenced = {statement.table.name} | {j.table.name for j in statement.joins}
        result = self.engine.query(sql)
        result.report.staleness_seconds = max(
            (self.staleness(name) for name in referenced), default=float("inf")
        )
        return result

    def table_names(self) -> list[str]:
        return sorted(self.loaded_at)

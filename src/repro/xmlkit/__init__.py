"""XML substrate: model, strict parser, XPath subset, and XSLT-like transforms.

Characteristic 6 requires content integration engines to answer "emerging
XML-based query access like XQuery ... in the meantime ... XPath and XSLT".
This package supplies the XML machinery the rest of the system uses:

* :class:`~repro.xmlkit.model.XmlElement` -- an ordered element tree.
* :func:`~repro.xmlkit.parser.parse_xml` -- a strict, well-formedness-
  checking parser (unlike the tolerant HTML parser: B2B XML feeds are
  contracts, so errors must surface).
* :func:`~repro.xmlkit.xpath.xpath` -- an XPath 1.0 subset evaluator used
  for XML queries over integrated views.
* :class:`~repro.xmlkit.transform.XmlTransformer` -- declarative template
  rules in the spirit of XSLT, used by wrappers and syndication to reshape
  documents ("sender-makes-right").
"""

from repro.xmlkit.model import XmlElement, xml_escape
from repro.xmlkit.parser import XmlParseError, parse_xml
from repro.xmlkit.transform import TemplateRule, XmlTransformer
from repro.xmlkit.xpath import XPathError, xpath
from repro.xmlkit.xquery import XQueryError, xquery

__all__ = [
    "XmlElement",
    "xml_escape",
    "XmlParseError",
    "parse_xml",
    "TemplateRule",
    "XmlTransformer",
    "XPathError",
    "xpath",
    "XQueryError",
    "xquery",
]

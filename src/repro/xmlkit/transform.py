"""Declarative XML transformation in the spirit of XSLT.

The paper notes that "languages like XSLT also help simplify the parsing and
transformation into a standard format" (§3.1 C1), and Cohera Connect lets
expert users "customize wrappers directly with XSLT transformations" (§4).

An :class:`XmlTransformer` holds an ordered list of :class:`TemplateRule`
objects.  Applying the transformer to an element finds the first rule whose
pattern matches and invokes its template, which builds output nodes --
usually recursing into children via :meth:`XmlTransformer.apply_children`.
With no matching rule, the built-in identity rule copies the element and
recurses, so a transformer with a single rule can rewrite one tag while
leaving the rest of the document intact (exactly how XSLT stylesheets are
commonly written).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.xmlkit.model import XmlElement

OutputNodes = Sequence["XmlElement | str"]
Template = Callable[[XmlElement, "XmlTransformer"], OutputNodes]


@dataclass
class TemplateRule:
    """A match pattern plus a template producing output nodes.

    ``pattern`` is an element tag name, ``'*'`` (any element), or
    ``'tag[attr=value]'`` for an attribute-qualified match.
    """

    pattern: str
    template: Template

    def matches(self, element: XmlElement) -> bool:
        pattern = self.pattern
        if "[" in pattern:
            tag, _, condition = pattern.partition("[")
            condition = condition.rstrip("]")
            name, _, value = condition.partition("=")
            if element.attrs.get(name.lstrip("@")) != value.strip("'\""):
                return False
            pattern = tag
        return pattern == "*" or element.tag == pattern


class XmlTransformer:
    """An ordered rule set applied recursively over a document."""

    def __init__(self, rules: Sequence[TemplateRule] = ()) -> None:
        self.rules: list[TemplateRule] = list(rules)

    def rule(self, pattern: str) -> Callable[[Template], Template]:
        """Decorator form: ``@transformer.rule("price")``."""

        def register(template: Template) -> Template:
            self.rules.append(TemplateRule(pattern, template))
            return template

        return register

    def add_rule(self, pattern: str, template: Template) -> None:
        self.rules.append(TemplateRule(pattern, template))

    # -- application ----------------------------------------------------------

    def apply(self, element: XmlElement) -> list["XmlElement | str"]:
        """Transform one element; returns the produced output nodes."""
        for rule in self.rules:
            if rule.matches(element):
                return list(rule.template(element, self))
        return self._identity(element)

    def apply_children(self, element: XmlElement) -> list["XmlElement | str"]:
        """Transform all children of ``element`` (template recursion hook)."""
        output: list[XmlElement | str] = []
        for child in element.children:
            if isinstance(child, str):
                output.append(child)
            else:
                output.extend(self.apply(child))
        return output

    def transform_document(self, root: XmlElement) -> XmlElement:
        """Apply to a whole document, requiring a single root in the output."""
        produced = [node for node in self.apply(root) if isinstance(node, XmlElement)]
        if len(produced) != 1:
            raise ValueError(
                f"transforming <{root.tag}> produced {len(produced)} root "
                "elements; a document transform must produce exactly one"
            )
        return produced[0]

    def _identity(self, element: XmlElement) -> list["XmlElement | str"]:
        copy = XmlElement(element.tag, dict(element.attrs))
        for node in self.apply_children(element):
            copy.append(node)
        return [copy]

"""A strict XML parser.

Unlike the tolerant HTML parser, XML here is *validated for well-formedness*:
B2B feeds and "legislated formats" (§3.1 Characteristic 4) are contracts, and
a malformed document must be rejected loudly rather than guessed at.

Supported: elements, attributes (quoted), self-closing tags, character data,
the five predefined entities plus numeric character references, comments,
CDATA sections, XML declarations and processing instructions (skipped).
Not supported (not needed by the reproduction): DTDs and namespaces beyond
treating ``ns:tag`` as an opaque tag name.
"""

from __future__ import annotations

import re

from repro.xmlkit.model import XmlElement

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}

_NAME_RE = re.compile(r"[A-Za-z_][-A-Za-z0-9_.:]*")
_ATTR_RE = re.compile(
    r"""\s*([A-Za-z_][-A-Za-z0-9_.:]*)\s*=\s*("([^"]*)"|'([^']*)')"""
)
_ENTITY_RE = re.compile(r"&(#x?[0-9A-Fa-f]+|[A-Za-z]+);")


class XmlParseError(Exception):
    """Raised when a document is not well-formed; carries the position."""

    def __init__(self, message: str, position: int) -> None:
        self.position = position
        super().__init__(f"{message} (at offset {position})")


def _decode_entities(text: str, position: int) -> str:
    def replace(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in _ENTITIES:
            return _ENTITIES[body]
        raise XmlParseError(f"unknown entity &{body};", position)

    return _ENTITY_RE.sub(replace, text)


def parse_xml(markup: str) -> XmlElement:
    """Parse ``markup`` and return its single root element.

    Raises :class:`XmlParseError` on any well-formedness violation.
    """
    position = 0
    length = len(markup)
    root: XmlElement | None = None
    stack: list[XmlElement] = []

    def emit_text(text: str, at: int) -> None:
        if not stack:
            if text.strip():
                raise XmlParseError("character data outside root element", at)
            return
        decoded = _decode_entities(text, at)
        if decoded:
            stack[-1].append(decoded)

    while position < length:
        lt = markup.find("<", position)
        if lt == -1:
            emit_text(markup[position:], position)
            break
        emit_text(markup[position:lt], position)

        if markup.startswith("<!--", lt):
            end = markup.find("-->", lt + 4)
            if end == -1:
                raise XmlParseError("unterminated comment", lt)
            position = end + 3
            continue

        if markup.startswith("<![CDATA[", lt):
            end = markup.find("]]>", lt + 9)
            if end == -1:
                raise XmlParseError("unterminated CDATA section", lt)
            if not stack:
                raise XmlParseError("CDATA outside root element", lt)
            stack[-1].append(markup[lt + 9:end])
            position = end + 3
            continue

        if markup.startswith("<?", lt):
            end = markup.find("?>", lt + 2)
            if end == -1:
                raise XmlParseError("unterminated processing instruction", lt)
            position = end + 2
            continue

        if markup.startswith("<!", lt):
            end = markup.find(">", lt)
            if end == -1:
                raise XmlParseError("unterminated declaration", lt)
            position = end + 1
            continue

        gt = markup.find(">", lt)
        if gt == -1:
            raise XmlParseError("unterminated tag", lt)
        body = markup[lt + 1:gt]
        position = gt + 1

        if body.startswith("/"):
            tag = body[1:].strip()
            if not stack:
                raise XmlParseError(f"close tag </{tag}> with no open element", lt)
            if stack[-1].tag != tag:
                raise XmlParseError(
                    f"mismatched close tag </{tag}>, expected </{stack[-1].tag}>", lt
                )
            stack.pop()
            continue

        self_closing = body.endswith("/")
        if self_closing:
            body = body[:-1]

        name_match = _NAME_RE.match(body)
        if not name_match:
            raise XmlParseError(f"invalid tag {body[:20]!r}", lt)
        tag = name_match.group(0)

        attrs: dict[str, str] = {}
        rest = body[name_match.end():]
        consumed = 0
        for match in _ATTR_RE.finditer(rest):
            if match.start() != consumed and rest[consumed:match.start()].strip():
                raise XmlParseError(f"malformed attributes in <{tag}>", lt)
            name = match.group(1)
            if name in attrs:
                raise XmlParseError(f"duplicate attribute {name!r} in <{tag}>", lt)
            raw = match.group(3) if match.group(3) is not None else match.group(4)
            attrs[name] = _decode_entities(raw, lt)
            consumed = match.end()
        if rest[consumed:].strip():
            raise XmlParseError(f"malformed attributes in <{tag}>", lt)

        element = XmlElement(tag, attrs)
        if stack:
            stack[-1].append(element)
        elif root is None:
            root = element
        else:
            raise XmlParseError("multiple root elements", lt)
        if not self_closing:
            stack.append(element)

    if stack:
        raise XmlParseError(f"unclosed element <{stack[-1].tag}>", length)
    if root is None:
        raise XmlParseError("no root element", 0)
    return root

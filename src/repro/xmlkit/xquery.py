"""An XQuery FLWOR subset.

§3.2 C6: "in short order this will also require support for emerging
XML-based query access like XQuery [2]" -- the paper's "tomorrow".  This
module implements the core FLWOR shape over the xmlkit document model::

    for $h in //row
    where $h/rooms_available > 0 and contains($h/name, 'Hotel')
    order by $h/corporate_rate
    return <offer id="{$h/hotel_id/text()}">{$h/corporate_rate/text()}</offer>

Supported:

* one ``for`` variable bound over an XPath-subset path;
* ``where`` with ``and`` / ``or``, comparisons (``= != < <= > >=``) between
  bound-variable paths and literals (numeric comparison when both sides
  parse as numbers), and ``contains(path, 'text')``;
* ``order by <path> [descending]``;
* a ``return`` element constructor with ``{...}`` holes evaluating paths
  relative to the bound variable (attribute and content positions both
  work).

Deliberately out of scope (tracked in DESIGN.md): multiple ``for``/``let``
clauses, nested FLWOR, and function definitions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.xmlkit.model import XmlElement, xml_escape
from repro.xmlkit.parser import parse_xml
from repro.xmlkit.xpath import XPathError, xpath


class XQueryError(Exception):
    """Raised on queries outside the supported subset."""


_FLWOR_RE = re.compile(
    r"^\s*for\s+\$(?P<var>\w+)\s+in\s+(?P<path>\S+)"
    r"(?:\s+where\s+(?P<where>.*?))?"
    r"(?:\s+order\s+by\s+(?P<order>\$\S+)(?P<desc>\s+descending)?)?"
    r"\s+return\s+(?P<template><.*>)\s*$",
    re.DOTALL,
)


@dataclass
class _Flwor:
    var: str
    path: str
    where: str | None
    order: str | None
    order_descending: bool
    template: str


def _parse(query: str) -> _Flwor:
    match = _FLWOR_RE.match(query)
    if not match:
        raise XQueryError(
            "query must have the shape: for $v in <path> [where ...] "
            "[order by $v/... [descending]] return <element...>"
        )
    return _Flwor(
        var=match.group("var"),
        path=match.group("path"),
        where=match.group("where"),
        order=match.group("order"),
        order_descending=bool(match.group("desc")),
        template=match.group("template"),
    )


def _value_of(item: XmlElement, var: str, expr: str):
    """Evaluate ``$var/relative/path`` (or a literal) against one binding."""
    expr = expr.strip()
    if expr.startswith("'") and expr.endswith("'"):
        return expr[1:-1]
    if expr.startswith('"') and expr.endswith('"'):
        return expr[1:-1]
    if re.fullmatch(r"-?\d+(\.\d+)?", expr):
        return float(expr)
    if not expr.startswith(f"${var}"):
        raise XQueryError(f"unknown expression {expr!r} (expected ${var}/... or a literal)")
    rest = expr[len(var) + 1:]
    if rest.startswith("/"):
        rest = rest[1:]
    if not rest:
        return item.full_text()
    try:
        results = xpath(item, rest)
    except XPathError as error:
        raise XQueryError(f"bad path in {expr!r}: {error}") from error
    if not results:
        return None
    first = results[0]
    return first if isinstance(first, str) else first.full_text()


def _coerce_pair(a, b):
    """Compare numerically when both sides look numeric."""
    def as_number(value):
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                return None
        return None

    na, nb = as_number(a), as_number(b)
    if na is not None and nb is not None:
        return na, nb
    return (None if a is None else str(a)), (None if b is None else str(b))


_COMPARE_RE = re.compile(
    r"^(?P<left>.+?)\s*(?P<op>!=|<=|>=|=|<|>)\s*(?P<right>.+)$"
)
_CONTAINS_RE = re.compile(r"^contains\(\s*(?P<left>[^,]+)\s*,\s*(?P<right>.+)\s*\)$")


def _eval_condition(item: XmlElement, var: str, text: str) -> bool:
    text = text.strip()
    # or has lowest precedence, then and.
    or_parts = _split_logical(text, " or ")
    if len(or_parts) > 1:
        return any(_eval_condition(item, var, part) for part in or_parts)
    and_parts = _split_logical(text, " and ")
    if len(and_parts) > 1:
        return all(_eval_condition(item, var, part) for part in and_parts)
    if text.startswith("(") and text.endswith(")"):
        return _eval_condition(item, var, text[1:-1])

    contains = _CONTAINS_RE.match(text)
    if contains:
        left = _value_of(item, var, contains.group("left"))
        right = _value_of(item, var, contains.group("right"))
        return left is not None and str(right) in str(left)

    comparison = _COMPARE_RE.match(text)
    if not comparison:
        raise XQueryError(f"cannot parse condition {text!r}")
    left = _value_of(item, var, comparison.group("left"))
    right = _value_of(item, var, comparison.group("right"))
    op = comparison.group("op")
    if left is None or right is None:
        return op == "!=" and (left is None) != (right is None)
    left, right = _coerce_pair(left, right)
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _split_logical(text: str, separator: str) -> list[str]:
    """Split on a logical keyword, respecting quotes and parentheses."""
    parts = []
    depth = 0
    quote = None
    start = 0
    i = 0
    while i < len(text):
        char = text[i]
        if quote:
            if char == quote:
                quote = None
        elif char in "'\"":
            quote = char
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 0 and quote is None and text[i:i + len(separator)] == separator:
            parts.append(text[start:i])
            i += len(separator)
            start = i
            continue
        i += 1
    parts.append(text[start:])
    return parts


_HOLE_RE = re.compile(r"\{([^{}]+)\}")


def _render_template(item: XmlElement, var: str, template: str) -> XmlElement:
    """Fill ``{...}`` holes with escaped values, then parse strictly."""

    def fill(match: re.Match[str]) -> str:
        value = _value_of(item, var, match.group(1))
        return xml_escape("" if value is None else str(value), quote=True)

    markup = _HOLE_RE.sub(fill, template)
    if "{" in markup or "}" in markup:
        raise XQueryError(
            "return template has an unclosed or malformed {...} hole"
        )
    try:
        return parse_xml(markup)
    except Exception as error:
        raise XQueryError(
            f"return template did not produce well-formed XML: {error}"
        ) from error


def xquery(root: XmlElement, query: str) -> list[XmlElement]:
    """Evaluate a FLWOR query against a document; returns constructed elements."""
    flwor = _parse(query)
    try:
        bindings = [e for e in xpath(root, flwor.path) if isinstance(e, XmlElement)]
    except XPathError as error:
        raise XQueryError(f"bad for-path {flwor.path!r}: {error}") from error

    if flwor.where:
        bindings = [
            item for item in bindings
            if _eval_condition(item, flwor.var, flwor.where)
        ]
    if flwor.order:
        def sort_key(item: XmlElement):
            value = _value_of(item, flwor.var, flwor.order)
            try:
                return (0, float(value))
            except (TypeError, ValueError):
                return (1, "" if value is None else str(value))

        bindings.sort(key=sort_key, reverse=flwor.order_descending)

    return [_render_template(item, flwor.var, flwor.template) for item in bindings]

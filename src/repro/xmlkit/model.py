"""The XML element tree used throughout the system.

An :class:`XmlElement` holds a tag, attributes, and an ordered list of
children that are either nested elements or text strings.  This mixed child
list preserves document order, which matters both for XPath positional
predicates and for faithful serialization of B2B documents.
"""

from __future__ import annotations

from typing import Iterator


def xml_escape(text: str, quote: bool = False) -> str:
    """Escape ``&``, ``<``, ``>`` (and quotes when serializing attributes)."""
    escaped = text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    if quote:
        escaped = escaped.replace('"', "&quot;")
    return escaped


class XmlElement:
    """One element of an XML document."""

    def __init__(
        self,
        tag: str,
        attrs: dict[str, str] | None = None,
        children: list["XmlElement | str"] | None = None,
    ) -> None:
        self.tag = tag
        self.attrs: dict[str, str] = dict(attrs or {})
        self.children: list[XmlElement | str] = list(children or [])
        self.parent: XmlElement | None = None
        for child in self.children:
            if isinstance(child, XmlElement):
                child.parent = self

    # -- construction --------------------------------------------------------

    def append(self, child: "XmlElement | str") -> "XmlElement | str":
        if isinstance(child, XmlElement):
            child.parent = self
        self.children.append(child)
        return child

    def element(self, tag: str, attrs: dict[str, str] | None = None) -> "XmlElement":
        """Append and return a new child element (builder convenience)."""
        child = XmlElement(tag, attrs)
        self.append(child)
        return child

    # -- navigation -----------------------------------------------------------

    def child_elements(self, tag: str | None = None) -> list["XmlElement"]:
        return [
            c
            for c in self.children
            if isinstance(c, XmlElement) and (tag is None or c.tag == tag)
        ]

    def first(self, tag: str) -> "XmlElement | None":
        for child in self.child_elements(tag):
            return child
        return None

    def iter_descendants(self) -> Iterator["XmlElement"]:
        for child in self.children:
            if isinstance(child, XmlElement):
                yield child
                yield from child.iter_descendants()

    @property
    def text(self) -> str:
        """Direct text content (immediate string children, concatenated)."""
        return "".join(c for c in self.children if isinstance(c, str))

    def full_text(self) -> str:
        """All text in this subtree, in document order."""
        pieces = []
        for child in self.children:
            if isinstance(child, str):
                pieces.append(child)
            else:
                pieces.append(child.full_text())
        return "".join(pieces)

    def get(self, name: str, default: str | None = None) -> str | None:
        return self.attrs.get(name, default)

    # -- comparison & copying -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XmlElement):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.attrs == other.attrs
            and self.children == other.children
        )

    def copy(self) -> "XmlElement":
        """Deep-copy this subtree (parents rewired within the copy)."""
        return XmlElement(
            self.tag,
            dict(self.attrs),
            [c.copy() if isinstance(c, XmlElement) else c for c in self.children],
        )

    # -- serialization -----------------------------------------------------------

    def to_string(self, indent: int | None = None, _level: int = 0) -> str:
        """Serialize to markup; pass ``indent`` for pretty-printing."""
        attr_text = "".join(
            f' {name}="{xml_escape(value, quote=True)}"'
            for name, value in self.attrs.items()
        )
        if not self.children:
            return f"<{self.tag}{attr_text}/>"

        pad = "" if indent is None else "\n" + " " * (indent * (_level + 1))
        end_pad = "" if indent is None else "\n" + " " * (indent * _level)
        pieces = [f"<{self.tag}{attr_text}>"]
        only_text = all(isinstance(c, str) for c in self.children)
        for child in self.children:
            if isinstance(child, str):
                pieces.append(xml_escape(child))
            else:
                if not only_text:
                    pieces.append(pad)
                pieces.append(child.to_string(indent, _level + 1))
        if not only_text:
            pieces.append(end_pad)
        pieces.append(f"</{self.tag}>")
        return "".join(pieces)

    def __repr__(self) -> str:
        return f"XmlElement(<{self.tag}>, attrs={self.attrs!r}, children={len(self.children)})"

"""An XPath 1.0 subset evaluator.

This is the query surface Characteristic 6 demands "in the meantime" before
XQuery: the federation engine exposes integrated content as XML views and
answers XPath over them (see
:meth:`repro.federation.engine.FederatedEngine.xpath_query`).

Supported grammar::

    path       := '/'? step ('/' step | '//' step)*  |  '//' step ...
    step       := axis? nodetest predicate*
    nodetest   := NAME | '*' | 'text()' | '@' NAME | '.' | '..'
    predicate  := '[' INTEGER ']'                     (1-based position)
                | '[' '@' NAME ']'                    (attribute exists)
                | '[' '@' NAME '=' literal ']'
                | '[' NAME ']'                        (has child element)
                | '[' NAME '=' literal ']'            (child text equals)
                | '[' 'text()' '=' literal ']'
                | '[' 'contains(' (('@' NAME) | 'text()' | NAME) ',' literal ')' ']'
                | '[' 'last()' ']'

``//`` selects descendants-or-self.  Results are element lists, or string
lists when the final step is ``@attr`` or ``text()``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.xmlkit.model import XmlElement


class XPathError(Exception):
    """Raised on a path this subset cannot parse."""


@dataclass
class _Step:
    descendant: bool  # came after '//'
    test: str  # element name, '*', 'text()', '@name', '.', '..'
    predicates: list["_Predicate"] = field(default_factory=list)


@dataclass
class _Predicate:
    kind: str  # 'position', 'last', 'attr-exists', 'attr-eq', 'child-exists',
    #            'child-eq', 'text-eq', 'contains-attr', 'contains-text',
    #            'contains-child'
    name: str = ""
    value: str = ""
    position: int = 0


_PREDICATE_RES = [
    ("position", re.compile(r"^(\d+)$")),
    ("last", re.compile(r"^last\(\)$")),
    ("attr-eq", re.compile(r"^@([\w:.-]+)\s*=\s*(?:'([^']*)'|\"([^\"]*)\")$")),
    ("attr-exists", re.compile(r"^@([\w:.-]+)$")),
    ("text-eq", re.compile(r"^text\(\)\s*=\s*(?:'([^']*)'|\"([^\"]*)\")$")),
    (
        "contains-attr",
        re.compile(r"^contains\(\s*@([\w:.-]+)\s*,\s*(?:'([^']*)'|\"([^\"]*)\")\s*\)$"),
    ),
    (
        "contains-text",
        re.compile(r"^contains\(\s*text\(\)\s*,\s*(?:'([^']*)'|\"([^\"]*)\")\s*\)$"),
    ),
    (
        "contains-child",
        re.compile(r"^contains\(\s*([\w:.-]+)\s*,\s*(?:'([^']*)'|\"([^\"]*)\")\s*\)$"),
    ),
    ("child-eq", re.compile(r"^([\w:.-]+)\s*=\s*(?:'([^']*)'|\"([^\"]*)\")$")),
    ("child-exists", re.compile(r"^([\w:.-]+)$")),
]


def _parse_predicate(text: str) -> _Predicate:
    text = text.strip()
    for kind, pattern in _PREDICATE_RES:
        match = pattern.match(text)
        if not match:
            continue
        if kind == "position":
            return _Predicate("position", position=int(match.group(1)))
        if kind == "last":
            return _Predicate("last")
        if kind in ("attr-exists", "child-exists"):
            return _Predicate(kind, name=match.group(1))
        groups = match.groups()
        if kind in ("text-eq", "contains-text"):
            # Two capture groups: the single- and double-quoted literal.
            value = groups[0] if groups[0] is not None else groups[1]
            return _Predicate(kind, value=value)
        value = groups[1] if groups[1] is not None else groups[2]
        return _Predicate(kind, name=groups[0], value=value)
    raise XPathError(f"unsupported predicate [{text}]")


def _parse_path(path: str) -> list[_Step]:
    if not path or path in ("/", "//"):
        raise XPathError(f"empty path {path!r}")
    steps: list[_Step] = []
    position = 0
    descendant = False
    if path.startswith("//"):
        descendant = True
        position = 2
    elif path.startswith("/"):
        position = 1

    length = len(path)
    while position < length:
        # Read node test up to '/', '[' boundary.
        test_match = re.match(r"(text\(\)|\.\.|@[\w:.-]+|[\w:-]+|\*|\.)", path[position:])
        if not test_match:
            raise XPathError(f"cannot parse step at {path[position:]!r}")
        test = test_match.group(0)
        position += test_match.end()

        predicates: list[_Predicate] = []
        while position < length and path[position] == "[":
            end = path.find("]", position)
            if end == -1:
                raise XPathError(f"unterminated predicate in {path!r}")
            predicates.append(_parse_predicate(path[position + 1:end]))
            position = end + 1

        steps.append(_Step(descendant, test, predicates))

        if position >= length:
            break
        if path.startswith("//", position):
            descendant = True
            position += 2
        elif path.startswith("/", position):
            descendant = False
            position += 1
        else:
            raise XPathError(f"unexpected character at {path[position:]!r}")
    return steps


def _element_matches(element: XmlElement, predicate: _Predicate) -> bool:
    if predicate.kind == "attr-exists":
        return predicate.name in element.attrs
    if predicate.kind == "attr-eq":
        return element.attrs.get(predicate.name) == predicate.value
    if predicate.kind == "child-exists":
        return element.first(predicate.name) is not None
    if predicate.kind == "child-eq":
        return any(
            child.full_text() == predicate.value
            for child in element.child_elements(predicate.name)
        )
    if predicate.kind == "text-eq":
        return element.full_text() == predicate.value
    if predicate.kind == "contains-attr":
        value = element.attrs.get(predicate.name)
        return value is not None and predicate.value in value
    if predicate.kind == "contains-text":
        return predicate.value in element.full_text()
    if predicate.kind == "contains-child":
        return any(
            predicate.value in child.full_text()
            for child in element.child_elements(predicate.name)
        )
    raise AssertionError(f"positional predicate {predicate.kind} handled elsewhere")


def _apply_predicates(candidates: list[XmlElement], predicates: list[_Predicate]) -> list[XmlElement]:
    current = candidates
    for predicate in predicates:
        if predicate.kind == "position":
            index = predicate.position - 1
            current = [current[index]] if 0 <= index < len(current) else []
        elif predicate.kind == "last":
            current = [current[-1]] if current else []
        else:
            current = [e for e in current if _element_matches(e, predicate)]
    return current


def xpath(root: XmlElement, path: str) -> list[XmlElement] | list[str]:
    """Evaluate ``path`` against ``root`` (the document element).

    An absolute path's first step is tested against ``root`` itself (the
    conventional behaviour when the caller holds the document element).
    Returns elements, or strings when the path ends in ``@attr``/``text()``.
    """
    steps = _parse_path(path)
    context: list[XmlElement] = [root]

    for step_index, step in enumerate(steps):
        is_first = step_index == 0
        if step.test.startswith("@"):
            if step_index != len(steps) - 1:
                raise XPathError("attribute step must be final")
            name = step.test[1:]
            scope: list[XmlElement] = []
            for element in context:
                if step.descendant:
                    scope.append(element)
                    scope.extend(element.iter_descendants())
                else:
                    scope.append(element)
            values = [e.attrs[name] for e in scope if name in e.attrs]
            return values
        if step.test == "text()":
            if step_index != len(steps) - 1:
                raise XPathError("text() step must be final")
            return [e.full_text() for e in context]
        if step.test == ".":
            context = _apply_predicates(context, step.predicates)
            continue
        if step.test == "..":
            parents = []
            seen: set[int] = set()
            for element in context:
                if element.parent is not None and id(element.parent) not in seen:
                    seen.add(id(element.parent))
                    parents.append(element.parent)
            context = _apply_predicates(parents, step.predicates)
            continue

        next_context: list[XmlElement] = []
        for element in context:
            if step.descendant:
                candidates = [element, *element.iter_descendants()]
                matched = [
                    c for c in candidates if step.test == "*" or c.tag == step.test
                ]
            elif is_first and not path_is_relative(path):
                # Absolute first step tests the root element itself.
                matched = (
                    [element]
                    if step.test == "*" or element.tag == step.test
                    else []
                )
            else:
                matched = [
                    c
                    for c in element.child_elements()
                    if step.test == "*" or c.tag == step.test
                ]
            next_context.extend(_apply_predicates(matched, step.predicates))
        context = next_context
    return context


def path_is_relative(path: str) -> bool:
    """True when ``path`` does not start at the document root."""
    return not path.startswith("/")

"""repro -- a reproduction of "Content Integration for E-Business" (SIGMOD 2001).

This library rebuilds the Cohera Content Integration System described by
Stonebraker and Hellerstein, as three cooperating layers plus the substrates
they depend on:

* **Connect** (:mod:`repro.connect`) -- wrappers over heterogeneous sources:
  scraped (simulated) supplier web sites, ERP-style gateways, CSV/XML files,
  with semi-automatic wrapper induction.
* **Workbench** (:mod:`repro.workbench`) -- content mapping: declarative
  transforms with lineage, currency/unit normalization, synonym tables,
  hierarchical taxonomies with a semi-automatic matcher, discrepancy
  detection, and rule-driven custom syndication.
* **Integrate** (:mod:`repro.federation`) -- a federated query processor
  with an agoric (Mariposa-style) optimizer, materialized views and semantic
  caching, fragmentation/replication, load balancing and failover, answering
  SQL and XPath over the integrated content.

Baselines the paper argues against are also implemented: a batch-ETL data
warehouse (:mod:`repro.warehouse`) and a centralized cost-based distributed
optimizer (:mod:`repro.federation.central`).

The quickest entry point is
:class:`~repro.core.system.ContentIntegrationSystem`; see
``examples/quickstart.py``.
"""

from repro.core.records import Row, Table
from repro.core.schema import DataType, Field, Schema
from repro.core.system import ContentIntegrationSystem
from repro.core.values import Money

__version__ = "1.0.0"

__all__ = [
    "Row",
    "Table",
    "DataType",
    "Field",
    "Schema",
    "ContentIntegrationSystem",
    "Money",
    "__version__",
]

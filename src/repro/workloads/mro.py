"""The MRO catalog workload.

"Consider a large distributor of so-called 'MRO' goods ... a large MRO
distributor typically has thousands of suppliers.  Hence the distributor
must integrate the individual catalogs from each of its suppliers" (§1.2).

:func:`generate_mro` builds that world deterministically from a seed: a
UN/SPSC-like master taxonomy, a base vocabulary of canonical products with
real-world synonym sets (including the paper's "India ink" example), and a
set of suppliers who each sell a corrupted slice of the vocabulary -- their
own names for things, their own currencies and price formats, their own
site layouts, and their own taxonomy labels with a known ground-truth
mapping to the master.  Every integration tool in the workbench has
something to chew on, and every benchmark can score itself against the
ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.workbench.synonyms import SynonymTable
from repro.workbench.taxonomy import Taxonomy

# (canonical name, master category code, synonym names)
BASE_PRODUCTS: list[tuple[str, str, list[str]]] = [
    ("black ink", "44.10.1", ["india ink", "fountain pen ink, black"]),
    ("blue ink", "44.10.1", ["washable blue ink"]),
    ("pencil lead refills", "44.10.2", ["mechanical pencil lead"]),
    ("ballpoint pen", "44.12.1", ["biro", "stick pen"]),
    ("permanent marker", "44.12.2", ["felt marker"]),
    ("copy paper", "44.20.1", ["xerographic paper", "printer paper"]),
    ("legal pad", "44.20.2", ["ruled writing pad"]),
    ("manila folder", "44.20.3", ["file folder"]),
    ("cordless drill", "27.11.1", ["battery drill", "cordless power drill"]),
    ("hammer drill", "27.11.2", ["percussion drill"]),
    ("drill press", "27.11.3", ["bench drill"]),
    ("hex bolt", "31.16.1", ["hexagon bolt", "hex head cap screw"]),
    ("lock washer", "31.16.2", ["split washer"]),
    ("machine screw", "31.16.3", ["pan head screw"]),
    ("incandescent lightbulb", "39.10.1", ["filament bulb", "light bulb"]),
    ("fluorescent tube", "39.10.2", ["strip light"]),
    ("halogen lamp", "39.10.3", ["halogen bulb"]),
    ("safety goggles", "46.18.1", ["protective eyewear", "safety glasses"]),
    ("work gloves", "46.18.2", ["leather gloves"]),
    ("hard hat", "46.18.3", ["safety helmet"]),
    ("forklift", "24.10.1", ["lift truck", "fork truck"]),
    ("hand truck", "24.10.2", ["dolly", "sack truck"]),
    ("pallet jack", "24.10.3", ["pallet truck"]),
    ("packing tape", "31.20.1", ["carton sealing tape"]),
    ("stretch wrap", "31.20.2", ["pallet wrap"]),
]

MASTER_CATEGORIES: list[tuple[str, str, str | None]] = [
    ("44", "Office supplies", None),
    ("44.10", "Ink and lead refills", "44"),
    ("44.10.1", "India ink", "44.10"),
    ("44.10.2", "Pencil lead", "44.10"),
    ("44.12", "Writing instruments", "44"),
    ("44.12.1", "Pens", "44.12"),
    ("44.12.2", "Markers", "44.12"),
    ("44.20", "Paper products", "44"),
    ("44.20.1", "Copy paper", "44.20"),
    ("44.20.2", "Writing pads", "44.20"),
    ("44.20.3", "Folders", "44.20"),
    ("27", "Tools and machinery", None),
    ("27.11", "Power drills", "27"),
    ("27.11.1", "Cordless drills", "27.11"),
    ("27.11.2", "Hammer drills", "27.11"),
    ("27.11.3", "Drill presses", "27.11"),
    ("31", "Hardware and packaging", None),
    ("31.16", "Fasteners", "31"),
    ("31.16.1", "Bolts", "31.16"),
    ("31.16.2", "Washers", "31.16"),
    ("31.16.3", "Screws", "31.16"),
    ("31.20", "Packaging materials", "31"),
    ("31.20.1", "Tapes", "31.20"),
    ("31.20.2", "Wraps", "31.20"),
    ("39", "Lighting", None),
    ("39.10", "Lamps and bulbs", "39"),
    ("39.10.1", "Incandescent bulbs", "39.10"),
    ("39.10.2", "Fluorescent tubes", "39.10"),
    ("39.10.3", "Halogen lamps", "39.10"),
    ("46", "Safety equipment", None),
    ("46.18", "Personal protection", "46"),
    ("46.18.1", "Eye protection", "46.18"),
    ("46.18.2", "Hand protection", "46.18"),
    ("46.18.3", "Head protection", "46.18"),
    ("24", "Material handling", None),
    ("24.10", "Industrial trucks", "24"),
    ("24.10.1", "Forklifts", "24.10"),
    ("24.10.2", "Hand trucks", "24.10"),
    ("24.10.3", "Pallet jacks", "24.10"),
]

CURRENCIES = ["USD", "USD", "USD", "FRF", "EUR", "GBP"]
PRICE_STYLES = ["symbol", "code-prefix", "code-suffix"]
LAYOUTS = ["table", "divs", "dl"]

# Wording substitutions suppliers apply to category labels.
_LABEL_REWRITES = [
    ("supplies", "products"),
    ("and", "&"),
    ("Pens", "Pens & pencils"),
    ("drills", "drilling tools"),
    ("bulbs", "light bulbs"),
    ("protection", "safety gear"),
]


@dataclass
class SupplierSpec:
    """One generated supplier: their catalog, formats and taxonomy."""

    name: str
    currency: str
    price_style: str
    layout: str
    products: list[dict] = field(default_factory=list)
    taxonomy: Taxonomy | None = None
    # supplier category code -> master category code (ground truth)
    truth_mapping: dict[str, str] = field(default_factory=dict)


@dataclass
class MroWorkload:
    """The full generated MRO world."""

    master_taxonomy: Taxonomy
    suppliers: list[SupplierSpec]
    synonyms: SynonymTable
    exchange_rates: dict[str, float]

    def all_products(self) -> list[dict]:
        return [p for s in self.suppliers for p in s.products]


def build_master_taxonomy() -> Taxonomy:
    taxonomy = Taxonomy("unspsc-like")
    for code, label, parent in MASTER_CATEGORIES:
        taxonomy.add_category(code, label, parent)
    return taxonomy


def build_synonym_table() -> SynonymTable:
    table = SynonymTable()
    for canonical, _, synonyms in BASE_PRODUCTS:
        table.add_group([canonical, *synonyms], canonical=canonical)
    return table


def corrupt_name(rng: random.Random, canonical: str, synonyms: list[str]) -> str:
    """A supplier's rendition of a product name.

    Draws from the real synonym set, token reorderings ("ink, black"),
    vowel-dropped abbreviations and single-character typos -- the exact
    query/catalog mismatches §3.2 C7 requires the integrator to survive.
    """
    roll = rng.random()
    if roll < 0.35:
        return canonical
    if roll < 0.60 and synonyms:
        return rng.choice(synonyms)
    if roll < 0.75:
        tokens = canonical.split()
        if len(tokens) > 1:
            rng.shuffle(tokens)
            return ", ".join(tokens) if rng.random() < 0.5 else " ".join(tokens)
        return canonical
    if roll < 0.90:
        return " ".join(
            "".join(c for c in token if c not in "aeiou") or token
            for token in canonical.split()
        )
    # typo: drop one interior character of one token
    tokens = canonical.split()
    index = rng.randrange(len(tokens))
    token = tokens[index]
    if len(token) > 3:
        cut = rng.randrange(1, len(token) - 1)
        tokens[index] = token[:cut] + token[cut + 1:]
    return " ".join(tokens)


def _supplier_label(rng: random.Random, label: str) -> str:
    """A supplier's wording of a master category label."""
    reworded = label
    for old, new in _LABEL_REWRITES:
        if old in reworded and rng.random() < 0.6:
            reworded = reworded.replace(old, new)
    if rng.random() < 0.2:
        reworded = reworded + " (misc)"
    return reworded


def _build_supplier_taxonomy(
    rng: random.Random,
    master: Taxonomy,
    used_codes: set[str],
    supplier_name: str,
) -> tuple[Taxonomy, dict[str, str]]:
    """A supplier taxonomy covering their products, with ground truth."""
    taxonomy = Taxonomy(supplier_name)
    truth: dict[str, str] = {}
    needed: set[str] = set()
    for code in used_codes:
        node = master.node(code)
        needed.add(code)
        needed.update(a.code for a in node.ancestors())
    counter = 0
    # Parents before children: master codes sort that way ("44" < "44.10").
    for code in sorted(needed):
        node = master.node(code)
        counter += 1
        supplier_code = f"{supplier_name[:3].upper()}-{counter:03d}"
        parent_code = None
        if node.parent is not None:
            parent_code = next(
                (sc for sc, mc in truth.items() if mc == node.parent.code), None
            )
        taxonomy.add_category(
            supplier_code, _supplier_label(rng, node.label), parent_code
        )
        truth[supplier_code] = code
    return taxonomy, truth


def generate_mro(
    seed: int = 0,
    supplier_count: int = 10,
    products_per_supplier: int = 40,
    with_taxonomies: bool = True,
) -> MroWorkload:
    """Generate the deterministic MRO world for ``seed``."""
    rng = random.Random(seed)
    master = build_master_taxonomy()
    synonyms = build_synonym_table()
    rates = {"USD": 1.0, "FRF": 0.14, "EUR": 1.1, "GBP": 1.5}

    suppliers = []
    for s in range(supplier_count):
        name = f"supplier-{s:03d}"
        spec = SupplierSpec(
            name=name,
            currency=rng.choice(CURRENCIES),
            price_style=rng.choice(PRICE_STYLES),
            layout=rng.choice(LAYOUTS),
        )
        used_codes: set[str] = set()
        for p in range(products_per_supplier):
            canonical, category, product_synonyms = rng.choice(BASE_PRODUCTS)
            used_codes.add(category)
            base_price = round(rng.uniform(0.5, 400.0), 2)
            spec.products.append(
                {
                    "sku": f"{name.upper()}-{p:04d}",
                    "name": corrupt_name(rng, canonical, product_synonyms),
                    "canonical_name": canonical,
                    "category": category,
                    "price": base_price,
                    "currency": spec.currency,
                    "qty": rng.randrange(0, 500),
                    "supplier": name,
                    "description": f"{canonical} supplied by {name}; "
                    f"ships in {rng.randrange(1, 10)} days",
                }
            )
        if with_taxonomies:
            spec.taxonomy, spec.truth_mapping = _build_supplier_taxonomy(
                rng, master, used_codes, name
            )
        suppliers.append(spec)
    return MroWorkload(master, suppliers, synonyms, rates)

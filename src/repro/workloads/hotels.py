"""The hotel-availability workload.

"Hotel room availability in the Atlanta area is in some fifty data systems
(each hotel chain runs their own reservation system) ... the address of the
hotel and its amenities are static data and can be fetched in advance, while
room availability is highly volatile and must be fetched on demand" (§1.2,
§3.2 C5).

:func:`generate_hotels` builds ~fifty chains, each a mutable reservation
system; :meth:`HotelMarket.schedule_volatility` drives bookings,
cancellations and rate changes on the event loop; and
:meth:`HotelMarket.register_sources` wires the market into a federation
catalog as one live fragment per chain (fetch-on-demand path) plus the
static table benchmark code typically materializes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.connect.source import LiveSource
from repro.core.records import Table
from repro.core.schema import DataType, Field, Schema
from repro.federation.catalog import FederationCatalog
from repro.sim.events import EventLoop

STATIC_SCHEMA = Schema(
    "hotel_static",
    (
        Field("hotel_id", DataType.STRING, nullable=False),
        Field("chain", DataType.STRING),
        Field("name", DataType.STRING),
        Field("miles_to_airport", DataType.FLOAT),
        Field("has_health_club", DataType.BOOLEAN),
    ),
)

AVAILABILITY_SCHEMA = Schema(
    "hotel_availability",
    (
        Field("hotel_id", DataType.STRING, nullable=False),
        Field("rooms_available", DataType.INTEGER),
        Field("reserve_rooms", DataType.INTEGER),
        Field("corporate_rate", DataType.FLOAT),
    ),
)


@dataclass
class HotelMarket:
    """All chains' reservation systems, mutable in place."""

    hotels: list[dict] = field(default_factory=list)
    chains: list[str] = field(default_factory=list)
    updates_applied: int = 0
    # Catalogs whose copy of this market must hear about writes (so their
    # semantic caches invalidate stale availability regions).
    _catalogs: list = field(default_factory=list, repr=False)

    # -- views over the mutable state -----------------------------------------

    def static_rows(self) -> list[dict]:
        return [
            {
                "hotel_id": h["hotel_id"],
                "chain": h["chain"],
                "name": h["name"],
                "miles_to_airport": h["miles_to_airport"],
                "has_health_club": h["has_health_club"],
            }
            for h in self.hotels
        ]

    def availability_rows(self, chain: str | None = None) -> list[dict]:
        return [
            {
                "hotel_id": h["hotel_id"],
                "rooms_available": h["rooms_available"],
                "reserve_rooms": h["reserve_rooms"],
                "corporate_rate": h["corporate_rate"],
            }
            for h in self.hotels
            if chain is None or h["chain"] == chain
        ]

    def static_table(self) -> Table:
        return Table.from_dicts(STATIC_SCHEMA, self.static_rows())

    def availability_table(self) -> Table:
        return Table.from_dicts(AVAILABILITY_SCHEMA, self.availability_rows())

    # -- the traveler's ground truth -----------------------------------------------

    def matching_hotels(
        self, max_miles: float = 10.0, max_rate: float = 200.0, need_club: bool = True
    ) -> set[str]:
        """Hotel ids currently satisfying the paper's traveler query."""
        return {
            h["hotel_id"]
            for h in self.hotels
            if h["miles_to_airport"] <= max_miles
            and h["corporate_rate"] <= max_rate
            and (h["has_health_club"] or not need_club)
            and h["rooms_available"] > 0
        }

    # -- volatility ---------------------------------------------------------------------

    def apply_random_update(self, rng: random.Random) -> None:
        """One booking / cancellation / rate move at a random hotel."""
        hotel = rng.choice(self.hotels)
        roll = rng.random()
        if roll < 0.5:  # booking
            if hotel["rooms_available"] > 0:
                hotel["rooms_available"] -= 1
        elif roll < 0.8:  # cancellation / release
            hotel["rooms_available"] += 1
        else:  # yield-management rate move
            factor = rng.uniform(0.85, 1.25)
            hotel["corporate_rate"] = round(hotel["corporate_rate"] * factor, 2)
        self.updates_applied += 1
        # Availability is the volatile table (C5): every booking is a base
        # update, and registered federations must drop covering cache regions.
        for catalog in self._catalogs:
            catalog.notify_table_updated("hotel_availability")

    def schedule_volatility(
        self, loop: EventLoop, rng: random.Random, mean_interval: float
    ) -> None:
        """Exponentially spaced updates forever (until the loop stops)."""

        def update_and_reschedule() -> None:
            self.apply_random_update(rng)
            loop.schedule_after(
                rng.expovariate(1.0 / mean_interval),
                update_and_reschedule,
                "hotel-update",
            )

        loop.schedule_after(
            rng.expovariate(1.0 / mean_interval), update_and_reschedule, "hotel-update"
        )

    # -- federation wiring ------------------------------------------------------------------

    def register_sources(
        self,
        catalog: FederationCatalog,
        chain_sites: dict[str, str],
        fetch_cost: float = 0.1,
    ) -> None:
        """One live availability fragment per chain + the static table.

        ``chain_sites`` maps each chain to the site simulating its
        reservation system.  Static data lands replicated on the first two
        sites (it is cheap and slow-changing).  The catalog is remembered
        so market writes raise its base-table update notifications.
        """
        self._catalogs.append(catalog)
        catalog.create_table("hotel_availability", AVAILABILITY_SCHEMA)
        for i, chain in enumerate(self.chains):
            site_name = chain_sites[chain]
            rows = len(self.availability_rows(chain))
            fragment = catalog.add_fragment("hotel_availability", f"chain-{i}", rows)
            source = LiveSource(
                f"availability@{chain}",
                AVAILABILITY_SCHEMA,
                lambda chain=chain: self.availability_rows(chain),
                cost_seconds=fetch_cost,
                estimated_rows=rows,
            )
            catalog.place_replica(fragment, site_name, source)

        static_sites = sorted(set(chain_sites.values()))[:2]
        catalog.load_fragmented(
            self.static_table(), 1, [static_sites], scan_cost_seconds=0.01
        )


def generate_hotels(
    seed: int = 0,
    chain_count: int = 50,
    hotels_per_chain: int = 4,
) -> HotelMarket:
    """Build the deterministic hotel market for ``seed``."""
    rng = random.Random(seed)
    market = HotelMarket()
    for c in range(chain_count):
        chain = f"chain-{c:02d}"
        market.chains.append(chain)
        for h in range(hotels_per_chain):
            market.hotels.append(
                {
                    "hotel_id": f"{chain}-h{h}",
                    "chain": chain,
                    "name": f"{chain.title()} Hotel #{h}",
                    "miles_to_airport": round(rng.uniform(0.5, 30.0), 1),
                    "has_health_club": rng.random() < 0.6,
                    "rooms_available": rng.randrange(0, 25),
                    "reserve_rooms": rng.randrange(0, 4),
                    "corporate_rate": round(rng.uniform(80.0, 320.0), 2),
                }
            )
    return market

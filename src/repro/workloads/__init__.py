"""Workload generators mirroring the paper's three vignettes (§1.2).

* :mod:`repro.workloads.mro` -- the MRO-distributor catalog: many suppliers
  with messy product names, mixed currencies/formats, and their own
  taxonomies to be mapped onto a UN/SPSC-like master.
* :mod:`repro.workloads.hotels` -- the Atlanta-traveler scenario: ~fifty
  chain reservation systems with static amenity data and volatile room
  availability and rates.
* :mod:`repro.workloads.supplychain` -- the manufacturer scenario: a tiered
  supplier network with capacities and unstructured contract documents.
* :mod:`repro.workloads.queries` -- query mixes and arrival processes for
  the load/scaling experiments.

All generators are seeded and deterministic.
"""

from repro.workloads.hotels import HotelMarket, generate_hotels
from repro.workloads.mro import MroWorkload, SupplierSpec, generate_mro
from repro.workloads.queries import QueryMix, poisson_arrivals
from repro.workloads.supplychain import SupplyChain, generate_supply_chain

__all__ = [
    "HotelMarket",
    "generate_hotels",
    "MroWorkload",
    "SupplierSpec",
    "generate_mro",
    "QueryMix",
    "poisson_arrivals",
    "SupplyChain",
    "generate_supply_chain",
]

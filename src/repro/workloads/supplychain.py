"""The supply-chain workload.

"Efficient product scheduling requires the entire supply chain to share
information ... there may be various contract documents among the
participants in the supply chain ... such unstructured information must be
integrated as well as possible with structured data" (§1.2).

:func:`generate_supply_chain` builds a tiered supplier network (each company
buys one unit from *each* of its suppliers per unit produced), with per-
company capacities and generated contract prose.  The structured side
answers the paper's scheduling question -- "can I raise production, and by
how much?" -- via :meth:`SupplyChain.max_production_increase`; the
unstructured side (contracts) feeds the IR engine so mixed queries
("which limiting suppliers have an expedite clause?") exercise structured
and text search together.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.records import Table
from repro.core.schema import DataType, Field, Schema

COMPANY_SCHEMA = Schema(
    "companies",
    (
        Field("company", DataType.STRING, nullable=False),
        Field("tier", DataType.INTEGER),
        Field("capacity", DataType.INTEGER),
        Field("output", DataType.INTEGER),
    ),
)

EDGE_SCHEMA = Schema(
    "supply_edges",
    (
        Field("buyer", DataType.STRING, nullable=False),
        Field("supplier", DataType.STRING, nullable=False),
    ),
)

CONTRACT_SCHEMA = Schema(
    "contracts",
    (
        Field("contract_id", DataType.STRING, nullable=False),
        Field("buyer", DataType.STRING),
        Field("supplier", DataType.STRING),
        Field("body", DataType.TEXT),
    ),
)

_CLAUSES = [
    "price adjustment clause: unit price may be renegotiated when volume "
    "changes by more than ten percent",
    "expedite clause: supplier will support schedule increases on five days "
    "notice for an expedite fee",
    "exclusivity clause: buyer sources this subassembly solely from supplier",
    "penalty clause: late delivery incurs liquidated damages per day",
    "capacity reservation clause: supplier reserves stated capacity for buyer",
]


@dataclass
class SupplyNode:
    """One company in the chain."""

    company: str
    tier: int
    capacity: int
    output: int
    suppliers: list[str] = field(default_factory=list)

    @property
    def slack(self) -> int:
        return max(0, self.capacity - self.output)


@dataclass
class SupplyChain:
    """The whole network plus its contract documents."""

    root: str
    nodes: dict[str, SupplyNode] = field(default_factory=dict)
    contracts: list[dict] = field(default_factory=list)

    def max_production_increase(self, company: str | None = None) -> int:
        """How many extra units the chain can deliver for ``company``.

        Producing one extra unit needs one extra unit from *every* supplier,
        so the feasible increase is the company's own slack capped by the
        minimum feasible increase across its suppliers -- the whole-chain
        information sharing the paper's vignette is about.
        """
        name = company or self.root
        if name not in self.nodes:
            raise KeyError(f"unknown company {name!r}")
        memo: dict[str, int] = {}

        def feasible(company_name: str) -> int:
            if company_name in memo:
                return memo[company_name]
            node = self.nodes[company_name]
            increase = node.slack
            for supplier in node.suppliers:
                increase = min(increase, feasible(supplier))
            memo[company_name] = increase
            return increase

        return feasible(name)

    def limiting_companies(self, company: str | None = None) -> list[str]:
        """Companies whose slack equals the chain bottleneck (the constraint)."""
        bottleneck = self.max_production_increase(company)
        name = company or self.root
        limits = []
        stack = [name]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = self.nodes[current]
            if node.slack == bottleneck:
                limits.append(current)
            stack.extend(node.suppliers)
        return sorted(limits)

    # -- relational + text projections ----------------------------------------

    def companies_table(self) -> Table:
        rows = [
            (n.company, n.tier, n.capacity, n.output)
            for n in sorted(self.nodes.values(), key=lambda n: n.company)
        ]
        return Table(COMPANY_SCHEMA, rows)

    def edges_table(self) -> Table:
        rows = [
            (node.company, supplier)
            for node in sorted(self.nodes.values(), key=lambda n: n.company)
            for supplier in node.suppliers
        ]
        return Table(EDGE_SCHEMA, rows)

    def contracts_table(self) -> Table:
        return Table.from_dicts(CONTRACT_SCHEMA, self.contracts)


def generate_supply_chain(
    seed: int = 0,
    depth: int = 3,
    fanout: int = 3,
) -> SupplyChain:
    """A deterministic tiered chain: tier 0 is the manufacturer."""
    rng = random.Random(seed)
    chain = SupplyChain(root="manufacturer")
    chain.nodes["manufacturer"] = SupplyNode(
        "manufacturer", 0, capacity=rng.randrange(120, 180), output=100
    )
    frontier = ["manufacturer"]
    counter = 0
    for tier in range(1, depth + 1):
        next_frontier = []
        for buyer in frontier:
            for _ in range(fanout):
                counter += 1
                name = f"t{tier}-sup{counter:03d}"
                output = 100
                capacity = output + rng.randrange(0, 80)
                chain.nodes[name] = SupplyNode(name, tier, capacity, output)
                chain.nodes[buyer].suppliers.append(name)
                clause = rng.choice(_CLAUSES)
                chain.contracts.append(
                    {
                        "contract_id": f"c{counter:03d}",
                        "buyer": buyer,
                        "supplier": name,
                        "body": f"supply agreement between {buyer} and {name}. "
                        f"{clause}. governed by the laws of delaware.",
                    }
                )
                next_frontier.append(name)
        frontier = next_frontier
    return chain

"""Query mixes and arrival processes for the load experiments.

The scaling and load-balancing claims (§3.2 C8) are about behaviour *under
a stream of queries*.  :class:`QueryMix` emits a deterministic, seeded mix
of point lookups, range scans and aggregates over a catalog table;
:func:`poisson_arrivals` produces the arrival times of that stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


def poisson_arrivals(rng: random.Random, rate_per_second: float, horizon: float) -> list[float]:
    """Arrival timestamps of a Poisson process over [0, horizon)."""
    if rate_per_second <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_second!r}")
    arrivals = []
    t = rng.expovariate(rate_per_second)
    while t < horizon:
        arrivals.append(t)
        t += rng.expovariate(rate_per_second)
    return arrivals


@dataclass
class QueryMix:
    """A seeded generator of SQL texts over one catalog table.

    ``point_weight`` / ``range_weight`` / ``aggregate_weight`` control the
    mix; SKUs and price bounds are drawn from the ranges the MRO generator
    uses, so every query has work to do.
    """

    table: str = "catalog"
    sku_prefix: str = "SUPPLIER-000-"
    sku_count: int = 40
    max_price: float = 400.0
    point_weight: float = 0.5
    range_weight: float = 0.3
    aggregate_weight: float = 0.2

    def next_query(self, rng: random.Random) -> str:
        roll = rng.random() * (
            self.point_weight + self.range_weight + self.aggregate_weight
        )
        if roll < self.point_weight:
            sku = f"{self.sku_prefix}{rng.randrange(self.sku_count):04d}"
            return f"select * from {self.table} where sku = '{sku}'"
        if roll < self.point_weight + self.range_weight:
            low = round(rng.uniform(0, self.max_price * 0.8), 2)
            high = round(low + rng.uniform(5, self.max_price * 0.2), 2)
            return (
                f"select sku, price from {self.table} "
                f"where price >= {low} and price <= {high}"
            )
        return (
            f"select supplier, count(*) as n, avg(price) as avg_price "
            f"from {self.table} group by supplier"
        )

    def batch(self, rng: random.Random, count: int) -> list[str]:
        return [self.next_query(rng) for _ in range(count)]

"""Information retrieval substrate.

Characteristic 7: "content integrators require information retrieval
capabilities, including synonyms and fuzzy search", and §4 describes a text
engine "compiled directly into the query engine, and fully modeled by
the optimizer as an access path".  This package is that engine:

* :mod:`repro.ir.tokenize` -- tokenization and n-grams.
* :mod:`repro.ir.fuzzy` -- edit distance and n-gram similarity ("drlls:
  crdlss" must match "cordless drills").
* :mod:`repro.ir.inverted_index` -- a tf-idf ranked inverted index with a
  vocabulary n-gram index for fuzzy term expansion.
* :mod:`repro.ir.search` -- :class:`~repro.ir.search.CatalogSearch`, the
  combined exact / synonym / fuzzy / taxonomy-expanded search the paper's
  "India ink" examples call for.
"""

from repro.ir.fuzzy import (
    combined_similarity,
    levenshtein,
    levenshtein_similarity,
    ngram_jaccard,
)
from repro.ir.inverted_index import InvertedIndex, SearchHit
from repro.ir.search import CatalogSearch, SearchMode
from repro.ir.tokenize import ngrams, tokenize

__all__ = [
    "combined_similarity",
    "levenshtein",
    "levenshtein_similarity",
    "ngram_jaccard",
    "InvertedIndex",
    "SearchHit",
    "CatalogSearch",
    "SearchMode",
    "ngrams",
    "tokenize",
]

"""Combined catalog search: exact, synonym, fuzzy and taxonomy expansion.

The paper's acceptance test (§3.2 C7): a query for "India ink" must return
the same answers as "black ink"; "drlls: crdlss" must behave like "cordless
drills"; and a taxonomy query for "refills" should surface both ink and lead
products.  :class:`CatalogSearch` composes the inverted index with pluggable
expanders to pass all three.  Expanders are duck-typed so this module does
not depend on the workbench:

* a *synonym expander* maps a term to its equivalence set
  (:class:`repro.workbench.synonyms.SynonymTable` fits);
* a *taxonomy expander* maps a phrase to extra search terms drawn from
  matching categories and their descendants
  (:meth:`repro.workbench.taxonomy.Taxonomy.expand_query` fits).
"""

from __future__ import annotations

import enum
from typing import Callable, Hashable, Protocol

from repro.ir.inverted_index import InvertedIndex, SearchHit
from repro.ir.tokenize import tokenize


class SynonymExpander(Protocol):
    def expand(self, term: str) -> set[str]:
        """All terms equivalent to ``term`` (including itself)."""
        ...


TaxonomyExpander = Callable[[str], set[str]]


class SearchMode(enum.Enum):
    """How aggressively a query is expanded before scoring."""

    EXACT = "exact"
    SYNONYM = "synonym"
    FUZZY = "fuzzy"
    FULL = "full"  # synonyms + fuzzy + taxonomy


class CatalogSearch:
    """The integrator's search facade over one inverted index."""

    def __init__(
        self,
        index: InvertedIndex | None = None,
        synonyms: SynonymExpander | None = None,
        taxonomy_expander: TaxonomyExpander | None = None,
        fuzzy_limit: int = 3,
        fuzzy_minimum: float = 0.55,
    ) -> None:
        self.index = index or InvertedIndex()
        self.synonyms = synonyms
        self.taxonomy_expander = taxonomy_expander
        self.fuzzy_limit = fuzzy_limit
        self.fuzzy_minimum = fuzzy_minimum

    # -- indexing -----------------------------------------------------------

    def add_document(self, doc_id: Hashable, text: str) -> None:
        self.index.add(doc_id, text)

    # -- querying ------------------------------------------------------------

    def expand_query(self, query: str, mode: SearchMode) -> list[str]:
        """Return the term list actually scored for ``query`` in ``mode``."""
        base_terms = tokenize(query)
        if mode is SearchMode.EXACT:
            return base_terms

        terms: list[str] = []
        seen: set[str] = set()

        def push(term: str) -> None:
            term = term.lower()
            if term not in seen:
                seen.add(term)
                terms.append(term)

        for token in base_terms:
            push(token)

        if mode in (SearchMode.SYNONYM, SearchMode.FULL) and self.synonyms is not None:
            # Expand multi-word phrases first (synonym tables hold phrases
            # like "india ink"), then individual tokens.
            for phrase_term in self.synonyms.expand(query.lower()):
                for token in tokenize(phrase_term):
                    push(token)
            for token in base_terms:
                for synonym in self.synonyms.expand(token):
                    for sub_token in tokenize(synonym):
                        push(sub_token)

        recovered: list[str] = []
        if mode in (SearchMode.FUZZY, SearchMode.FULL):
            for token in base_terms:
                expansions = self.index.fuzzy_expand(
                    token, self.fuzzy_limit, self.fuzzy_minimum
                )
                for expansion in expansions:
                    push(expansion)
                # Best non-identical expansion reconstructs the intended word.
                best = next((e for e in expansions if e != token), token)
                recovered.append(best)

        if mode is SearchMode.FULL and self.synonyms is not None and recovered:
            # The fuzzy-recovered phrase may itself be a synonym-table entry
            # ("blck nk" -> "black ink" -> "india ink").
            recovered_phrase = " ".join(recovered)
            if recovered_phrase != query.lower():
                for phrase_term in self.synonyms.expand(recovered_phrase):
                    for token in tokenize(phrase_term):
                        push(token)

        if mode is SearchMode.FULL and self.taxonomy_expander is not None:
            for extra in sorted(self.taxonomy_expander(query)):
                for token in tokenize(extra):
                    push(token)

        return terms

    def search(
        self, query: str, mode: SearchMode = SearchMode.FULL, limit: int = 10
    ) -> list[SearchHit]:
        """Ranked search with the expansion level of ``mode``."""
        terms = self.expand_query(query, mode)
        return self.index.search_terms(terms, limit)

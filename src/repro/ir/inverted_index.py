"""A tf-idf ranked inverted index with fuzzy vocabulary expansion.

This is the reproduction's stand-in for the AltaVista engine Cohera
Integrate compiled in (§4).  Besides classic ranked keyword search it keeps
an n-gram index over its own vocabulary, so a misspelled query term can be
expanded to the closest indexed terms before scoring -- the mechanism behind
"fuzzy mode" (§3.2 C7).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Hashable

from repro.ir.fuzzy import consonant_skeleton, levenshtein_similarity, ngram_jaccard
from repro.ir.tokenize import ngrams, tokenize


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    doc_id: Hashable
    score: float


class InvertedIndex:
    """Documents -> postings with tf-idf ranking.

    Documents are arbitrary hashable ids mapped to text.  Scoring is
    standard lnc-ltn-ish tf-idf with cosine-style length normalization,
    which is plenty for catalog-scale text.
    """

    def __init__(self, ngram_size: int = 3) -> None:
        self._postings: dict[str, dict[Hashable, int]] = defaultdict(dict)
        self._doc_lengths: dict[Hashable, float] = {}
        self._vocabulary_grams: dict[str, set[str]] = defaultdict(set)
        self._ngram_size = ngram_size

    # -- maintenance ---------------------------------------------------------

    def add(self, doc_id: Hashable, text: str) -> None:
        """Index (or re-index) one document."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        counts = Counter(tokenize(text))
        for term, count in counts.items():
            self._postings[term][doc_id] = count
            for gram in ngrams(term, self._ngram_size):
                self._vocabulary_grams[gram].add(term)
        self._doc_lengths[doc_id] = math.sqrt(
            sum((1 + math.log(c)) ** 2 for c in counts.values())
        ) or 1.0

    def remove(self, doc_id: Hashable) -> None:
        """Drop one document from the index (no-op if absent)."""
        if doc_id not in self._doc_lengths:
            return
        for term in list(self._postings):
            posting = self._postings[term]
            if doc_id in posting:
                del posting[doc_id]
                if not posting:
                    del self._postings[term]
                    for gram in ngrams(term, self._ngram_size):
                        self._vocabulary_grams[gram].discard(term)
        del self._doc_lengths[doc_id]

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def vocabulary(self) -> set[str]:
        return set(self._postings)

    # -- search ------------------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Ranked keyword search over the exact query terms."""
        return self._score(tokenize(query), limit)

    def search_terms(self, terms: list[str], limit: int = 10) -> list[SearchHit]:
        """Ranked search over pre-expanded terms (synonym/fuzzy pipelines)."""
        return self._score([t.lower() for t in terms], limit)

    def fuzzy_expand(self, term: str, limit: int = 3, minimum: float = 0.55) -> list[str]:
        """Return indexed vocabulary terms most similar to ``term``.

        Candidate generation goes through the vocabulary n-gram index (cheap),
        final ranking uses edit-distance similarity (accurate).
        """
        term = term.lower()
        # Note: even a term present in the vocabulary is still expanded --
        # catalog text itself contains misspellings, so an exact vocabulary
        # hit ("blck") does not mean the user's intent ("black") is absent.
        candidates: Counter[str] = Counter()
        for gram in ngrams(term, self._ngram_size):
            for vocab_term in self._vocabulary_grams.get(gram, ()):
                candidates[vocab_term] += 1
        term_skeleton = consonant_skeleton(term)
        scored = [(term, 1.0)] if term in self._postings else []
        for vocab_term in candidates:
            if vocab_term == term:
                continue
            direct = 0.5 * levenshtein_similarity(term, vocab_term) + 0.5 * ngram_jaccard(
                term, vocab_term, self._ngram_size
            )
            # Vowel-dropped abbreviations ("drlls") score poorly directly but
            # align on consonant skeletons; take the better view.
            skeleton = levenshtein_similarity(term_skeleton, consonant_skeleton(vocab_term))
            score = max(direct, 0.9 * skeleton)
            if score >= minimum:
                scored.append((vocab_term, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return [t for t, _ in scored[:limit]]

    def _score(self, terms: list[str], limit: int) -> list[SearchHit]:
        if not terms or not self._doc_lengths:
            return []
        scores: dict[Hashable, float] = defaultdict(float)
        total_docs = len(self._doc_lengths)
        for term, query_tf in Counter(terms).items():
            posting = self._postings.get(term)
            if not posting:
                continue
            idf = math.log(total_docs / len(posting)) + 1.0
            for doc_id, tf in posting.items():
                scores[doc_id] += query_tf * (1 + math.log(tf)) * idf
        hits = [
            SearchHit(doc_id, score / self._doc_lengths[doc_id])
            for doc_id, score in scores.items()
        ]
        hits.sort(key=lambda hit: (-hit.score, str(hit.doc_id)))
        return hits[:limit]

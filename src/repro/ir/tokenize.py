"""Tokenization for the IR engine.

Catalog text is short and noisy ("drlls: crdlss"), so tokenization is
deliberately simple and aggressive: lowercase, split on any non-alphanumeric
run, drop empty tokens.  N-grams (with padding) feed the fuzzy matcher.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens of ``text``, in order (duplicates kept)."""
    return _TOKEN_RE.findall(text.lower())


def ngrams(term: str, n: int = 3) -> set[str]:
    """Character n-grams of a term, padded so short terms still overlap.

    Padding with ``$`` anchors the first and last characters, which makes
    prefix/suffix agreement count -- important for vowel-dropped typos.
    """
    if not term:
        return set()
    padded = f"${term.lower()}$"
    if len(padded) <= n:
        return {padded}
    return {padded[i:i + n] for i in range(len(padded) - n + 1)}

"""Fuzzy (approximate) string matching.

The paper demands that a query for ``"drlls: crdlss"`` fetch records similar
to ``"cordless drills"`` (§3.2 C7).  Two complementary signals are provided:

* :func:`levenshtein` edit distance -- strong on typos and dropped vowels
  within a token;
* :func:`ngram_jaccard` -- order-insensitive, strong on token reordering
  ("ink, black" vs "black ink") and partial overlap.

:func:`combined_similarity` mixes both; experiment E6 ablates the mix.
"""

from __future__ import annotations

import re

from repro.ir.tokenize import ngrams, tokenize

_VOWELS_RE = re.compile(r"[aeiou]")


def consonant_skeleton(text: str) -> str:
    """Strip vowels from every token ("cordless drills" -> "crdlss drlls").

    Users abbreviate by dropping vowels; the paper's own example query
    "drlls: crdlss" *is* the consonant skeleton of "drills cordless".
    Comparing skeletons makes such queries nearly exact matches.
    """
    return " ".join(_VOWELS_RE.sub("", token) for token in tokenize(text))


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert / delete / substitute, all cost 1)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for memory locality.
    if len(b) < len(a):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, char_b in enumerate(b, start=1):
        current = [j]
        for i, char_a in enumerate(a, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[i] + 1,      # delete
                    current[i - 1] + 1,   # insert
                    previous[i - 1] + cost,  # substitute
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalized into [0, 1]; 1.0 means equal."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard overlap of character n-gram sets, in [0, 1]."""
    grams_a = ngrams(a, n)
    grams_b = ngrams(b, n)
    if not grams_a and not grams_b:
        return 1.0
    if not grams_a or not grams_b:
        return 0.0
    intersection = len(grams_a & grams_b)
    union = len(grams_a | grams_b)
    return intersection / union


def token_set_similarity(a: str, b: str) -> float:
    """Jaccard overlap of *word* token sets -- order-insensitive."""
    tokens_a = set(tokenize(a))
    tokens_b = set(tokenize(b))
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def combined_similarity(a: str, b: str, edit_weight: float = 0.5) -> float:
    """Blend of edit-distance and n-gram similarity over whole strings.

    Comparison is done on the token-sorted normalization of each string so
    word order does not penalize ("ink, black" == "black ink" exactly).
    Vowel-dropped abbreviations are handled by also comparing consonant
    skeletons and taking the better score (slightly damped, so a true
    spelled-out match still wins over a skeleton-only match).
    """
    normalized_a = " ".join(sorted(tokenize(a)))
    normalized_b = " ".join(sorted(tokenize(b)))

    def blend(x: str, y: str) -> float:
        edit = levenshtein_similarity(x, y)
        grams = ngram_jaccard(x, y)
        return edit_weight * edit + (1.0 - edit_weight) * grams

    direct = blend(normalized_a, normalized_b)
    skeleton = blend(
        " ".join(sorted(consonant_skeleton(normalized_a).split())),
        " ".join(sorted(consonant_skeleton(normalized_b).split())),
    )
    return max(direct, 0.95 * skeleton)


def best_matches(
    query: str,
    candidates: list[str],
    limit: int = 5,
    minimum: float = 0.0,
) -> list[tuple[str, float]]:
    """Rank ``candidates`` by combined similarity to ``query``.

    Ties break by candidate string so results are deterministic.
    """
    scored = [
        (candidate, combined_similarity(query, candidate)) for candidate in candidates
    ]
    scored = [(c, s) for c, s in scored if s >= minimum]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored[:limit]

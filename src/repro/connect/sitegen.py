"""Synthetic supplier web sites.

Stands in for the paper's real-world supplier sites.  Each generated site
serves one supplier's catalog in one of several *layouts* (table-based,
div-based, definition-list) with site-specific price formatting, optional
form login with cookie sessions, pagination, and a volatile availability
endpoint.  The layout variation is the point: wrappers and the wrapper
inducer must cope with the same heterogeneity the paper's content managers
faced.

The ``products`` list a site is built over is held *by reference*: mutate a
product dict (price, qty) and the next page fetch reflects it.  That is how
Characteristic 5's volatility reaches the web path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.connect.simweb import HttpRequest, HttpResponse, WebSite
from repro.xmlkit.model import XmlElement, xml_escape

LAYOUTS = ("table", "divs", "dl")

SESSION_COOKIE = "session"
SESSION_TOKEN = "authenticated-0042"


def format_price(amount: float, currency: str, style: str) -> str:
    """Render a price the way one particular supplier site does.

    Styles: ``symbol`` -> ``$5.00`` / ``F5.00``; ``code-prefix`` ->
    ``USD 5.00``; ``code-suffix`` -> ``5,00 FRF`` (European decimal comma).
    """
    if style == "symbol":
        symbol = {"USD": "$", "FRF": "F", "EUR": "€", "GBP": "£"}.get(
            currency, currency + " "
        )
        return f"{symbol}{amount:.2f}"
    if style == "code-prefix":
        return f"{currency} {amount:.2f}"
    if style == "code-suffix":
        return f"{amount:.2f}".replace(".", ",") + f" {currency}"
    raise ValueError(f"unknown price style {style!r}")


@dataclass
class SupplierSite:
    """A generated site plus the knobs a test/benchmark needs."""

    host: str
    site: WebSite
    products: list[dict[str, Any]]
    layout: str
    price_style: str
    page_size: int
    requires_login: bool
    username: str = "buyer"
    password: str = "secret"

    @property
    def page_count(self) -> int:
        return max(1, math.ceil(len(self.products) / self.page_size))

    def catalog_url(self, page: int = 1) -> str:
        return f"http://{self.host}/catalog?page={page}"

    def login_url(self) -> str:
        return f"http://{self.host}/login"


def build_supplier_site(
    host: str,
    products: list[dict[str, Any]],
    layout: str = "table",
    price_style: str = "symbol",
    page_size: int = 25,
    latency: float = 0.2,
    requires_login: bool = False,
    https_only: bool = False,
) -> SupplierSite:
    """Build a :class:`WebSite` serving ``products`` in the given layout.

    Each product dict should carry ``sku``, ``name``, ``price`` (float),
    ``currency``, ``qty`` and may carry ``category`` and ``description``.
    """
    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r}; pick one of {LAYOUTS}")

    site = WebSite(host, latency=latency, https_only=https_only)
    supplier = SupplierSite(
        host, site, products, layout, price_style, page_size, requires_login
    )

    def logged_in(request: HttpRequest) -> bool:
        return request.cookies.get(SESSION_COOKIE) == SESSION_TOKEN

    @site.route("/")
    def index(request: HttpRequest) -> HttpResponse:
        pages = "".join(
            f'<li><a href="/catalog?page={n}">Page {n}</a></li>'
            for n in range(1, supplier.page_count + 1)
        )
        return HttpResponse(
            body=f"<html><head><title>{host}</title></head><body>"
            f"<h1>{host} catalog</h1><ul class='pages'>{pages}</ul>"
            "</body></html>"
        )

    @site.route("/login")
    def login(request: HttpRequest) -> HttpResponse:
        if request.method == "POST":
            if (
                request.form.get("user") == supplier.username
                and request.form.get("password") == supplier.password
            ):
                response = HttpResponse.redirect("/catalog?page=1")
                response.set_cookies[SESSION_COOKIE] = SESSION_TOKEN
                return response
            return HttpResponse(status=401, body="<html><body>bad credentials</body></html>")
        return HttpResponse(
            body="<html><body><form method='post' action='/login'>"
            "<input name='user'><input name='password' type='password'>"
            "<input type='submit' value='Sign in'></form></body></html>"
        )

    @site.route("/catalog")
    def catalog(request: HttpRequest) -> HttpResponse:
        if requires_login and not logged_in(request):
            return HttpResponse.redirect("/login")
        try:
            page = int(request.params.get("page", "1"))
        except ValueError:
            page = 1
        page = min(max(page, 1), supplier.page_count)
        start = (page - 1) * page_size
        chunk = products[start:start + page_size]
        body = _render_catalog_page(host, chunk, layout, price_style, page, supplier.page_count)
        return HttpResponse(body=body)

    @site.route("/item/")
    def item_detail(request: HttpRequest) -> HttpResponse:
        if requires_login and not logged_in(request):
            return HttpResponse.redirect("/login")
        sku = request.url.path.rsplit("/", 1)[-1]
        for product in products:
            if product["sku"] == sku:
                description = product.get("description", "")
                return HttpResponse(
                    body=f"<html><body><h1 class='name'>{xml_escape(product['name'])}</h1>"
                    f"<span class='sku'>{xml_escape(sku)}</span>"
                    f"<span class='price'>{format_price(product['price'], product['currency'], price_style)}</span>"
                    f"<span class='qty'>{product['qty']}</span>"
                    f"<p class='description'>{xml_escape(description)}</p>"
                    "</body></html>"
                )
        return HttpResponse.not_found(request.url.path)

    @site.route("/api/availability")
    def availability(request: HttpRequest) -> HttpResponse:
        sku = request.params.get("sku", "")
        for product in products:
            if product["sku"] == sku:
                element = XmlElement(
                    "availability",
                    {"sku": sku, "qty": str(product["qty"]),
                     "price": f"{product['price']:.2f}",
                     "currency": product["currency"]},
                )
                return HttpResponse(body=element.to_string(), content_type="text/xml")
        return HttpResponse(status=404, body="<error>unknown sku</error>", content_type="text/xml")

    return supplier


def _render_catalog_page(
    host: str,
    chunk: list[dict[str, Any]],
    layout: str,
    price_style: str,
    page: int,
    page_count: int,
) -> str:
    """Render one catalog page in the site's layout."""
    if layout == "table":
        rows = "".join(
            "<tr class='item'>"
            f"<td class='sku'>{xml_escape(p['sku'])}</td>"
            f"<td class='name'>{xml_escape(p['name'])}</td>"
            f"<td class='price'>{format_price(p['price'], p['currency'], price_style)}</td>"
            f"<td class='qty'>{p['qty']}</td>"
            "</tr>"
            for p in chunk
        )
        listing = (
            "<table class='catalog'><tr><th>SKU</th><th>Product</th>"
            f"<th>Price</th><th>Stock</th></tr>{rows}</table>"
        )
    elif layout == "divs":
        listing = "".join(
            "<div class='product'>"
            f"<div class='title'>{xml_escape(p['name'])}</div>"
            f"<div class='meta'>Item <b class='sku'>{xml_escape(p['sku'])}</b>"
            f" | In stock: <i class='qty'>{p['qty']}</i></div>"
            f"<div class='cost'>{format_price(p['price'], p['currency'], price_style)}</div>"
            "</div>"
            for p in chunk
        )
    else:  # "dl" definition-list layout
        entries = "".join(
            f"<dt class='sku'>{xml_escape(p['sku'])}</dt>"
            f"<dd><span class='name'>{xml_escape(p['name'])}</span> &mdash; "
            f"<span class='price'>{format_price(p['price'], p['currency'], price_style)}</span>"
            f" (<span class='qty'>{p['qty']}</span> on hand)</dd>"
            for p in chunk
        )
        listing = f"<dl class='catalog'>{entries}</dl>"

    nav = ""
    if page < page_count:
        nav = f"<a class='next' href='/catalog?page={page + 1}'>Next</a>"
    return (
        f"<html><head><title>{host} page {page}</title></head><body>"
        f"<div class='banner'>Special offers this week!</div>"
        f"{listing}<div class='nav'>{nav}</div>"
        "</body></html>"
    )

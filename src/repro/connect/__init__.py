"""Cohera Connect analog: access to heterogeneous content sources.

The paper's Characteristic 1: "a good content integration solution must
support a variety of relationships between the content integrator and the
content owners, ranging from scraping web sites to directly accessing
internal systems."  This package supplies both ends of that range:

* :mod:`repro.connect.simweb` -- a deterministic simulated web (sites,
  sessions, cookies, logins, latency, failures) standing in for the live
  internet, plus :class:`~repro.connect.simweb.WebClient`.
* :mod:`repro.connect.sitegen` -- synthetic supplier web sites in varied
  layouts; the heterogeneous "outside world" wrappers must cope with.
* :mod:`repro.connect.wrapper` -- regex and DOM wrappers turning pages into
  :class:`~repro.core.records.Table` rows (Cohera Connect's two wrapper
  modes, §4).
* :mod:`repro.connect.induction` -- semi-automatic wrapper induction from
  labeled examples, with fix-by-example repair (§3.1 C1).
* :mod:`repro.connect.agent` -- a scripted browser agent handling logins,
  cookies and pagination (§4: "automatically navigate complex web pages").
* :mod:`repro.connect.gateways` -- direct-access connectors: an ERP-style
  gateway, CSV and XML file connectors.

All connectors expose the :class:`~repro.connect.source.ContentSource`
protocol the federation queries.
"""

from repro.connect.agent import BrowserAgent, NavigationScript
from repro.connect.gateways import CsvConnector, ErpGateway, ErpSystem, XmlConnector
from repro.connect.induction import InducedWrapper, WrapperInducer
from repro.connect.simweb import (
    HttpRequest,
    HttpResponse,
    SimulatedWeb,
    WebClient,
    WebSite,
    parse_url,
)
from repro.connect.registry import EnablementPlan, SupplierListing, SupplierRegistry
from repro.connect.source import ContentSource, FetchResult
from repro.connect.training import TrainingProposal, WrapperTrainingSession
from repro.connect.transformed import PipelineSource
from repro.connect.wrapper import DomWrapper, RegexWrapper, WebSourceWrapper

__all__ = [
    "BrowserAgent",
    "NavigationScript",
    "CsvConnector",
    "ErpGateway",
    "ErpSystem",
    "XmlConnector",
    "InducedWrapper",
    "WrapperInducer",
    "HttpRequest",
    "HttpResponse",
    "SimulatedWeb",
    "WebClient",
    "WebSite",
    "parse_url",
    "ContentSource",
    "FetchResult",
    "DomWrapper",
    "RegexWrapper",
    "WebSourceWrapper",
    "EnablementPlan",
    "SupplierListing",
    "SupplierRegistry",
    "TrainingProposal",
    "WrapperTrainingSession",
    "PipelineSource",
]

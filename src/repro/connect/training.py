"""The wrapper training loop (the engine behind a training GUI).

Cohera Connect "comes with an intuitive graphical 'training' interface for
generating HTML and XML wrappers" (§4).  A GUI is out of scope for a
library, but the *session logic* behind one is not:

1. The content manager opens a sample page and marks one record
   (:meth:`WrapperTrainingSession.mark_record`).
2. The session induces a wrapper and shows what it would extract
   (:meth:`propose`).
3. The manager either accepts (:meth:`accept`) or marks a record the
   proposal got wrong -- which is just another :meth:`mark_record` -- and
   the loop repeats.

The session records every human action, so the "cost of a person using the
system to perform a task" (§3.1 themes) is measurable: see
``human_actions`` and experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.connect.induction import InducedWrapper, WrapperInducer
from repro.core.errors import WrapperError


@dataclass
class TrainingProposal:
    """What the current wrapper would extract from the sample page."""

    records: list[dict[str, str]]
    wrapper: InducedWrapper | None
    error: str = ""

    @property
    def learned(self) -> bool:
        return self.wrapper is not None


@dataclass
class WrapperTrainingSession:
    """One manager + one sample page + one wrapper-in-progress."""

    fields: tuple[str, ...]
    page: str
    human_actions: int = 0
    accepted: bool = False
    _inducer: WrapperInducer = field(init=False)
    _wrapper: InducedWrapper | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.fields = tuple(self.fields)
        self._inducer = WrapperInducer(self.fields)

    # -- the manager's actions ------------------------------------------------

    def mark_record(self, record: dict[str, str]) -> TrainingProposal:
        """Mark one record's field values on the page; re-learn; preview."""
        if self.accepted:
            raise WrapperError("training session is already accepted")
        self._inducer.add_example(self.page, record)
        self.human_actions += 1
        return self.propose()

    def propose(self) -> TrainingProposal:
        """Induce from marks so far and preview the extraction."""
        try:
            self._wrapper = self._inducer.learn()
        except WrapperError as error:
            self._wrapper = None
            return TrainingProposal([], None, str(error))
        return TrainingProposal(self._wrapper.extract(self.page), self._wrapper)

    def accept(self) -> InducedWrapper:
        """The manager signs off; returns the trained wrapper."""
        if self._wrapper is None:
            raise WrapperError("nothing to accept: no wrapper learned yet")
        self.accepted = True
        self.human_actions += 1
        return self._wrapper

    # -- convenience driver -----------------------------------------------------

    def train_against(
        self,
        truth: list[dict[str, str]],
        max_rounds: int = 10,
    ) -> InducedWrapper:
        """Simulate a diligent manager: mark records until the preview is
        perfect against ``truth``, then accept.  Used by tests/benchmarks to
        measure human cost; a real GUI would drive the same calls."""
        if not truth:
            raise WrapperError("cannot train against an empty record set")
        proposal = self.mark_record(truth[0])
        for _ in range(max_rounds):
            if proposal.learned and self._matches(proposal.records, truth):
                return self.accept()
            misread = self._first_misread(proposal.records, truth)
            if misread is None:
                return self.accept()
            proposal = self.mark_record(misread)
        raise WrapperError(
            f"training did not converge within {max_rounds} rounds; "
            "this page family needs an expert-written wrapper"
        )

    @staticmethod
    def _normalize(record: dict[str, str]) -> dict[str, str]:
        return {k: " ".join(str(v).split()) for k, v in record.items()}

    def _matches(self, extracted: list[dict[str, str]], truth: list[dict[str, str]]) -> bool:
        extracted_normalized = [self._normalize(r) for r in extracted]
        return all(self._normalize(t) in extracted_normalized for t in truth)

    def _first_misread(
        self, extracted: list[dict[str, str]], truth: list[dict[str, str]]
    ) -> dict[str, str] | None:
        extracted_normalized = [self._normalize(r) for r in extracted]
        for record in truth:
            if self._normalize(record) not in extracted_normalized:
                return record
        return None

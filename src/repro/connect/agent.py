"""A scripted browser agent.

Cohera Connect "includes a full-function web browser agent, which can
automatically navigate complex web pages, correctly managing issues like
DHTML, JavaScript, cookies, passwords, and HTTPS" (§4).  Our analog drives
the simulated web: it keeps a current page, fills and submits forms (logins),
follows links by selector or by link text, and collects pages while walking
pagination -- all through a :class:`~repro.connect.simweb.WebClient`, so
cookies and HTTPS policies are honoured automatically.

Navigation can be driven imperatively (call methods) or declaratively via
:class:`NavigationScript`, which is how trained wrappers store their access
recipe ("how to access some data", §3.1 C1) next to their parse recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.connect.simweb import HttpResponse, WebClient, build_url, parse_url
from repro.core.errors import WrapperError
from repro.htmlkit import Element, parse_html


@dataclass(frozen=True)
class Goto:
    url: str


@dataclass(frozen=True)
class SubmitForm:
    """Fill and submit the first form matching ``form_selector``."""

    fields: dict[str, str]
    form_selector: str = "form"


@dataclass(frozen=True)
class FollowLink:
    """Follow the first anchor matching a selector or containing text."""

    selector: str = "a"
    text: str | None = None


@dataclass(frozen=True)
class Collect:
    """Record the current page body under a label."""

    label: str = "page"


@dataclass(frozen=True)
class CollectAllPages:
    """Collect the current page, then keep following ``next_selector``."""

    next_selector: str = "a.next"
    label: str = "page"
    max_pages: int = 1000


Step = Union[Goto, SubmitForm, FollowLink, Collect, CollectAllPages]


@dataclass
class NavigationScript:
    """A stored access recipe: an ordered list of navigation steps."""

    steps: list[Step] = field(default_factory=list)


class BrowserAgent:
    """Stateful navigation over the simulated web."""

    def __init__(self, client: WebClient) -> None:
        self.client = client
        self.current_url: str | None = None
        self.current_body: str = ""
        self.collected: list[tuple[str, str]] = []  # (label, body)

    # -- imperative API -----------------------------------------------------

    @property
    def dom(self) -> Element:
        return parse_html(self.current_body)

    def goto(self, url: str) -> HttpResponse:
        response = self.client.get(url)
        self._land(url, response)
        return response

    def submit_form(
        self, fields: dict[str, str], form_selector: str = "form"
    ) -> HttpResponse:
        """Fill the named inputs of the first matching form and submit it."""
        self._require_page()
        forms = self.dom.select(form_selector)
        if not forms:
            raise WrapperError(f"no form matching {form_selector!r} on {self.current_url!r}")
        form = forms[0]
        action = form.get("action") or parse_url(self.current_url).path
        method = (form.get("method") or "get").upper()

        # Pre-fill declared inputs (keeps hidden fields), then overlay values.
        data: dict[str, str] = {}
        for input_element in form.find_all("input"):
            name = input_element.get("name")
            if name:
                data[name] = input_element.get("value") or ""
        data.update(fields)

        target = self._absolutize(action)
        if method == "POST":
            response = self.client.post(target, data)
        else:
            response = self.client.get(build_url(*_merge_params(target, data)))
        self._land(target, response)
        return response

    def follow_link(self, selector: str = "a", text: str | None = None) -> HttpResponse:
        """Follow the first matching anchor; optionally require link text."""
        self._require_page()
        for anchor in self.dom.select(selector):
            if anchor.tag != "a":
                continue
            if text is not None and text.lower() not in anchor.get_text().lower():
                continue
            href = anchor.get("href")
            if not href:
                continue
            target = self._absolutize(href)
            response = self.client.get(target)
            self._land(target, response)
            return response
        raise WrapperError(
            f"no link matching selector={selector!r} text={text!r} "
            f"on {self.current_url!r}"
        )

    def collect(self, label: str = "page") -> None:
        self._require_page()
        self.collected.append((label, self.current_body))

    def collect_all_pages(
        self, next_selector: str = "a.next", label: str = "page", max_pages: int = 1000
    ) -> int:
        """Collect this page and every page reachable via the next link."""
        self._require_page()
        count = 0
        for _ in range(max_pages):
            self.collect(label)
            count += 1
            try:
                self.follow_link(next_selector)
            except WrapperError:
                break
        return count

    # -- declarative API ------------------------------------------------------

    def run(self, script: NavigationScript) -> list[str]:
        """Execute a stored script; return the collected page bodies."""
        self.collected.clear()
        for step in script.steps:
            if isinstance(step, Goto):
                self.goto(step.url)
            elif isinstance(step, SubmitForm):
                self.submit_form(step.fields, step.form_selector)
            elif isinstance(step, FollowLink):
                self.follow_link(step.selector, step.text)
            elif isinstance(step, Collect):
                self.collect(step.label)
            elif isinstance(step, CollectAllPages):
                self.collect_all_pages(step.next_selector, step.label, step.max_pages)
            else:
                raise WrapperError(f"unknown navigation step {step!r}")
        return [body for _, body in self.collected]

    # -- internals ---------------------------------------------------------------

    def _require_page(self) -> None:
        if self.current_url is None:
            raise WrapperError("agent has no current page; goto() first")

    def _land(self, url: str, response: HttpResponse) -> None:
        self.current_url = url
        self.current_body = response.body

    def _absolutize(self, href: str) -> str:
        if "://" in href:
            return href
        base = parse_url(self.current_url)
        if not href.startswith("/"):
            href = "/" + href
        path, _, query = href.partition("?")
        params = {}
        if query:
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                params[key] = value
        return build_url(base.scheme, base.host, path, params)


def _merge_params(url: str, extra: dict[str, str]) -> tuple[str, str, str, dict[str, str]]:
    parsed = parse_url(url)
    params = dict(parsed.params)
    params.update(extra)
    return parsed.scheme, parsed.host, parsed.path, params

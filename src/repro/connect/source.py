"""The ContentSource protocol: what the federation sees of any connector.

Every way of getting content -- scraping a site, querying an ERP gateway,
reading a file -- ends in an object with a schema, a ``fetch`` method taking
optional pushed-down predicates, and cost/availability metadata the
federated optimizer uses.  This uniformity is what lets the optimizer treat
"a scraped web site" and "a relational gateway" as interchangeable access
paths (§3.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.errors import QueryError
from repro.core.records import Table
from repro.core.schema import Schema


@dataclass(frozen=True)
class Predicate:
    """A simple comparison that sources may evaluate locally (pushdown)."""

    column: str
    op: str  # one of =, !=, <, <=, >, >=, contains
    value: Any

    _OPS = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a is not None and a < b,
        "<=": lambda a, b: a is not None and a <= b,
        ">": lambda a, b: a is not None and a > b,
        ">=": lambda a, b: a is not None and a >= b,
        "contains": lambda a, b: a is not None and str(b).lower() in str(a).lower(),
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unsupported predicate operator {self.op!r}")

    def matches(self, row: dict[str, Any]) -> bool:
        try:
            return self._OPS[self.op](row.get(self.column), self.value)
        except TypeError as error:
            raise QueryError(
                f"cannot apply {self.column} {self.op} {self.value!r} "
                f"to value {row.get(self.column)!r}: {error}"
            ) from error


def apply_predicates(table: Table, predicates: Sequence[Predicate]) -> Table:
    """Filter ``table`` by all ``predicates`` (helper for sources)."""
    if not predicates:
        return table
    return table.where(lambda row: all(p.matches(row.to_dict()) for p in predicates))


@dataclass
class FetchResult:
    """A fetched table plus the cost actually incurred getting it."""

    table: Table
    cost_seconds: float = 0.0
    fetched_at: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.table)


class ContentSource(abc.ABC):
    """Abstract base for every connector the federation can query."""

    name: str
    schema: Schema

    @abc.abstractmethod
    def fetch(self, predicates: Sequence[Predicate] = ()) -> FetchResult:
        """Retrieve (a predicate-filtered view of) the source's content."""

    def is_available(self) -> bool:
        """Whether a fetch right now is expected to succeed."""
        return True

    def estimated_rows(self) -> int:
        """Optimizer statistic: expected row count of an unfiltered fetch."""
        return 1000

    def estimated_cost(self) -> float:
        """Optimizer statistic: expected seconds for an unfiltered fetch."""
        return 1.0


class LiveSource(ContentSource):
    """A source over *mutable* operational state (Characteristic 5).

    ``rows_fn`` re-reads the owner's live state on every fetch, so updates
    between fetches are always visible -- this is the fetch-on-demand path
    volatile content (hotel rooms, airline seats, spot prices) flows
    through.
    """

    def __init__(
        self,
        name: str,
        schema: "Schema",
        rows_fn,
        cost_seconds: float = 0.05,
        estimated_rows: int | None = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self._rows_fn = rows_fn
        self._cost = cost_seconds
        self._estimated_rows = estimated_rows

    def fetch(self, predicates: Sequence[Predicate] = ()) -> FetchResult:
        table = Table.from_dicts(self.schema, self._rows_fn())
        return FetchResult(
            apply_predicates(table, predicates), cost_seconds=self._cost
        )

    def estimated_rows(self) -> int:
        if self._estimated_rows is not None:
            return self._estimated_rows
        return len(self._rows_fn())

    def estimated_cost(self) -> float:
        return self._cost


class StaticSource(ContentSource):
    """A trivial in-memory source (used by tests and as cached content)."""

    def __init__(self, name: str, table: Table, cost_seconds: float = 0.0) -> None:
        self.name = name
        self.schema = table.schema
        self._table = table
        self._cost = cost_seconds

    def fetch(self, predicates: Sequence[Predicate] = ()) -> FetchResult:
        return FetchResult(
            apply_predicates(self._table, predicates), cost_seconds=self._cost
        )

    def estimated_rows(self) -> int:
        return len(self._table)

    def estimated_cost(self) -> float:
        return self._cost

"""Wrappers: turning fetched pages into relational rows.

Cohera Connect's wrappers "can operate either on regular expressions or by
navigating the Document Object Model" (§4).  Both modes are here:

* :class:`RegexWrapper` -- a row pattern with named groups, applied to raw
  markup.
* :class:`DomWrapper` -- CSS-ish selectors over the parsed DOM: one selector
  finds row elements, per-field selectors extract values within each row.

A page wrapper only understands *one page*.  :class:`WebSourceWrapper`
lifts a page wrapper into a full :class:`~repro.connect.source.ContentSource`:
it logs in if required, walks pagination links, extracts every page, coerces
field types and reports the simulated fetch cost -- the unit the federated
optimizer reasons about.
"""

from __future__ import annotations

import abc
import re
from typing import Any, Callable, Sequence

from repro.connect.simweb import WebClient, build_url, parse_url
from repro.connect.source import ContentSource, FetchResult, Predicate, apply_predicates
from repro.core.errors import SourceUnavailableError, WrapperError
from repro.core.records import Table
from repro.core.schema import DataType, Field, Schema
from repro.htmlkit import parse_html


class PageWrapper(abc.ABC):
    """Parses one HTML page into a list of field dicts."""

    fields: tuple[str, ...]

    @abc.abstractmethod
    def extract(self, markup: str) -> list[dict[str, str]]:
        """Return one dict per record found on the page."""


class RegexWrapper(PageWrapper):
    """Extract rows with a single regular expression.

    ``pattern`` must use named groups; each match becomes one record.  The
    pattern is compiled with DOTALL so row templates may span lines.
    """

    def __init__(self, pattern: str) -> None:
        self.pattern = re.compile(pattern, re.DOTALL)
        names = tuple(self.pattern.groupindex)
        if not names:
            raise WrapperError("regex wrapper pattern needs named groups")
        self.fields = names

    def extract(self, markup: str) -> list[dict[str, str]]:
        return [
            {name: (value or "").strip() for name, value in match.groupdict().items()}
            for match in self.pattern.finditer(markup)
        ]


class DomWrapper(PageWrapper):
    """Extract rows by navigating the parsed DOM.

    ``row_selector`` locates one element per record; ``field_selectors``
    maps each field name to a selector evaluated *within* the row element
    (or ``"."`` for the row's own text).
    """

    def __init__(self, row_selector: str, field_selectors: dict[str, str]) -> None:
        if not field_selectors:
            raise WrapperError("dom wrapper needs at least one field selector")
        self.row_selector = row_selector
        self.field_selectors = dict(field_selectors)
        self.fields = tuple(field_selectors)

    def extract(self, markup: str) -> list[dict[str, str]]:
        document = parse_html(markup)
        records = []
        for row in document.select(self.row_selector):
            record: dict[str, str] = {}
            for name, selector in self.field_selectors.items():
                if selector == ".":
                    record[name] = row.get_text(separator=" ")
                    continue
                matches = row.select(selector)
                record[name] = matches[0].get_text(separator=" ") if matches else ""
            records.append(record)
        return records


# Coercers turn extracted strings into typed values.
Coercer = Callable[[str], Any]


def int_coercer(text: str) -> int | None:
    digits = re.sub(r"[^\d-]", "", text)
    return int(digits) if digits and digits != "-" else None


def float_coercer(text: str) -> float | None:
    cleaned = re.sub(r"[^\d,.\-]", "", text)
    if not cleaned:
        return None
    # European decimal comma: "5,00" -> "5.00"; thousands separators dropped.
    if "," in cleaned and "." not in cleaned:
        cleaned = cleaned.replace(",", ".")
    else:
        cleaned = cleaned.replace(",", "")
    try:
        return float(cleaned)
    except ValueError:
        return None


_COERCER_TYPES: dict[str, DataType] = {}


class WebSourceWrapper(ContentSource):
    """A complete scraped source: login + pagination + extraction + typing.

    Parameters
    ----------
    name:
        Source name registered in the federation catalog.
    client:
        The :class:`WebClient` used for fetching (shared cookie jar).
    start_url:
        First catalog page.
    page_wrapper:
        The per-page extraction strategy.
    coercers:
        Optional per-field type coercion; uncoerced fields stay strings.
    login:
        Optional ``(login_url, form)`` performed once before scraping.
    next_selector:
        CSS selector for the "next page" link; pagination follows it until
        absent or ``max_pages`` is reached.
    """

    def __init__(
        self,
        name: str,
        client: WebClient,
        start_url: str,
        page_wrapper: PageWrapper,
        coercers: dict[str, Coercer] | None = None,
        login: tuple[str, dict[str, str]] | None = None,
        next_selector: str = "a.next",
        max_pages: int = 1000,
        expected_rows: int = 1000,
    ) -> None:
        self.name = name
        self.client = client
        self.start_url = start_url
        self.page_wrapper = page_wrapper
        self.coercers = dict(coercers or {})
        self.login = login
        self.next_selector = next_selector
        self.max_pages = max_pages
        self._expected_rows = expected_rows
        self.schema = self._build_schema()
        self._logged_in = False

    def _build_schema(self) -> Schema:
        fields = []
        for name in self.page_wrapper.fields:
            coercer = self.coercers.get(name)
            if coercer is int_coercer:
                dtype = DataType.INTEGER
            elif coercer is float_coercer:
                dtype = DataType.FLOAT
            else:
                dtype = DataType.STRING
            fields.append(Field(name, dtype))
        return Schema(self.name, tuple(fields))

    def _ensure_login(self) -> None:
        if self.login is None or self._logged_in:
            return
        url, form = self.login
        response = self.client.post(url, form)
        if response.status >= 400:
            raise WrapperError(f"login to {url!r} failed with status {response.status}")
        self._logged_in = True

    def _coerce(self, record: dict[str, str]) -> tuple[Any, ...]:
        values = []
        for name in self.page_wrapper.fields:
            raw = record.get(name, "")
            coercer = self.coercers.get(name)
            values.append(coercer(raw) if coercer else raw)
        return tuple(values)

    def fetch(self, predicates: Sequence[Predicate] = ()) -> FetchResult:
        started = self.client.time_spent
        self._ensure_login()

        rows: list[tuple[Any, ...]] = []
        url = self.start_url
        base = parse_url(self.start_url)
        for _ in range(self.max_pages):
            response = self.client.get(url)
            if response.status >= 400:
                raise WrapperError(
                    f"fetching {url!r} for source {self.name!r} "
                    f"returned status {response.status}"
                )
            rows.extend(self._coerce(r) for r in self.page_wrapper.extract(response.body))
            next_url = self._find_next(response.body, base)
            if next_url is None:
                break
            url = next_url

        table = Table(self.schema, rows, validate=False)
        table = apply_predicates(table, predicates)
        cost = self.client.time_spent - started
        return FetchResult(
            table,
            cost_seconds=cost,
            fetched_at=self.client.web.clock.now(),
            metadata={"pages": self.client.requests_made},
        )

    def _find_next(self, markup: str, base) -> str | None:
        document = parse_html(markup)
        links = document.select(self.next_selector)
        if not links:
            return None
        href = links[0].get("href")
        if not href:
            return None
        if href.startswith("/"):
            return build_url(base.scheme, base.host, *_split_path_params(href))
        return href

    def is_available(self) -> bool:
        try:
            return self.client.web.site(parse_url(self.start_url).host).up
        except SourceUnavailableError:
            return False

    def estimated_rows(self) -> int:
        return self._expected_rows

    def estimated_cost(self) -> float:
        site = self.client.web.site(parse_url(self.start_url).host)
        pages = max(1, self._expected_rows // 25)
        return site.latency * pages


def _split_path_params(href: str) -> tuple[str, dict[str, str]]:
    path, _, query = href.partition("?")
    params = {}
    if query:
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            params[key] = value
    return path, params

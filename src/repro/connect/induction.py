"""Semi-automatic wrapper induction ("fix-by-example").

The paper (§3.1 C1) asks for "an integration of semi-automatic wrapping
(since no automatic scheme we have seen is close to foolproof) with simple
fix-by-example graphical interfaces".  This module implements the engine of
that loop, in the LR (left-right delimiter) family of Kushmerick's wrapper
induction:

1. A content manager marks a handful of example records on a sample page
   (here: dicts of field -> exact text as it appears in the markup).
2. :class:`WrapperInducer` finds, for every field, the longest left and
   right delimiter strings shared by all examples, producing an
   :class:`InducedWrapper` (a normal
   :class:`~repro.connect.wrapper.PageWrapper`).
3. If the wrapper misreads some record on another page, the manager adds
   that record as a new example -- :meth:`WrapperInducer.fix_by_example` --
   and the delimiters are re-learned from the enlarged example set.

With one example the delimiters overfit (they may embed another record's
variable text); each added example shrinks them toward the true page
template.  Experiment E8 measures exactly this accuracy-vs-examples curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.connect.wrapper import PageWrapper
from repro.core.errors import WrapperError

# Delimiters longer than this are truncated: sites never need more context,
# and unbounded delimiters drag in whole preceding records.
MAX_DELIMITER = 80


def common_suffix(texts: list[str]) -> str:
    """Longest string that is a suffix of every text in ``texts``."""
    if not texts:
        return ""
    shortest = min(texts, key=len)
    for length in range(len(shortest), 0, -1):
        candidate = shortest[-length:]
        if all(t.endswith(candidate) for t in texts):
            return candidate
    return ""


def common_prefix(texts: list[str]) -> str:
    """Longest string that is a prefix of every text in ``texts``."""
    if not texts:
        return ""
    shortest = min(texts, key=len)
    for length in range(len(shortest), 0, -1):
        candidate = shortest[:length]
        if all(t.startswith(candidate) for t in texts):
            return candidate
    return ""


def _shorten_right(delimiter: str) -> str:
    """Truncate a right delimiter at the end of its first complete tag.

    A right delimiter is only used to *terminate* a value (``find`` stops at
    its first occurrence), so any prefix that cannot occur inside a value is
    as correct as the full common prefix -- and generalizes better.  Two
    failure modes of the full prefix are cured at once: the last record on a
    page has no following record to supply the long delimiter, and example
    values of the next record can leak a shared prefix (``A-1``/``A-2`` leak
    ``A-``) into it.  Values are text without ``>``, so cutting after the
    first tag is safe.
    """
    first = delimiter.find(">")
    if first == -1:
        return delimiter
    return delimiter[:first + 1]


def _shorten_left(delimiter: str) -> str:
    """Truncate a left delimiter to its last complete-or-partial tag.

    Extraction scans fields sequentially, so a left delimiter only needs to
    be specific enough to find the *next* occurrence of the field's slot --
    the nearest enclosing tag (e.g. ``<td class='sku'>``) almost always is.
    Keeping earlier context would tie the delimiter to whatever preceded the
    example record (the page header for the first record, the previous
    record for others), which does not generalize.
    """
    last = delimiter.rfind("<")
    if last == -1:
        return delimiter
    return delimiter[last:]


@dataclass
class InducedWrapper(PageWrapper):
    """A learned LR wrapper: per-field (left, right) delimiter pairs."""

    fields: tuple[str, ...]
    delimiters: tuple[tuple[str, str], ...]

    def extract(self, markup: str) -> list[dict[str, str]]:
        records: list[dict[str, str]] = []
        position = 0
        first_left = self.delimiters[0][0]
        while True:
            start = markup.find(first_left, position)
            if start == -1:
                break
            record: dict[str, str] = {}
            cursor = start
            ok = True
            for (left, right), name in zip(self.delimiters, self.fields):
                begin = markup.find(left, cursor)
                if begin == -1:
                    ok = False
                    break
                begin += len(left)
                end = markup.find(right, begin)
                if end == -1:
                    ok = False
                    break
                record[name] = markup[begin:end].strip()
                cursor = end
            if not ok:
                break
            records.append(record)
            position = max(cursor, start + len(first_left))
        return records


class WrapperInducer:
    """Learns an :class:`InducedWrapper` from labeled example records."""

    def __init__(self, fields: tuple[str, ...] | list[str]) -> None:
        if not fields:
            raise WrapperError("induction needs at least one field")
        self.fields = tuple(fields)
        self.examples: list[tuple[str, dict[str, str]]] = []

    # -- example management -------------------------------------------------

    def add_example(self, page: str, record: dict[str, str]) -> None:
        """Add a labeled example: ``record`` values appear verbatim in ``page``."""
        missing = [f for f in self.fields if f not in record]
        if missing:
            raise WrapperError(f"example record lacks fields {missing!r}")
        self.examples.append((page, record))

    def fix_by_example(self, page: str, record: dict[str, str]) -> InducedWrapper:
        """The repair loop: add a misread record as an example and re-learn."""
        self.add_example(page, record)
        return self.learn()

    # -- learning ------------------------------------------------------------

    def learn(self) -> InducedWrapper:
        """Induce delimiters from all accumulated examples.

        The order fields appear on the page need not match the order the
        manager declared them: it is detected from the first example (each
        value located independently, fields sorted by position).
        """
        if not self.examples:
            raise WrapperError("cannot induce a wrapper from zero examples")

        field_order = self._detect_field_order(*self.examples[0])

        # Locate each example's fields in page order, collecting the context
        # before each value and after it.
        before_contexts: dict[str, list[str]] = {f: [] for f in field_order}
        after_contexts: dict[str, list[str]] = {f: [] for f in field_order}

        for page, record in self.examples:
            # First pass: locate every field value in page order.
            positions: list[tuple[int, int]] = []
            cursor = 0
            for name in field_order:
                value = record[name]
                if not value:
                    raise WrapperError(
                        f"example value for field {name!r} is empty; "
                        "induction needs non-empty field text"
                    )
                index = page.find(value, cursor)
                if index == -1:
                    raise WrapperError(
                        f"example value {value!r} for field {name!r} "
                        "not found in page after previous field"
                    )
                positions.append((index, index + len(value)))
                cursor = index + len(value)

            # Second pass: collect contexts.  The after-context of field i is
            # bounded by the start of field i+1's value, so a shared prefix of
            # the *next field's values* can never leak into the delimiter.
            for i, name in enumerate(field_order):
                index, end = positions[i]
                before_contexts[name].append(page[max(0, index - MAX_DELIMITER):index])
                after_limit = (
                    positions[i + 1][0]
                    if i + 1 < len(positions)
                    else end + MAX_DELIMITER
                )
                after_contexts[name].append(page[end:after_limit])

        delimiters = []
        for name in field_order:
            left = _shorten_left(common_suffix(before_contexts[name]))
            right = _shorten_right(common_prefix(after_contexts[name]))
            if not left or not right:
                raise WrapperError(
                    f"no common delimiters for field {name!r}; the examples "
                    "disagree about the page template"
                )
            delimiters.append((left, right))
        return InducedWrapper(field_order, tuple(delimiters))

    def _detect_field_order(self, page: str, record: dict[str, str]) -> tuple[str, ...]:
        """Order fields by where their values sit on the example page.

        Each value is located independently (first occurrence).  When any
        value is missing or two fields collide at one position, fall back to
        the declared order.
        """
        positions: dict[str, int] = {}
        for name in self.fields:
            index = page.find(record[name]) if record[name] else -1
            if index == -1:
                return self.fields
            positions[name] = index
        if len(set(positions.values())) != len(positions):
            return self.fields
        return tuple(sorted(self.fields, key=lambda n: positions[n]))

    # -- evaluation -----------------------------------------------------------

    @staticmethod
    def accuracy(
        wrapper: InducedWrapper,
        page: str,
        truth: list[dict[str, str]],
    ) -> float:
        """Fraction of true records the wrapper extracts exactly.

        The measure E8 reports: a record counts only if every field matches
        the ground truth after whitespace normalization.
        """
        if not truth:
            return 1.0
        extracted = wrapper.extract(page)
        normalized = [
            {k: " ".join(v.split()) for k, v in record.items()} for record in extracted
        ]
        hits = 0
        for true_record in truth:
            wanted = {k: " ".join(str(v).split()) for k, v in true_record.items()}
            if wanted in normalized:
                hits += 1
        return hits / len(truth)

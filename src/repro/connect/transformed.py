"""Transform-on-demand sources: logical views over any connector.

The paper's data-independence argument (§3.2 C5): "federated systems do not
distinguish logically between views that transform data on demand, and
materialized views that have been pre-loaded; the query optimizer treats
these as alternative physical database designs."

:class:`PipelineSource` is the on-demand half: a
:class:`~repro.connect.source.ContentSource` that runs a workbench
:class:`~repro.workbench.transforms.Pipeline` over a base source's rows *at
fetch time*.  Registered in the federation catalog like any table, it can
then also be materialized (:meth:`FederatedEngine.create_materialized_view`)
-- and queries switch between the live-transform and pre-loaded copies with
the ``max_staleness`` parameter alone, no application change.
"""

from __future__ import annotations

from typing import Sequence

from repro.connect.source import (
    ContentSource,
    FetchResult,
    Predicate,
    apply_predicates,
)
from repro.core.schema import Schema
from repro.workbench.transforms import Pipeline


class PipelineSource(ContentSource):
    """A declarative view: base source -> pipeline -> rows, on demand."""

    def __init__(
        self,
        name: str,
        base: ContentSource,
        pipeline: Pipeline,
        transform_cost_per_row: float = 0.00002,
    ) -> None:
        self.name = name
        self.base = base
        self.pipeline = pipeline
        self.transform_cost_per_row = transform_cost_per_row
        # Derive the output schema by transforming a current sample; the
        # pipeline defines the schema, so this is exact, not a guess.
        sample = pipeline.run(base.fetch().table, source_name=base.name)
        self.schema = Schema(name, sample.table.schema.fields)
        self.last_lineage = sample.lineage

    def fetch(self, predicates: Sequence[Predicate] = ()) -> FetchResult:
        """Fetch the base live, transform, then filter.

        Predicates apply *after* the transform (they are written against
        the view's schema).  Lineage for the fetch is kept on
        ``last_lineage`` so provenance questions reach through the view.
        """
        base_result = self.base.fetch()
        transformed = self.pipeline.run(base_result.table, source_name=self.base.name)
        self.last_lineage = transformed.lineage
        table = apply_predicates(transformed.table, predicates)
        table = table.extended(self.name)
        cost = base_result.cost_seconds + len(base_result.table) * self.transform_cost_per_row
        return FetchResult(table, cost_seconds=cost, fetched_at=base_result.fetched_at)

    def is_available(self) -> bool:
        return self.base.is_available()

    def estimated_rows(self) -> int:
        return self.base.estimated_rows()

    def estimated_cost(self) -> float:
        return (
            self.base.estimated_cost()
            + self.base.estimated_rows() * self.transform_cost_per_row
        )

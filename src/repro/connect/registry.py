"""A UDDI-like supplier registry for supplier enablement.

§3.1 C2 closes with: "standards activity, perhaps a generalization of UDDI
[14], is another promising direction" for getting thousands of suppliers
hooked up; §3.1 C4 names the problem *supplier enablement*.  This module is
that generalization: suppliers publish a :class:`SupplierListing` --
where their catalog lives, how to access it, which fields it exposes, and
format hints (currency, price style, site layout) -- and the integrator

* discovers suppliers offering the fields a vertical needs
  (:meth:`SupplierRegistry.discover`), and
* auto-configures the access + mapping for each discovered supplier
  (:meth:`SupplierRegistry.enablement_plan`): a trained wrapper recipe from
  the layout hint plus a field mapping suggested by the schema matcher,
  flagged for human review only where the matcher is unsure.

The enablement plan is the "very high-level mechanism" the paper asks for
in place of hand-writing 60,000 transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import WrapperError
from repro.core.schema import DataType, Field, Schema
from repro.workbench.matching import MatchSuggestion, SchemaMatcher


@dataclass(frozen=True)
class SupplierListing:
    """One supplier's published registry entry."""

    supplier: str
    host: str
    catalog_url: str
    access: str  # "scrape" | "gateway" | "file"
    fields: tuple[str, ...]
    layout_hint: str = ""  # e.g. "table", "divs", "dl" (scrape access)
    currency: str = "USD"
    price_style: str = "symbol"
    requires_login: bool = False


@dataclass
class EnablementPlan:
    """Everything needed to wire one discovered supplier in."""

    listing: SupplierListing
    field_mapping: dict[str, str]  # supplier field -> integrator field
    needs_review: list[MatchSuggestion] = field(default_factory=list)
    unmapped: list[str] = field(default_factory=list)

    @property
    def automatic(self) -> bool:
        """True when no human attention is needed to enable this supplier."""
        return not self.needs_review and not self.unmapped


class SupplierRegistry:
    """The shared directory suppliers publish into."""

    def __init__(self, field_synonyms=None) -> None:
        """``field_synonyms`` (a :class:`~repro.workbench.synonyms.
        SynonymTable` or anything with ``are_synonyms``) carries the
        vertical's accumulated field-name equivalences (``sku`` =
        ``part_num``), boosting discovery and enablement matching."""
        self._listings: dict[str, SupplierListing] = {}
        self.field_synonyms = field_synonyms

    def _matcher(self) -> SchemaMatcher:
        return SchemaMatcher(synonyms=self.field_synonyms)

    # -- publication ---------------------------------------------------------

    def publish(self, listing: SupplierListing) -> None:
        if not listing.fields:
            raise WrapperError(
                f"listing for {listing.supplier!r} publishes no fields"
            )
        self._listings[listing.supplier] = listing

    def withdraw(self, supplier: str) -> None:
        self._listings.pop(supplier, None)

    def listing(self, supplier: str) -> SupplierListing:
        if supplier not in self._listings:
            raise WrapperError(f"no registry listing for supplier {supplier!r}")
        return self._listings[supplier]

    def __len__(self) -> int:
        return len(self._listings)

    # -- discovery --------------------------------------------------------------

    def discover(
        self,
        required_fields: "set[str] | None" = None,
        access: str | None = None,
    ) -> list[SupplierListing]:
        """Suppliers whose listings satisfy the integrator's needs.

        ``required_fields`` is matched *approximately* -- a listing
        qualifies if every required field has some published field with
        schema-matcher confidence above the review threshold (suppliers do
        not name their fields the way the integrator does).
        """
        matcher = self._matcher()
        found = []
        for listing in sorted(self._listings.values(), key=lambda l: l.supplier):
            if access is not None and listing.access != access:
                continue
            if required_fields:
                supplier_schema = Schema(
                    "published", tuple(Field(f, DataType.STRING) for f in listing.fields)
                )
                target_schema = Schema(
                    "needed",
                    tuple(Field(f, DataType.STRING) for f in sorted(required_fields)),
                )
                suggestions = matcher.suggest(target_schema, supplier_schema)
                if any(s.best is None for s in suggestions):
                    continue
            found.append(listing)
        return found

    # -- supplier enablement ---------------------------------------------------------

    def enablement_plan(
        self, supplier: str, integrator_schema: Schema
    ) -> EnablementPlan:
        """Auto-configure the supplier -> integrator field mapping.

        Confident matches map automatically; uncertain ones are queued for
        human review; integrator fields with no plausible source are
        reported unmapped (a true enablement gap).
        """
        listing = self.listing(supplier)
        supplier_schema = Schema(
            listing.supplier, tuple(Field(f, DataType.STRING) for f in listing.fields)
        )
        suggestions = self._matcher().suggest(integrator_schema, supplier_schema)

        mapping: dict[str, str] = {}
        review: list[MatchSuggestion] = []
        unmapped: list[str] = []
        for suggestion in suggestions:
            if suggestion.status == "auto":
                mapping[suggestion.best] = suggestion.source_code
            elif suggestion.best is not None:
                review.append(suggestion)
            else:
                unmapped.append(suggestion.source_code)
        return EnablementPlan(listing, mapping, review, unmapped)

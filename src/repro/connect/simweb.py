"""A deterministic simulated web.

The reproduction cannot reach real supplier sites, so this module implements
the closest synthetic equivalent that exercises the same wrapper code paths:
hosts with routed request handlers, cookie-based sessions, form logins,
HTTPS-only endpoints, per-request latency charged to the simulation clock,
and availability failures.  Everything a commercial screen-scraper deals
with -- "the intricacies of navigating JavaScript pages, dealing with
cookies and passwords, and interfacing with HTTPS-protected sites" (§3.1
C1) -- has a concrete analog here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable
from urllib.parse import parse_qsl, quote, urlencode

from repro.core.errors import SourceUnavailableError, WrapperError
from repro.sim.clock import SimClock


@dataclass(frozen=True)
class ParsedUrl:
    scheme: str
    host: str
    path: str
    query: tuple[tuple[str, str], ...]

    @property
    def params(self) -> dict[str, str]:
        return dict(self.query)


def parse_url(url: str) -> ParsedUrl:
    """Parse ``scheme://host/path?query`` into its components."""
    scheme, separator, rest = url.partition("://")
    if not separator:
        raise WrapperError(f"URL {url!r} has no scheme")
    host, slash, path_query = rest.partition("/")
    if not host:
        raise WrapperError(f"URL {url!r} has no host")
    path_query = slash + path_query if slash else "/"
    path, question, query_text = path_query.partition("?")
    query = tuple(parse_qsl(query_text)) if question else ()
    return ParsedUrl(scheme, host, path or "/", query)


def build_url(scheme: str, host: str, path: str, params: dict[str, str] | None = None) -> str:
    query = f"?{urlencode(params)}" if params else ""
    return f"{scheme}://{host}{quote(path)}{query}"


@dataclass
class HttpRequest:
    """One request as seen by a site's route handler."""

    method: str
    url: ParsedUrl
    form: dict[str, str] = field(default_factory=dict)
    cookies: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def params(self) -> dict[str, str]:
        return self.url.params


@dataclass
class HttpResponse:
    """A handler's reply."""

    status: int = 200
    body: str = ""
    content_type: str = "text/html"
    set_cookies: dict[str, str] = field(default_factory=dict)
    redirect_to: str | None = None

    @classmethod
    def not_found(cls, path: str) -> "HttpResponse":
        return cls(status=404, body=f"<html><body>404: {path}</body></html>")

    @classmethod
    def forbidden(cls, reason: str = "login required") -> "HttpResponse":
        return cls(status=403, body=f"<html><body>403: {reason}</body></html>")

    @classmethod
    def redirect(cls, location: str) -> "HttpResponse":
        return cls(status=302, redirect_to=location)


Handler = Callable[[HttpRequest], HttpResponse]


class WebSite:
    """One host on the simulated web.

    Routes map exact paths to handlers; a prefix route ``"/item/"`` (trailing
    slash) matches any path underneath it.  Sites may require HTTPS, may be
    marked down (to model outages), and charge ``latency`` simulated seconds
    per request.
    """

    def __init__(
        self,
        host: str,
        latency: float = 0.2,
        https_only: bool = False,
    ) -> None:
        self.host = host
        self.latency = latency
        self.https_only = https_only
        self.up = True
        self.requests_served = 0
        self._routes: dict[str, Handler] = {}
        self._prefix_routes: list[tuple[str, Handler]] = []

    def route(self, path: str) -> Callable[[Handler], Handler]:
        """Decorator registering a handler for ``path``."""

        def register(handler: Handler) -> Handler:
            self.add_route(path, handler)
            return handler

        return register

    def add_route(self, path: str, handler: Handler) -> None:
        if path.endswith("/") and path != "/":
            self._prefix_routes.append((path, handler))
        else:
            self._routes[path] = handler

    def handle(self, request: HttpRequest) -> HttpResponse:
        if not self.up:
            raise SourceUnavailableError(self.host)
        if self.https_only and request.url.scheme != "https":
            return HttpResponse.forbidden("HTTPS required")
        self.requests_served += 1
        handler = self._routes.get(request.url.path)
        if handler is None:
            for prefix, prefix_handler in self._prefix_routes:
                if request.url.path.startswith(prefix):
                    handler = prefix_handler
                    break
        if handler is None:
            return HttpResponse.not_found(request.url.path)
        return handler(request)


class SimulatedWeb:
    """The registry of all simulated hosts."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._sites: dict[str, WebSite] = {}

    def register(self, site: WebSite) -> WebSite:
        if site.host in self._sites:
            raise WrapperError(f"host {site.host!r} already registered")
        self._sites[site.host] = site
        return site

    def site(self, host: str) -> WebSite:
        if host not in self._sites:
            raise SourceUnavailableError(host, f"no such host {host!r}")
        return self._sites[host]

    @property
    def hosts(self) -> list[str]:
        return sorted(self._sites)


class WebClient:
    """An HTTP client with a cookie jar, redirects and latency accounting.

    This is the fetch half of a wrapper: it performs requests against the
    simulated web, advancing the shared clock by each site's latency, storing
    cookies per host, and following up to ``max_redirects`` redirects.
    """

    def __init__(self, web: SimulatedWeb, max_redirects: int = 5) -> None:
        self.web = web
        self.max_redirects = max_redirects
        self.cookie_jars: dict[str, dict[str, str]] = {}
        self.requests_made = 0
        self.time_spent = 0.0

    def cookies_for(self, host: str) -> dict[str, str]:
        return self.cookie_jars.setdefault(host, {})

    def get(self, url: str, headers: dict[str, str] | None = None) -> HttpResponse:
        return self._request("GET", url, {}, headers or {})

    def post(
        self,
        url: str,
        form: dict[str, str] | None = None,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        return self._request("POST", url, form or {}, headers or {})

    def _request(
        self,
        method: str,
        url: str,
        form: dict[str, str],
        headers: dict[str, str],
        _redirects: int = 0,
    ) -> HttpResponse:
        parsed = parse_url(url)
        site = self.web.site(parsed.host)
        self.web.clock.advance(site.latency)
        self.time_spent += site.latency
        self.requests_made += 1

        request = HttpRequest(
            method=method,
            url=parsed,
            form=dict(form),
            cookies=dict(self.cookies_for(parsed.host)),
            headers=dict(headers),
        )
        response = site.handle(request)
        self.cookies_for(parsed.host).update(response.set_cookies)

        if response.redirect_to is not None:
            if _redirects >= self.max_redirects:
                raise WrapperError(f"too many redirects fetching {url!r}")
            target = response.redirect_to
            if target.startswith("/"):
                target = f"{parsed.scheme}://{parsed.host}{target}"
            return self._request("GET", target, {}, headers, _redirects + 1)
        return response

"""Direct-access gateways: ERP systems and structured files.

The other end of Characteristic 1's relationship spectrum: "some content
owners will allow an integrator to directly access their internal systems,
often SAP or another ERP system".  :class:`ErpSystem` is the in-process
analog of such a system -- named tables behind a predicate-filter query API
with a latency cost model -- and :class:`ErpGateway` is the wrapper
("Merant, NEON, Attunity") that exposes one ERP table as a
:class:`~repro.connect.source.ContentSource`.

:class:`CsvConnector` and :class:`XmlConnector` cover the file-drop
relationships (suppliers mailing catalog extracts), completing Cohera
Connect's claim to "HTML, XML and text data either over the web, or via a
file system" (§4).
"""

from __future__ import annotations

import re
from typing import Any, Sequence

from repro.connect.source import ContentSource, FetchResult, Predicate, apply_predicates
from repro.core.errors import SchemaError, SourceUnavailableError, WrapperError
from repro.core.records import Table
from repro.core.schema import DataType, Schema
from repro.sim.clock import SimClock
from repro.xmlkit import XmlElement, parse_xml, xpath


class ErpSystem:
    """A simulated enterprise system: named tables, filtered reads, a cost model.

    Reads cost ``base_latency`` plus ``per_row_cost`` times the rows scanned
    (the whole table -- ERPs here scan, they do not index), charged to the
    shared clock so federated plans that hit ERPs repeatedly pay for it.
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        base_latency: float = 0.05,
        per_row_cost: float = 0.0001,
    ) -> None:
        self.name = name
        self.clock = clock
        self.base_latency = base_latency
        self.per_row_cost = per_row_cost
        self.up = True
        self.queries_served = 0
        self._tables: dict[str, Table] = {}

    def load_table(self, table: Table) -> None:
        self._tables[table.schema.name] = table

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def query(self, table_name: str, predicates: Sequence[Predicate] = ()) -> Table:
        """Filtered read of one table, charging simulated time."""
        if not self.up:
            raise SourceUnavailableError(self.name)
        if table_name not in self._tables:
            raise WrapperError(f"ERP {self.name!r} has no table {table_name!r}")
        table = self._tables[table_name]
        self.clock.advance(self.base_latency + self.per_row_cost * len(table))
        self.queries_served += 1
        return apply_predicates(table, predicates)

    def update_rows(self, table_name: str, new_table: Table) -> None:
        """Replace a table's contents (how operational volatility arrives)."""
        if table_name not in self._tables:
            raise WrapperError(f"ERP {self.name!r} has no table {table_name!r}")
        self._tables[table_name] = new_table


class ErpGateway(ContentSource):
    """A ContentSource exposing one ERP table, with predicate pushdown."""

    def __init__(self, name: str, erp: ErpSystem, table_name: str) -> None:
        self.name = name
        self.erp = erp
        self.table_name = table_name
        self.schema = erp.query(table_name).schema  # probe once for metadata

    def fetch(self, predicates: Sequence[Predicate] = ()) -> FetchResult:
        before = self.erp.clock.now()
        table = self.erp.query(self.table_name, predicates)
        return FetchResult(
            table,
            cost_seconds=self.erp.clock.now() - before,
            fetched_at=self.erp.clock.now(),
        )

    def is_available(self) -> bool:
        return self.erp.up

    def estimated_rows(self) -> int:
        return len(self.erp._tables[self.table_name])

    def estimated_cost(self) -> float:
        return self.erp.base_latency + self.erp.per_row_cost * self.estimated_rows()


class CsvConnector(ContentSource):
    """Parses CSV text against a declared schema.

    Handles quoted fields (with doubled-quote escapes) and coerces values to
    the schema's types; blank cells become None.
    """

    def __init__(self, name: str, schema: Schema, text: str, has_header: bool = True) -> None:
        self.name = name
        self.schema = schema
        self._table = self._parse(text, has_header)

    def _parse(self, text: str, has_header: bool) -> Table:
        lines = [line for line in text.splitlines() if line.strip()]
        if has_header and lines:
            header = _split_csv_line(lines[0])
            expected = list(self.schema.field_names)
            if header != expected:
                raise SchemaError(
                    f"CSV header {header!r} does not match schema fields {expected!r}"
                )
            lines = lines[1:]
        rows = []
        for line in lines:
            cells = _split_csv_line(line)
            if len(cells) != len(self.schema):
                raise SchemaError(
                    f"CSV row has {len(cells)} cells, schema needs {len(self.schema)}"
                )
            rows.append(
                tuple(
                    _coerce_cell(cell, field.dtype)
                    for cell, field in zip(cells, self.schema.fields)
                )
            )
        return Table(self.schema, rows)

    def fetch(self, predicates: Sequence[Predicate] = ()) -> FetchResult:
        return FetchResult(apply_predicates(self._table, predicates))

    def estimated_rows(self) -> int:
        return len(self._table)

    def estimated_cost(self) -> float:
        return 0.01


class XmlConnector(ContentSource):
    """Maps an XML document to rows via XPath.

    ``row_path`` selects one element per record; ``field_paths`` maps each
    schema field to a relative XPath evaluated against the row element
    (ending in ``text()`` or ``@attr``; plain element paths yield the
    element's text).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        document: "XmlElement | str",
        row_path: str,
        field_paths: dict[str, str],
        transformer=None,
    ) -> None:
        """``transformer`` (an :class:`~repro.xmlkit.transform.
        XmlTransformer`) is the §4 expert escape hatch -- "customize
        wrappers directly with XSLT transformations": the document is
        rewritten by the stylesheet before extraction, so awkward feeds can
        be reshaped into something the path mapping can handle."""
        self.name = name
        self.schema = schema
        self.row_path = row_path
        self.field_paths = dict(field_paths)
        missing = set(schema.field_names) - set(field_paths)
        if missing:
            raise SchemaError(f"XML connector lacks paths for fields {sorted(missing)!r}")
        root = parse_xml(document) if isinstance(document, str) else document
        if transformer is not None:
            root = transformer.transform_document(root)
        self._table = self._extract(root)

    def _extract(self, root: XmlElement) -> Table:
        rows = []
        for element in xpath(root, self.row_path):
            values = []
            for field in self.schema.fields:
                results = xpath(element, self.field_paths[field.name])
                if not results:
                    values.append(None)
                    continue
                first = results[0]
                text = first if isinstance(first, str) else first.full_text()
                values.append(_coerce_cell(text, field.dtype))
            rows.append(tuple(values))
        return Table(self.schema, rows)

    def fetch(self, predicates: Sequence[Predicate] = ()) -> FetchResult:
        return FetchResult(apply_predicates(self._table, predicates))

    def estimated_rows(self) -> int:
        return len(self._table)

    def estimated_cost(self) -> float:
        return 0.01


def _split_csv_line(line: str) -> list[str]:
    """Split one CSV line, honouring double-quoted cells."""
    cells = []
    buffer = []
    in_quotes = False
    i = 0
    while i < len(line):
        char = line[i]
        if in_quotes:
            if char == '"':
                if i + 1 < len(line) and line[i + 1] == '"':
                    buffer.append('"')
                    i += 1
                else:
                    in_quotes = False
            else:
                buffer.append(char)
        elif char == '"':
            in_quotes = True
        elif char == ",":
            cells.append("".join(buffer))
            buffer = []
        else:
            buffer.append(char)
        i += 1
    cells.append("".join(buffer))
    return cells


def _coerce_cell(text: str, dtype: DataType) -> Any:
    """Coerce a string cell to a schema type; blank -> None."""
    stripped = text.strip()
    if stripped == "":
        return None
    if dtype in (DataType.STRING, DataType.TEXT):
        return stripped
    if dtype is DataType.INTEGER:
        return int(re.sub(r"[^\d-]", "", stripped))
    if dtype in (DataType.FLOAT, DataType.TIMESTAMP):
        return float(stripped.replace(",", ""))
    if dtype is DataType.BOOLEAN:
        return stripped.lower() in ("true", "yes", "1")
    raise SchemaError(f"cannot coerce CSV/XML cell into {dtype.value}")

"""Supplier enablement at registry scale.

§3.1 C2: "Home Depot is reputed to have 60,000 suppliers.  Specifying
60,000 transformations is a daunting task, and some very high-level
mechanism is clearly required ... standards activity, perhaps a
generalization of UDDI, is another promising direction."  §3.1 C4 names the
problem *supplier enablement*.

This example runs the high-level mechanism end to end:

1. suppliers publish UDDI-like listings (fields, layout, currency hints);
2. the integrator discovers the ones that can serve its vertical;
3. field mappings auto-configure from the listings (schema matcher +
   accumulated field-name synonyms), with only genuine ambiguities queued
   for a human;
4. a wrapper is *trained* per layout from one marked example;
5. an ingestion workflow (scrape -> normalize -> publish) runs per
   supplier, with one supplier's broken feed skipping only its own branch;
6. catalog payloads cross the public network through secure channels.

Run with:  python examples/supplier_enablement.py
"""

from repro.connect import (
    SupplierListing,
    SupplierRegistry,
    WrapperTrainingSession,
)
from repro.connect.sitegen import build_supplier_site, format_price
from repro.connect.simweb import WebClient
from repro.core.system import ContentIntegrationSystem
from repro.federation import SecureNetwork, seal, unseal
from repro.federation.secure import establish_session
from repro.core.system import CATALOG_SCHEMA
from repro.workbench import SynonymTable, Workflow, WorkflowContext, WorkflowStep
from repro.workloads import generate_mro

SUPPLIERS = 6


def main() -> None:
    system = ContentIntegrationSystem(seed=7)
    system.catalog.network = SecureNetwork()  # §4: SSL between components
    workload = generate_mro(seed=7, supplier_count=SUPPLIERS,
                            products_per_supplier=20, with_taxonomies=False)
    sites = system.add_compute_sites(4)

    # --- 1. suppliers publish into the registry -----------------------------
    field_synonyms = SynonymTable()
    field_synonyms.add_group(["sku", "part_num", "item code"])
    field_synonyms.add_group(["qty", "stock"])
    registry = SupplierRegistry(field_synonyms=field_synonyms)

    for spec in workload.suppliers:
        site = build_supplier_site(
            f"{spec.name}.example", spec.products,
            layout=spec.layout, price_style=spec.price_style,
        )
        system.register_supplier(site)
        registry.publish(
            SupplierListing(
                supplier=spec.name,
                host=site.host,
                catalog_url=site.catalog_url(),
                access="scrape",
                fields=("sku", "name", "price", "qty"),
                layout_hint=spec.layout,
                currency=spec.currency,
                price_style=spec.price_style,
            )
        )
    print(f"registry holds {len(registry)} supplier listings")

    # --- 2+3. discover and auto-configure ------------------------------------
    discovered = registry.discover(required_fields={"sku", "name", "price", "qty"})
    # The integrator needs the four *scraped* fields mapped; currency and
    # supplier identity come from the listing metadata, not the page.
    scraped_needs = CATALOG_SCHEMA.project(["sku", "name", "price", "qty"])
    automatic = 0
    for listing in discovered:
        plan = registry.enablement_plan(listing.supplier, scraped_needs)
        if plan.automatic:
            automatic += 1
    print(f"discovered {len(discovered)} usable suppliers; "
          f"{automatic} enabled with zero human decisions")

    # --- 4. train one wrapper per supplier from a single marked example ------
    trained = {}
    human_actions = 0
    client = WebClient(system.web)
    for listing in discovered:
        spec = next(s for s in workload.suppliers if s.name == listing.supplier)
        page = client.get(listing.catalog_url).body
        example = {
            "sku": spec.products[0]["sku"],
            "name": spec.products[0]["name"],
            "price": format_price(spec.products[0]["price"], spec.currency,
                                  spec.price_style),
            "qty": str(spec.products[0]["qty"]),
        }
        session = WrapperTrainingSession(("sku", "name", "price", "qty"), page)
        session.mark_record(example)
        trained[listing.supplier] = session.accept()
        human_actions += session.human_actions
    print(f"trained {len(trained)} wrappers with {human_actions} human actions "
          f"({human_actions / len(trained):.1f} per supplier)")

    # --- 5. the ingestion workflow, one branch per supplier -------------------
    workflow = Workflow("nightly-ingest")
    saboteur = discovered[2].supplier  # this supplier's site goes down tonight

    for listing in discovered:
        def scrape(context, upstream, listing=listing):
            supplier_site = system.suppliers[listing.host]
            if listing.supplier == saboteur:
                supplier_site.site.up = False
            return system.scrape_supplier(listing.host, listing.supplier)

        def normalize(context, upstream, listing=listing):
            raw = upstream[f"scrape:{listing.supplier}"]
            return system.normalize(raw, listing.supplier, listing.currency)

        workflow.add_step(WorkflowStep(f"scrape:{listing.supplier}", scrape))
        workflow.add_step(
            WorkflowStep(
                f"normalize:{listing.supplier}", normalize,
                depends_on=(f"scrape:{listing.supplier}",),
            )
        )

    def publish(context, upstream):
        tables = [t for t in upstream.values() if t is not None]
        unified = tables[0]
        for table in tables[1:]:
            unified = unified.union_all(table)
        system.publish_catalog(
            unified, 2, [[sites[0], sites[1]], [sites[2], sites[3]]]
        )
        return len(unified)

    workflow.add_step(
        WorkflowStep(
            "publish", publish,
            depends_on=tuple(f"normalize:{listing.supplier}"
                             for listing in discovered
                             if listing.supplier != saboteur),
        )
    )

    run = workflow.run(WorkflowContext())
    counts = run.counts()
    print(f"workflow: {counts['ok']} steps ok, {counts['failed']} failed, "
          f"{counts['skipped']} skipped (only {saboteur}'s branch)")
    print(f"published catalog rows: {run.output_of('publish')}")

    # --- 6. secure channel demonstration ---------------------------------------
    key = establish_session("integrator", "big-market", shared_secret=2001)
    payload = system.query("select count(*) as n from catalog").table.to_dicts()
    envelope = seal(str(payload), key)
    print(f"\nsealed catalog summary for the market: {len(envelope)} bytes, "
          f"opens to {unseal(envelope, key)}")
    print(f"secure handshakes performed on the federation network: "
          f"{system.catalog.network.handshakes_performed}")


if __name__ == "__main__":
    main()

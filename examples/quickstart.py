"""Quickstart: integrate two supplier catalogs and query them.

This walks the shortest path through the system described in
"Content Integration for E-Business" (SIGMOD 2001):

    wrap supplier sites -> normalize content -> publish to the federation
    -> ask ad hoc SQL and fuzzy search queries.

Run with:  python examples/quickstart.py
"""

from repro.connect.sitegen import build_supplier_site
from repro.core.system import ContentIntegrationSystem
from repro.ir.search import SearchMode

# Two suppliers with different layouts, currencies and price formats --
# the semantic heterogeneity of the paper's Characteristic 2.
ACME_PRODUCTS = [
    {"sku": "ACME-001", "name": "black india ink", "price": 4.95, "currency": "USD", "qty": 120},
    {"sku": "ACME-002", "name": "cordless drill 18v", "price": 89.00, "currency": "USD", "qty": 8},
    {"sku": "ACME-003", "name": "hex bolt m8", "price": 0.42, "currency": "USD", "qty": 4000},
]
PARIS_PRODUCTS = [
    {"sku": "PB-10", "name": "encre noire (black ink)", "price": 30.00, "currency": "FRF", "qty": 55},
    {"sku": "PB-11", "name": "perceuse sans fil / cordless drill", "price": 610.00, "currency": "FRF", "qty": 3},
]


def main() -> None:
    system = ContentIntegrationSystem(seed=42)

    # --- Connect: register and wrap the supplier web sites -----------------
    system.register_supplier(
        build_supplier_site("acme.example", ACME_PRODUCTS,
                            layout="table", price_style="symbol")
    )
    system.register_supplier(
        build_supplier_site("paris-bureau.example", PARIS_PRODUCTS,
                            layout="divs", price_style="code-suffix")
    )

    sites = system.add_compute_sites(2)
    print(f"federation sites: {sites}")

    # --- Workbench: scrape + normalize each catalog ------------------------
    acme_raw = system.scrape_supplier("acme.example", "acme")
    paris_raw = system.scrape_supplier("paris-bureau.example", "paris-bureau")
    print(f"scraped {len(acme_raw)} rows from acme, {len(paris_raw)} from paris-bureau")
    print(f"raw paris price string: {paris_raw.to_dicts()[0]['price']!r}")

    unified = system.normalize(acme_raw, "acme", "USD").union_all(
        system.normalize(paris_raw, "paris-bureau", "FRF")
    )
    print(f"unified catalog: {len(unified)} rows, all prices in USD")

    # --- Integrate: publish with replication, then query --------------------
    system.publish_catalog(unified, 1, [[sites[0], sites[1]]])

    result = system.query(
        "select sku, name, price from catalog where price < 10 order by price"
    )
    print("\ncheap items (SQL):")
    for row in result.table.to_dicts():
        print(f"  {row['sku']:<10} {row['name']:<35} ${row['price']:.2f}")
    print(f"  (answered in {result.report.response_seconds:.3f} simulated seconds)")

    # Fuzzy search: the paper's "drlls: crdlss" must find cordless drills.
    hits = system.search("drlls: crdlss", mode=SearchMode.FUZZY)
    print("\nfuzzy search 'drlls: crdlss':")
    for hit in hits:
        print(f"  {hit.doc_id}  (score {hit.score:.2f})")

    # XPath over the same integrated content (Characteristic 6).
    skus = system.xpath_query("catalog", "//row[supplier='acme']/sku/text()")
    print(f"\nXPath: acme SKUs = {skus}")


if __name__ == "__main__":
    main()

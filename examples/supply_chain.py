"""Vignette 3 -- Integration for Supply-Chain Management.

"Whether they can increase production ... depends on the state of each of
their suppliers.  Hence, efficient product scheduling requires the entire
supply chain to share information.  Furthermore, there may be various
contract documents among the participants ... such unstructured information
must be integrated as well as possible with structured data" (§1.2).

This example builds a three-tier supplier network, publishes its structured
tables into the federation, indexes the contract prose, and answers the
manufacturer's scheduling question -- including the mixed structured+text
query the paper highlights.

Run with:  python examples/supply_chain.py
"""

from repro.federation import FederatedEngine, FederationCatalog
from repro.ir.search import SearchMode
from repro.sim import SimClock
from repro.workloads import generate_supply_chain


def main() -> None:
    chain = generate_supply_chain(seed=3, depth=3, fanout=3)
    print(f"supply chain: {len(chain.nodes)} companies over 4 tiers, "
          f"{len(chain.contracts)} contracts")

    # Each tier keeps its data in its own enterprise systems: put tier-t
    # companies' rows on site t.
    clock = SimClock()
    catalog = FederationCatalog(clock)
    sites = [catalog.make_site(f"tier-{t}").name for t in range(4)]

    companies = chain.companies_table()
    catalog.load_fragmented(companies, 2, [[sites[0], sites[1]], [sites[2], sites[3]]])
    catalog.load_fragmented(chain.edges_table(), 1, [[sites[0]]])
    contracts = chain.contracts_table()
    catalog.load_fragmented(contracts, 1, [[sites[1]]])
    catalog.build_text_index("contracts", "body", contracts, "contract_id")
    engine = FederatedEngine(catalog)

    # --- the scheduling question -------------------------------------------
    increase = chain.max_production_increase()
    limiting = chain.limiting_companies()
    print(f"\nfeasible production increase: {increase} units")
    print(f"bottleneck companies (slack == {increase}): {', '.join(limiting[:5])}"
          + (" ..." if len(limiting) > 5 else ""))

    # The same fact derived through the federation's SQL surface.
    result = engine.query(
        "select company, capacity - output as slack from companies "
        f"order by capacity - output limit 3"
    )
    print("\ntightest companies (SQL over federated tier systems):")
    for row in result.table.to_dicts():
        print(f"  {row['company']:<14} slack {row['slack']}")

    # --- mixed structured + unstructured query --------------------------------
    # "Which contracts with the bottleneck suppliers let us expedite?"
    hits = engine.search("contracts", "expedite schedule increase", mode=SearchMode.EXACT)
    expedite_ids = {h.doc_id for h in hits}
    bottleneck_set = set(limiting)
    rows = engine.query("select contract_id, buyer, supplier from contracts").table
    actionable = [
        row for row in rows.to_dicts()
        if row["contract_id"] in expedite_ids and row["supplier"] in bottleneck_set
    ]
    print(f"\ncontracts with an expedite clause: {len(expedite_ids)}")
    print(f"...of which with bottleneck suppliers: {len(actionable)}")
    for row in actionable[:5]:
        print(f"  {row['contract_id']}: {row['buyer']} <- {row['supplier']}")

    # SQL MATCH() reaches the same text index as an optimizer access path.
    match_result = engine.query(
        "select contract_id from contracts where match(body, 'price adjustment')"
    )
    print(f"\nMATCH('price adjustment') via SQL access path: "
          f"{len(match_result.table)} contracts")

    # What-if: the first bottleneck supplier adds a shift.
    victim = limiting[0]
    chain.nodes[victim].capacity += 50
    print(f"\nafter {victim} adds 50 units of capacity: feasible increase = "
          f"{chain.max_production_increase()} units")


if __name__ == "__main__":
    main()

"""Vignette 2 -- Integration of Availability and Pricing (the traveler).

"His request is for a room within ten miles of the airport with a health
club at a corporate rate less than $200 per night.  Hotel room availability
in the Atlanta area is in some fifty data systems" (§1.2).

This example builds the fifty reservation systems, keeps them volatile, and
answers the traveler's query three ways:

* **warehouse** -- batch snapshots refreshed every 15 minutes (the approach
  §3.2 C5 says "fundamentally breaks when live information is required");
* **pure fetch-on-demand federation** -- always fresh, always slow;
* **hybrid federation** -- static amenities from a materialized view,
  volatile availability fetched on demand (the paper's prescription).

Run with:  python examples/hotel_availability.py
"""

import random

from repro.federation import FederatedEngine, FederationCatalog
from repro.federation.engine import LIVE_ONLY
from repro.sim import EventLoop, SimClock
from repro.warehouse import EtlJob, Warehouse
from repro.connect.source import LiveSource
from repro.workloads import generate_hotels
from repro.workloads.hotels import AVAILABILITY_SCHEMA, STATIC_SCHEMA

TRAVELER_SQL = (
    "select s.hotel_id, s.name, a.corporate_rate, a.rooms_available "
    "from hotel_static s join hotel_availability a on s.hotel_id = a.hotel_id "
    "where s.miles_to_airport <= 10 and s.has_health_club = true "
    "and a.corporate_rate <= 200 and a.rooms_available > 0 "
    "order by a.corporate_rate"
)


def main() -> None:
    clock = SimClock()
    loop = EventLoop(clock)
    market = generate_hotels(seed=7, chain_count=50, hotels_per_chain=4)
    print(f"built {len(market.chains)} chain reservation systems, "
          f"{len(market.hotels)} hotels")

    # One federation site per chain's reservation system.
    catalog = FederationCatalog(clock)
    chain_sites = {
        chain: catalog.make_site(f"res-{i:02d}").name
        for i, chain in enumerate(market.chains)
    }
    market.register_sources(catalog, chain_sites)
    engine = FederatedEngine(catalog)

    # The warehouse alternative: batch-copy everything every 15 minutes.
    warehouse = Warehouse(clock)
    warehouse.add_job(
        EtlJob("hotel_static",
               LiveSource("static-feed", STATIC_SCHEMA, market.static_rows, 0.5))
    )
    warehouse.add_job(
        EtlJob("hotel_availability",
               LiveSource("avail-feed", AVAILABILITY_SCHEMA, market.availability_rows, 2.0))
    )
    warehouse.refresh()
    warehouse.schedule_refresh(loop, interval=900.0)

    # The hybrid federation: materialize only the static amenity data.
    engine.create_materialized_view("hotel_static_mv", "hotel_static", "res-00")

    # Bookings and rate moves arrive continuously.
    market.schedule_volatility(loop, random.Random(13), mean_interval=2.0)

    def truth_ids():
        return {
            h["hotel_id"]
            for h in market.hotels
            if h["miles_to_airport"] <= 10
            and h["has_health_club"]
            and h["corporate_rate"] <= 200
            and h["rooms_available"] > 0
        }

    def wrong(table):
        """Rooms offered that are actually gone + vacancies missed."""
        answered = set(table.column("hotel_id"))
        truth = truth_ids()
        return len(answered - truth) + len(truth - answered)

    print("\ntraveler query, asked every ~10 simulated minutes "
          "(wrong = phantom offers + missed vacancies):\n")
    print(f"{'t(min)':>7} {'truth':>6} | {'wh rows':>8} {'wh wrong':>9} "
          f"{'stale(s)':>9} | {'live wrong':>10} {'hybrid wrong':>12}")
    for round_number in range(5):
        loop.run_until(clock.now() + 600.0)

        warehouse_result = warehouse.query(TRAVELER_SQL)
        live = engine.query(TRAVELER_SQL, max_staleness=LIVE_ONLY)
        hybrid = engine.query(TRAVELER_SQL, max_staleness=None)

        print(
            f"{clock.now() / 60:>7.0f} {len(truth_ids()):>6} | "
            f"{len(warehouse_result.table):>8} {wrong(warehouse_result.table):>9} "
            f"{warehouse.staleness('hotel_availability'):>9.0f} | "
            f"{wrong(live.table):>10} {wrong(hybrid.table):>12}"
        )

    print(
        "\nthe warehouse answers from snapshots that are minutes old -- rooms "
        "it offers may be gone and new vacancies invisible; the federation "
        "fetches availability on demand, and the hybrid plan gets amenity "
        "data from the cheap materialized view while staying live on rooms."
    )
    live = engine.query(TRAVELER_SQL + " limit 5", max_staleness=LIVE_ONLY)
    print("\ncurrent top offers (live):")
    for row in live.table.to_dicts():
        print(f"  {row['name']:<28} ${row['corporate_rate']:>7.2f}  "
              f"{row['rooms_available']} rooms")
    print(f"\nlive query response time: {live.report.response_seconds:.3f}s; "
          f"hybrid: {engine.query(TRAVELER_SQL).report.response_seconds:.3f}s")


if __name__ == "__main__":
    main()

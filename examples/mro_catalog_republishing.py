"""Vignette 1 -- Integration for Republishing (the MRO distributor).

"A large MRO distributor typically has thousands of suppliers.  Hence the
distributor must integrate the individual catalogs from each of its
suppliers" (§1.2).  This example runs the distributor's whole day:

1. scrape a fleet of heterogeneous supplier sites;
2. normalize currencies and names through workbench pipelines (with
   lineage);
3. map each supplier's taxonomy onto the master semi-automatically, and
   count how much human work the matcher saved;
4. detect and fix data discrepancies;
5. publish the integrated catalog and syndicate it to tiered buyers,
   including one market that legislates its own XML format.

Run with:  python examples/mro_catalog_republishing.py
"""

from repro.connect.sitegen import build_supplier_site
from repro.core.system import ContentIntegrationSystem
from repro.ir.search import SearchMode
from repro.workbench import (
    DiscrepancyDetector,
    DuplicateKeyRule,
    MatchSession,
    MissingValueRule,
    RangeRule,
    TaxonomyMatcher,
)
from repro.workbench.syndication import (
    AvailabilityRule,
    LegislatedFormat,
    PricingRule,
    Recipient,
    Syndicator,
)
from repro.workloads import generate_mro

SUPPLIERS = 8
PRODUCTS_EACH = 30


def main() -> None:
    system = ContentIntegrationSystem(seed=2001)
    workload = generate_mro(
        seed=2001, supplier_count=SUPPLIERS, products_per_supplier=PRODUCTS_EACH
    )
    sites = system.add_compute_sites(4)

    # --- 1. wrap every supplier site ---------------------------------------
    for spec in workload.suppliers:
        system.register_supplier(
            build_supplier_site(
                f"{spec.name}.example",
                spec.products,
                layout=spec.layout,
                price_style=spec.price_style,
            )
        )
    print(f"registered {SUPPLIERS} supplier sites "
          f"({sum(1 for s in workload.suppliers if s.layout == 'table')} table-layout, "
          f"{sum(1 for s in workload.suppliers if s.layout == 'divs')} div-layout, "
          f"{sum(1 for s in workload.suppliers if s.layout == 'dl')} dl-layout)")

    # --- 2. scrape + normalize (currency, casing) with lineage --------------
    unified = None
    for spec in workload.suppliers:
        raw = system.scrape_supplier(f"{spec.name}.example", spec.name)
        normalized = system.normalize(raw, spec.name, spec.currency)
        unified = normalized if unified is None else unified.union_all(normalized)
    print(f"integrated catalog: {len(unified)} rows, single currency")

    # Show lineage answering "where did this price come from?"
    spec0 = workload.suppliers[0]
    pipeline = system.normalization_pipeline(spec0.name, spec0.currency)
    result0 = pipeline.run(
        system.scrape_supplier(f"{spec0.name}.example", spec0.name), spec0.name
    )
    print("lineage of column 'price':")
    for step in result0.lineage.explain("price"):
        print(f"    <- {step}")

    # --- 3. semi-automatic taxonomy mapping ---------------------------------
    total_auto = 0
    total_human = 0
    total_correct = 0
    total_categories = 0
    for spec in workload.suppliers:
        matcher = TaxonomyMatcher(workload.master_taxonomy)
        session = MatchSession(
            workload.master_taxonomy, matcher.suggest(spec.taxonomy)
        )
        for suggestion in list(session.pending()):
            truth = spec.truth_mapping[suggestion.source_code]
            if suggestion.best == truth:
                session.accept(suggestion.source_code)
            else:
                session.edit(suggestion.source_code, truth)
        mapping = session.mapping()
        correct = sum(
            1 for code, master in mapping.items()
            if spec.truth_mapping.get(code) == master
        )
        total_auto += len(mapping) - session.human_decisions
        total_human += session.human_decisions
        total_correct += correct
        total_categories += len(spec.truth_mapping)
    print(
        f"taxonomy mapping: {total_categories} categories across suppliers; "
        f"{total_auto} mapped automatically, {total_human} needed a human, "
        f"{total_correct}/{total_categories} final mappings correct"
    )

    # --- 4. discrepancy detection --------------------------------------------
    detector = DiscrepancyDetector(
        [
            MissingValueRule("name", default="UNKNOWN PART"),
            RangeRule("price", minimum=0.01, maximum=100_000.0, clamp=True),
            DuplicateKeyRule(["sku"]),
        ]
    )
    report = detector.run(unified)
    fixed = DiscrepancyDetector.apply_fixes(unified, report.fixable())
    print(f"discrepancies: {len(report)} findings "
          f"({len(report.errors())} errors, {len(report.fixable())} auto-fixable)")

    # --- 5. publish + serve + syndicate ---------------------------------------
    system.publish_catalog(
        fixed, 2, [[sites[0], sites[1]], [sites[2], sites[3]]]
    )
    system.set_vocabulary(workload.synonyms, workload.master_taxonomy)

    per_supplier = system.query(
        "select supplier, count(*) as items, avg(price) as avg_usd "
        "from catalog group by supplier order by supplier"
    )
    print("\nrepublished catalog by supplier:")
    for row in per_supplier.table.to_dicts():
        print(f"  {row['supplier']:<14} {row['items']:>3} items   avg ${row['avg_usd']:.2f}")

    hits = system.search("india ink", mode=SearchMode.SYNONYM, limit=5)
    print(f"\nsynonym search 'india ink' -> {len(hits)} hits "
          f"(top: {hits[0].doc_id if hits else 'none'})")

    syndicator = Syndicator(
        pricing_rules=[PricingRule.tier_discount("preferred", 12.0)],
        availability_rules=[AvailabilityRule.bump_for_tier("platinum")],
    )
    catalog_rows = system.query("select * from catalog").table

    walk_in = syndicator.syndicate(catalog_rows, Recipient("walk-in"))
    preferred = syndicator.syndicate(catalog_rows, Recipient("mega-corp", tier="preferred"))
    print(
        f"\nsyndication: walk-in sees ${walk_in.table.column('price')[0]:.2f}, "
        f"mega-corp (preferred) sees ${preferred.table.column('price')[0]:.2f} "
        "for the same item"
    )

    # Sender-makes-right: one net market legislates its own XML.
    contract = LegislatedFormat(
        root_tag="mkt:catalog",
        row_tag="mkt:product",
        field_map={"mkt:id": "sku", "mkt:desc": "name", "mkt:unitPrice": "price"},
    )
    market = syndicator.syndicate(
        catalog_rows.limit(2),
        Recipient("big-market", output_format="xml", legislated=contract),
    )
    print("\nlegislated XML for big-market (first 2 products):")
    print(market.payload.to_string(indent=2))


if __name__ == "__main__":
    main()

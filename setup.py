"""Compatibility shim so ``python setup.py develop`` works in offline
environments lacking the ``wheel`` package (modern ``pip install -e .``
builds an editable wheel and fails without it).  Configuration lives in
pyproject.toml; this file adds nothing else.
"""

from setuptools import setup

setup()

"""Shared helpers for the experiment benchmarks.

Every experiment (E1..E12, see DESIGN.md §4) produces a small result table.
:func:`report` prints it *and* writes it under ``benchmarks/results/`` so the
series survive pytest's output capturing and can be pasted into
EXPERIMENTS.md.  Assertions in each bench check the paper-claim *shape*
(who wins, which way the curve bends), not absolute numbers.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def report(name: str, title: str, header: list[str], rows: list[list]) -> str:
    """Format, print, and persist one experiment's result table."""
    widths = [
        max(len(str(header[i])), *(len(_fmt(row[i])) for row in rows))
        for i in range(len(header))
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(cell).rjust(w) for cell, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text)
    print(f"\n{text}")
    return text


def write_json(name: str, payload: dict) -> str:
    """Persist a machine-readable benchmark summary at the repo root.

    Wall-clock numbers (rows/sec, latency percentiles) live here, NOT in
    the ``results/`` tables -- the tables must stay byte-identical across
    runs (DESIGN.md §7, CI determinism job), while these JSON files are
    the regression-gate inputs and vary with the machine.
    """
    path = os.path.join(REPO_ROOT, f"{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"\nwrote {path}")
    return path


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)

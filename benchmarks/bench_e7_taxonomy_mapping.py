"""E7 -- Semi-automatic taxonomy matching (§3.1 C3).

Claim: "when a new taxonomy is to be added to an integrated model, matches
need to be found, conflicts identified, and ambiguities resolved.  In most
systems today this is a laborious manual task.  Semi-automatic schemes that
combine system suggestions with user editing are absolutely critical here."

Setup: 12 generated suppliers, each with their own reworded taxonomy and a
known ground-truth mapping onto the UN/SPSC-like master.  A simulated
content manager reviews only what the matcher could not auto-accept
(accepting correct suggestions, editing wrong ones).  We report the
matcher's suggestion accuracy, the fraction of categories mapped with zero
human decisions, and the human workload relative to all-manual mapping.

The signal ablation (DESIGN.md §6) compares name-similarity-only matching
against name+structure and name+structure+instances.
"""

import random

from _bench_util import report
from repro.workbench import MatchSession, TaxonomyMatcher
from repro.workloads import generate_mro

SUPPLIERS = 12


def run_mapping(matcher_factory):
    workload = generate_mro(seed=33, supplier_count=SUPPLIERS,
                            products_per_supplier=40)
    total = 0
    auto = 0
    auto_correct = 0
    top1_correct = 0
    human = 0
    final_correct = 0
    for spec in workload.suppliers:
        matcher = matcher_factory(workload.master_taxonomy)
        # Instance signal: canonical product names per leaf category, on
        # both sides (comparable keys, as an integrator's probe data would be).
        source_items = {}
        master_items = {}
        for product in spec.products:
            leaf = next(
                code for code, master_code in spec.truth_mapping.items()
                if master_code == product["category"]
            )
            source_items.setdefault(leaf, set()).add(product["canonical_name"])
            master_items.setdefault(product["category"], set()).add(
                product["canonical_name"]
            )
        suggestions = matcher.suggest(spec.taxonomy, source_items, master_items)
        session = MatchSession(workload.master_taxonomy, suggestions)

        for suggestion in suggestions:
            total += 1
            truth = spec.truth_mapping[suggestion.source_code]
            if suggestion.best == truth:
                top1_correct += 1
            if suggestion.status == "auto":
                auto += 1
                if suggestion.best == truth:
                    auto_correct += 1

        for suggestion in list(session.pending()):
            truth = spec.truth_mapping[suggestion.source_code]
            if suggestion.best == truth:
                session.accept(suggestion.source_code)
            else:
                session.edit(suggestion.source_code, truth)
        human += session.human_decisions
        final_correct += sum(
            1 for code, mapped in session.mapping().items()
            if spec.truth_mapping[code] == mapped
        )
    return {
        "total": total,
        "top1": top1_correct / total,
        "auto_fraction": auto / total,
        "auto_precision": auto_correct / auto if auto else 0.0,
        "human": human,
        "final_accuracy": final_correct / total,
    }


def test_e7_semi_automatic_mapping(benchmark):
    stats = run_mapping(lambda master: TaxonomyMatcher(master))
    rows = [
        ["categories to map", stats["total"]],
        ["suggestion top-1 accuracy", stats["top1"]],
        ["auto-accepted fraction", stats["auto_fraction"]],
        ["auto-accept precision", stats["auto_precision"]],
        ["human decisions (semi-auto)", stats["human"]],
        ["human decisions (all manual)", stats["total"]],
        ["final mapping accuracy", stats["final_accuracy"]],
    ]
    report(
        "e7_taxonomy_mapping",
        f"E7: semi-automatic taxonomy mapping, {SUPPLIERS} supplier taxonomies",
        ["metric", "value"],
        rows,
    )

    # Paper shape: the machine does most of the work, the human fixes the
    # rest, and auto-accepted matches are trustworthy.
    assert stats["top1"] >= 0.75
    assert stats["auto_precision"] >= 0.95
    assert stats["human"] < stats["total"] * 0.6
    assert stats["final_accuracy"] == 1.0  # human closes every gap

    workload = generate_mro(seed=33, supplier_count=1, products_per_supplier=40)
    matcher = TaxonomyMatcher(workload.master_taxonomy)
    spec = workload.suppliers[0]
    benchmark(lambda: matcher.suggest(spec.taxonomy))


def test_e7_ablation_matcher_signals(benchmark):
    """Ablation: which matching signals earn their keep?"""
    configurations = [
        ("name only", lambda m: TaxonomyMatcher(
            m, structure_weight=0.0, instance_weight=0.0)),
        ("name+structure", lambda m: TaxonomyMatcher(m, instance_weight=0.0)),
        ("name+structure+instances", lambda m: TaxonomyMatcher(m)),
    ]
    rows = []
    accuracies = {}
    for label, factory in configurations:
        stats = run_mapping(factory)
        accuracies[label] = stats
        rows.append([label, stats["top1"], stats["auto_fraction"], stats["human"]])

    report(
        "e7_signal_ablation",
        "E7 ablation: matcher signals vs suggestion quality",
        ["signals", "top-1 accuracy", "auto fraction", "human decisions"],
        rows,
    )
    assert accuracies["name+structure"]["top1"] >= accuracies["name only"]["top1"]
    assert (
        accuracies["name+structure+instances"]["top1"]
        >= accuracies["name only"]["top1"]
    )

    rng = random.Random(0)
    workload = generate_mro(seed=33, supplier_count=1, products_per_supplier=40)
    matcher = TaxonomyMatcher(workload.master_taxonomy, instance_weight=0.0)
    benchmark(lambda: matcher.suggest(workload.suppliers[0].taxonomy))

"""E4 -- Adaptive load balancing through live bids (§3.2 C8).

Claim: "replication allows the load to be shifted arbitrarily across
machines.  In this case, a strategy for load balancing is required to keep
all machines equally busy ... an adaptive, load-balancing federated query
processor is a required service."  The Mariposa-derived agoric design
delivers it because bids embed *current* load; a compile-time optimizer
routes by a statistics snapshot that goes stale.

Setup: 8 sites, a catalog fragmented 4 ways with replicas on every site.
A burst of 60 queries arrives back-to-back (the clock does not advance, so
backlogs build).  We compare:

* agoric (live bids),
* centralized with stale statistics (snapshot taken once, before the burst),
* centralized with continuously fresh statistics (an idealized oracle).

Metrics: the spread of per-site work (max/mean, 1.0 = perfectly even) and
the burst makespan (largest site backlog when the burst ends).

Expected shape: agoric ~= fresh-stats oracle; stale-stats centralized piles
the whole burst onto whichever sites were idle at snapshot time.
"""

import random

from _bench_util import report
from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    AgoricOptimizer,
    CentralizedOptimizer,
    FederatedEngine,
    FederationCatalog,
    LeastLoadedPolicy,
    PolicyOptimizer,
    RandomPolicy,
    RoundRobinPolicy,
    SnapshotLoadPolicy,
)
from repro.sim import SimClock
from repro.workloads import QueryMix

SITES = 8
BURST = 60


def build_catalog():
    catalog = FederationCatalog(SimClock())
    names = [f"s{i}" for i in range(SITES)]
    for name in names:
        catalog.make_site(name, cpu_seconds_per_row=0.0005)
    schema = Schema(
        "catalog",
        (
            Field("sku", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("supplier", DataType.STRING),
        ),
    )
    rows = [
        (f"SUPPLIER-000-{i:04d}", float(i % 400), f"supplier-{i % 5:03d}")
        for i in range(2000)
    ]
    # Every fragment replicated everywhere: load can go anywhere.
    catalog.load_fragmented(Table(schema, rows), 4, [names] * 4)
    return catalog


def run_burst(optimizer_factory) -> tuple[float, float, int, int]:
    catalog = build_catalog()
    engine = FederatedEngine(catalog, optimizer=optimizer_factory(catalog))
    mix = QueryMix(table="catalog")
    rng = random.Random(3)
    fetched = shipped = 0
    for sql in mix.batch(rng, BURST):
        result = engine.query(sql, advance_clock=False)  # back-to-back burst
        fetched += result.report.rows_fetched
        shipped += result.report.rows_shipped
    work = [site.busy_seconds for site in catalog.sites.values()]
    mean_work = sum(work) / len(work)
    spread = max(work) / mean_work if mean_work else 1.0
    makespan = max(site.backlog() for site in catalog.sites.values())
    return spread, makespan, fetched, shipped


def test_e4_agoric_balances_under_burst(benchmark):
    agoric_spread, agoric_makespan, fetched, shipped = run_burst(
        lambda c: AgoricOptimizer(c)
    )
    stale_spread, stale_makespan, stale_fetched, stale_shipped = run_burst(
        lambda c: CentralizedOptimizer(c, stats_refresh_interval=1e9)
    )
    fresh_spread, fresh_makespan, fresh_fetched, fresh_shipped = run_burst(
        lambda c: CentralizedOptimizer(c, stats_refresh_interval=0.0)
    )

    report(
        "e4_load_balance",
        f"E4: load distribution under a {BURST}-query burst (8 sites, full replication)",
        ["optimizer", "work spread (max/mean)", "burst makespan s",
         "rows fetched", "rows shipped"],
        [
            ["agoric (live bids)", agoric_spread, agoric_makespan,
             fetched, shipped],
            ["centralized, stale stats", stale_spread, stale_makespan,
             stale_fetched, stale_shipped],
            ["centralized, fresh stats", fresh_spread, fresh_makespan,
             fresh_fetched, fresh_shipped],
        ],
    )

    # Paper shape: live information (bids or an oracle) keeps machines
    # equally busy; the stale snapshot dumps the burst on a few sites.
    # (The makespan margin is narrower than with the pre-pushdown executor:
    # site-side filters and partial aggregation removed most of the
    # coordinator-bound work the stale snapshot used to pile onto one
    # machine, so the whole burst got cheaper for every optimizer.)
    assert agoric_spread < stale_spread
    assert agoric_makespan < stale_makespan / 1.5
    assert agoric_spread < 2.0
    # The pushdown win itself: aggregate queries ship one partial row per
    # group instead of every fragment row, so most fetched rows never
    # cross the network to the coordinator.
    assert shipped < fetched / 2

    catalog = build_catalog()
    engine = FederatedEngine(catalog)
    benchmark(lambda: engine.query(
        "select * from catalog where sku = 'SUPPLIER-000-0001'",
        advance_clock=False,
    ))


def test_e4_ablation_balancing_policies(benchmark):
    """Ablation (DESIGN §6): replica-choice policies under the same burst."""
    rows = []
    spreads = {}
    for label, factory in [
        ("agoric market", lambda c: AgoricOptimizer(c)),
        ("random", lambda c: PolicyOptimizer(c, RandomPolicy(random.Random(1)))),
        ("round robin", lambda c: PolicyOptimizer(c, RoundRobinPolicy())),
        ("least loaded (live)", lambda c: PolicyOptimizer(c, LeastLoadedPolicy())),
        ("snapshot (stale)", lambda c: PolicyOptimizer(
            c, SnapshotLoadPolicy(refresh_interval=1e9))),
    ]:
        spread, makespan, _, _ = run_burst(factory)
        spreads[label] = spread
        rows.append([label, spread, makespan])

    report(
        "e4_policy_ablation",
        f"E4 ablation: replica-choice policy under a {BURST}-query burst",
        ["policy", "work spread (max/mean)", "burst makespan s"],
        rows,
    )
    # Live-information policies balance; the stale snapshot does not.
    assert spreads["agoric market"] < spreads["snapshot (stale)"]
    assert spreads["least loaded (live)"] < spreads["snapshot (stale)"]
    # Static spreading (round robin) is decent but blind to work size.
    assert spreads["round robin"] <= spreads["snapshot (stale)"]

    catalog = build_catalog()
    engine = FederatedEngine(catalog, optimizer=PolicyOptimizer(
        catalog, RoundRobinPolicy()))
    benchmark(lambda: engine.query(
        "select * from catalog where sku = 'SUPPLIER-000-0001'",
        advance_clock=False,
    ))

"""E8 -- Minimizing the cost per wrapper (§3.1 C1).

Claim: "what is really needed is an integration of semi-automatic wrapping
(since no automatic scheme we have seen is close to foolproof) with simple
fix-by-example graphical interfaces.  The research community is encouraged
to continue working on minimizing the cost per wrapper."

Setup: supplier sites in all three generated layouts.  For each site the
content manager labels k = 1..4 example records on the first catalog page;
the inducer learns an LR wrapper, which is then scored on a *different*
page of the same site.  We report extraction accuracy per (layout, k) and
the number of fix-by-example rounds needed to reach perfect extraction --
the "cost per wrapper" in human actions.

Expected shape: accuracy is non-decreasing in k, a handful of examples
suffices, and fix-by-example converges in a bounded number of rounds.
"""

from _bench_util import report
from repro.connect import SimulatedWeb, WebClient, WrapperInducer
from repro.connect.sitegen import build_supplier_site, format_price
from repro.core.errors import WrapperError
from repro.sim import SimClock
from repro.workloads import generate_mro

FIELDS = ("sku", "name", "price", "qty")
LAYOUTS = ["table", "divs", "dl"]
MAX_EXAMPLES = 4


def build_site(layout: str, seed: int):
    workload = generate_mro(seed=seed, supplier_count=1, products_per_supplier=60,
                            with_taxonomies=False)
    spec = workload.suppliers[0]
    web = SimulatedWeb(SimClock())
    supplier = build_supplier_site(
        f"{spec.name}.example", spec.products, layout=layout,
        price_style=spec.price_style, page_size=25,
    )
    web.register(supplier.site)
    client = WebClient(web)
    page1 = client.get(supplier.catalog_url(1)).body
    page2 = client.get(supplier.catalog_url(2)).body
    truth1 = [_record(p, spec.price_style) for p in spec.products[:25]]
    truth2 = [_record(p, spec.price_style) for p in spec.products[25:50]]
    return page1, truth1, page2, truth2


def _record(product, price_style):
    return {
        "sku": product["sku"],
        "name": product["name"],
        "price": format_price(product["price"], product["currency"], price_style),
        "qty": str(product["qty"]),
    }


def accuracy_for_examples(layout: str, k: int, seed: int) -> float:
    page1, truth1, page2, truth2 = build_site(layout, seed)
    inducer = WrapperInducer(FIELDS)
    for example in truth1[:k]:
        inducer.add_example(page1, example)
    try:
        wrapper = inducer.learn()
    except WrapperError:
        return 0.0
    return WrapperInducer.accuracy(wrapper, page2, truth2)


def fix_rounds_to_perfect(layout: str, seed: int, max_rounds: int = 10) -> int:
    """Human actions (examples given) until the unseen page extracts 100%."""
    page1, truth1, page2, truth2 = build_site(layout, seed)
    inducer = WrapperInducer(FIELDS)
    inducer.add_example(page1, truth1[0])
    examples_given = 1
    for _ in range(max_rounds):
        try:
            wrapper = inducer.learn()
        except WrapperError:
            wrapper = None
        if wrapper is not None and WrapperInducer.accuracy(wrapper, page2, truth2) == 1.0:
            return examples_given
        # The manager marks the first misread record as a fresh example.
        extracted = wrapper.extract(page2) if wrapper is not None else []
        normalized = [
            {k: " ".join(v.split()) for k, v in r.items()} for r in extracted
        ]
        misread = next(
            (t for t in truth2
             if {k: " ".join(str(v).split()) for k, v in t.items()} not in normalized),
            None,
        )
        if misread is None:
            return examples_given
        inducer.add_example(page2, misread)
        examples_given += 1
    return examples_given


def test_e8_induction_accuracy_vs_examples(benchmark):
    rows = []
    accuracy = {}
    for layout in LAYOUTS:
        row = [layout]
        for k in range(1, MAX_EXAMPLES + 1):
            scores = [accuracy_for_examples(layout, k, seed) for seed in (1, 2, 3)]
            mean = sum(scores) / len(scores)
            accuracy[(layout, k)] = mean
            row.append(mean)
        rows.append(row)

    report(
        "e8_wrapper_induction",
        "E8: unseen-page extraction accuracy vs labeled examples (3 seeds/cell)",
        ["layout"] + [f"k={k}" for k in range(1, MAX_EXAMPLES + 1)],
        rows,
    )

    for layout in LAYOUTS:
        series = [accuracy[(layout, k)] for k in range(1, MAX_EXAMPLES + 1)]
        # Non-decreasing in examples, and a handful of examples suffices.
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
        assert series[MAX_EXAMPLES - 1] >= 0.95

    page1, truth1, _, _ = build_site("table", 1)
    def kernel():
        inducer = WrapperInducer(FIELDS)
        inducer.add_example(page1, truth1[0])
        inducer.add_example(page1, truth1[1])
        return inducer.learn()
    benchmark(kernel)


def _render_disjunctive(records):
    """A site whose rows follow *two* templates: sale items grow an inline
    ``<em>(sale)</em>`` inside the SKU cell.  LR (left/right delimiter)
    wrappers cannot express the optional decoration -- the paper's point
    that "no automatic scheme we have seen is close to foolproof"."""
    rows = []
    for i, r in enumerate(records):
        decoration = " <em>(sale)</em>" if i % 3 == 0 else ""
        rows.append(
            f"<tr class='item'><td class='sku'>{r['sku']}{decoration}</td>"
            f"<td class='name'>{r['name']}</td></tr>"
        )
    return ("<html><body><table class='catalog'>"
            + "".join(rows) + "</table></body></html>")


def test_e8_disjunctive_template_needs_expert_fallback(benchmark):
    records = [
        {"sku": f"SUP-{i:03d}", "name": f"part {i}"} for i in range(20)
    ]
    page = _render_disjunctive(records)

    # Semi-automatic induction from clean rows: sale rows extract the SKU
    # with the decoration markup embedded -- wrong.
    inducer = WrapperInducer(("sku", "name"))
    inducer.add_example(page, records[1])
    inducer.add_example(page, records[2])
    induced = inducer.learn()
    induced_accuracy = WrapperInducer.accuracy(induced, page, records)

    # Adding a sale-row example makes the templates *contradict*: induction
    # honestly refuses rather than guessing.
    inducer.add_example(page, records[0])
    try:
        repaired = inducer.learn()
        repaired_accuracy = WrapperInducer.accuracy(repaired, page, records)
    except WrapperError:
        repaired_accuracy = float("nan")

    # The expert fallback (§4: "expert users can also customize wrappers
    # directly"): a hand-written regex wrapper nails both templates.
    from repro.connect import RegexWrapper

    expert = RegexWrapper(
        r"<td class='sku'>(?P<sku>[\w-]+)(?: <em>[^<]*</em>)?</td>"
        r"<td class='name'>(?P<name>[^<]+)</td>"
    )
    expert_accuracy = WrapperInducer.accuracy(expert, page, records)

    report(
        "e8_disjunctive",
        "E8: disjunctive row templates -- induction is not foolproof",
        ["wrapper", "accuracy"],
        [
            ["induced (2 clean examples)", induced_accuracy],
            ["induced (+1 sale example)", repaired_accuracy],
            ["expert regex fallback", expert_accuracy],
        ],
    )
    assert induced_accuracy < 1.0        # sale rows misread
    assert expert_accuracy == 1.0        # the manual escape hatch works
    benchmark(lambda: expert.extract(page))


def test_e8_fix_by_example_converges(benchmark):
    rows = []
    for layout in LAYOUTS:
        rounds = [fix_rounds_to_perfect(layout, seed) for seed in (1, 2, 3)]
        rows.append([layout, sum(rounds) / len(rounds), max(rounds)])

    report(
        "e8_fix_by_example",
        "E8: human examples needed until an unseen page extracts perfectly",
        ["layout", "mean examples", "worst case"],
        rows,
    )
    # Cost per wrapper is a handful of clicks, not a programming task.
    assert all(row[2] <= 4 for row in rows)

    benchmark(lambda: fix_rounds_to_perfect("divs", 1))

"""E15 -- Content-hashed stage artifacts under a zipfian query mix.

§3.2 C5 argues for "fetch-in-advance over federated technology": answers
already computed for one consumer should serve the next.  The artifact
store generalizes that from whole views to *stage outputs*: every Ship
publishes the column batch it delivered under a content hash of the
pushed-down sub-plan, so equivalent sub-plans -- across tenants, alias
spellings and prepared bindings -- collide on the same key.

This experiment drives the workload manager with the traffic where that
pays: a Zipf-skewed pool of repeating statements (a few hot reports
dominate, a long tail trickles) from Zipf-skewed tenants, with periodic
base-table writes invalidating everything derived.  The same seeded
arrival schedule runs twice:

* **Control** -- no artifact store; every query fetches site rows.
* **Reuse** -- an :class:`ArtifactStore`; repeats hit committed stage
  artifacts, concurrent identical stages join the in-flight producer
  instead of recomputing, and each write makes prior artifacts
  unreachable (the catalog version is half the key).

The gate: the reuse run executes strictly fewer site rows and ships
strictly fewer bytes, returns bit-identical rows for every arrival, and
records at least one in-flight join.  A separate fault-injection scenario
cancels a producer mid-flight and asserts its subscriber falls back to an
independent execution with correct results.

Neither run has a semantic cache: E15 isolates the artifact path.
Modeled counters go to the deterministic report table; BENCH_E15.json
carries the regression-gate summary.
"""

import os
import random

from _bench_util import report, write_json
from loadgen import poisson_times, weighted_choice, zipf_weights
from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    ArtifactStore,
    FederatedEngine,
    FederationCatalog,
    WorkloadManager,
)
from repro.federation.workload import QueryState
from repro.sim import EventLoop, SimClock

SEED = 20015
SITES = [f"s{i}" for i in range(3)]
FRAGMENTS = 6
ROWS_PER_FRAGMENT = 20
TOTAL_ROWS = FRAGMENTS * ROWS_PER_FRAGMENT
SLOTS = 3
TENANTS = [f"t{i}" for i in range(6)]

# Env-overridable so CI can run a smaller smoke configuration.
QUERIES = int(os.environ.get("E15_QUERIES", "20000"))
WRITES = int(os.environ.get("E15_WRITES", "6"))
LOAD = float(os.environ.get("E15_LOAD", "0.8"))

# The statement pool: fixed-literal shapes a reporting portal replays
# verbatim.  Zipf popularity makes the head statements hot enough to be
# in flight concurrently (the sharing scenario) while the tail keeps the
# store's admission/eviction honest.  One alias spelling repeats the hot
# aggregate -- it must land on the same content hash.
POOL = [
    "select count(*), sum(v) from items where v < 96",
    "select k, v from items where v < 24",
    "select count(*), sum(v) from items i where i.v < 96",
    "select count(*) from items where v < 60",
    "select v from items where v >= 100",
    "select sum(v) from items where v < 88",
    "select k from items where v < 12",
    "select min(v), max(v) from items",
    "select count(*) from items",
    "select k, v from items where v between 40 and 55",
]
POOL_WEIGHTS = zipf_weights(len(POOL))

_SUMMARY: dict = {}


def build(with_artifacts):
    """items(k, v) over three sites with RF=2, workload-managed."""
    catalog = FederationCatalog(SimClock())
    for name in SITES:
        catalog.make_site(name)
    schema = Schema(
        "items", (Field("k", DataType.STRING), Field("v", DataType.INTEGER))
    )
    table = Table(schema, [(f"k{i:04d}", i) for i in range(TOTAL_ROWS)])
    placement = [
        [SITES[i % len(SITES)], SITES[(i + 1) % len(SITES)]]
        for i in range(FRAGMENTS)
    ]
    catalog.load_fragmented(table, FRAGMENTS, placement)
    store = ArtifactStore(catalog.clock) if with_artifacts else None
    engine = FederatedEngine(catalog, artifacts=store)
    loop = EventLoop(catalog.clock)
    manager = WorkloadManager(engine, loop, max_in_flight=SLOTS)
    return catalog, engine, loop, manager, store


def mix_service_seconds():
    """Mean uncontended response time of the statement pool."""
    _, engine, _, _, _ = build(with_artifacts=False)
    total = 0.0
    for sql in POOL:
        total += engine.query(sql, advance_clock=False).report.response_seconds
    return total / len(POOL)


def make_schedule():
    """The seeded arrival schedule both runs replay identically."""
    rng = random.Random(SEED)
    rate = LOAD * SLOTS / mix_service_seconds()
    times = poisson_times(rng, rate, QUERIES)
    tenant_weights = zipf_weights(len(TENANTS))
    arrivals = [
        (
            when,
            weighted_choice(rng, TENANTS, tenant_weights),
            weighted_choice(rng, POOL, POOL_WEIGHTS),
        )
        for when in times
    ]
    horizon = times[-1]
    write_times = [horizon * (i + 1) / (WRITES + 1) for i in range(WRITES)]
    return arrivals, write_times


def run_schedule(arrivals, write_times, with_artifacts):
    """Replay one schedule; returns (handles in arrival order, store)."""
    catalog, _, loop, manager, store = build(with_artifacts)
    handles = []

    for when, tenant, sql in arrivals:
        def arrive(tenant=tenant, sql=sql):
            handles.append(manager.submit(sql, tenant=tenant))

        loop.schedule_at(when, arrive)
    for when in write_times:
        loop.schedule_at(
            when, lambda: catalog.notify_table_updated("items")
        )

    while loop.pending():
        loop.run_next()
    return handles, store


def totals(handles):
    rows = bytes_ = hits = joins = failed = 0
    for handle in handles:
        if handle.state is not QueryState.COMPLETED:
            failed += 1
            continue
        rep = handle.result().report
        rows += rep.rows_fetched
        bytes_ += rep.bytes_shipped
        hits += rep.artifact_hits
        joins += rep.artifact_joins
    return {
        "rows_fetched": rows,
        "bytes_shipped": bytes_,
        "artifact_hits": hits,
        "inflight_joins": joins,
        "failed": failed,
    }


def test_e15_zipfian_reuse(benchmark):
    """Same arrivals, two physical economies: reuse fetches strictly fewer
    site rows, ships strictly fewer bytes, answers bit-identically."""
    arrivals, write_times = make_schedule()
    control_handles, _ = run_schedule(arrivals, write_times, False)
    reuse_handles, store = run_schedule(arrivals, write_times, True)

    control = totals(control_handles)
    reuse = totals(reuse_handles)
    identical = all(
        c.result().table.rows == r.result().table.rows
        for c, r in zip(control_handles, reuse_handles)
    )
    row_reduction = 1 - reuse["rows_fetched"] / control["rows_fetched"]
    byte_reduction = 1 - reuse["bytes_shipped"] / control["bytes_shipped"]

    report(
        "e15_artifact_reuse",
        f"E15: stage-artifact reuse ({QUERIES} queries, {len(POOL)} "
        f"statements Zipf-skewed, {WRITES} invalidating writes, "
        f"load {LOAD:.2f})",
        ["run", "site rows", "bytes shipped", "hits", "joins", "failed"],
        [
            ["control (no artifacts)", control["rows_fetched"],
             control["bytes_shipped"], 0, 0, control["failed"]],
            ["artifact reuse", reuse["rows_fetched"],
             reuse["bytes_shipped"], reuse["artifact_hits"],
             reuse["inflight_joins"], reuse["failed"]],
        ],
    )

    _SUMMARY.update({
        "config": {
            "queries": QUERIES,
            "statements": len(POOL),
            "writes": WRITES,
            "load": LOAD,
            "slots": SLOTS,
        },
        "totals": {
            "control_rows": control["rows_fetched"],
            "reuse_rows": reuse["rows_fetched"],
            "control_bytes": control["bytes_shipped"],
            "reuse_bytes": reuse["bytes_shipped"],
            "row_reduction": round(row_reduction, 6),
            "byte_reduction": round(byte_reduction, 6),
        },
        "sharing": {
            "hits": store.hits,
            "misses": store.misses,
            "inflight_joins": reuse["inflight_joins"],
            "hit_rate": round(store.hit_rate, 6),
        },
        "invalidation": {
            "writes": WRITES,
            "invalidations": store.invalidations,
        },
        "identical_results": identical,
        "errors": control["failed"] + reuse["failed"],
    })
    write_json("BENCH_E15", _SUMMARY)

    # The headline gate: strictly cheaper, bit-identical, actually shared.
    assert reuse["rows_fetched"] < control["rows_fetched"]
    assert reuse["bytes_shipped"] < control["bytes_shipped"]
    assert identical
    assert reuse["inflight_joins"] >= 1
    assert reuse["artifact_hits"] > 0
    assert control["failed"] == reuse["failed"] == 0
    # Every write found something to invalidate (version-bump alone would
    # leave artifacts stranded; the listener drops them eagerly).
    assert store.invalidations > 0
    # The alias spelling of the hot aggregate shares its hash: the two hot
    # statements together cannot have missed more often than the write
    # epochs let them (one cold fetch per epoch, not one per spelling).
    assert store.hits > store.misses

    benchmark(lambda: run_schedule(arrivals[:20], [], True))


def test_e15_fault_injection(benchmark):
    """Cancelling a producer mid-flight falls its subscriber back to an
    independent execution with the right answer."""
    sql = POOL[0]
    _, engine, _, manager, store = build(with_artifacts=True)
    _, control_engine, _, _, _ = build(with_artifacts=False)
    expected = control_engine.query(sql).table.rows

    producer = manager.submit(sql, tenant="t0")
    subscriber = manager.submit(sql, tenant="t1")
    assert store.joins == 1
    assert manager.cancel(producer)
    manager.drain()

    report(
        "e15_fault_injection",
        "E15: in-flight producer cancelled, subscriber falls back",
        ["event", "count"],
        [
            ["in-flight joins", store.joins],
            ["producer aborts", store.aborts],
            ["subscriber fallbacks", store.fallbacks],
            ["subscriber completed", int(subscriber.state is QueryState.COMPLETED)],
        ],
    )

    _SUMMARY["fault"] = {
        "aborts": store.aborts,
        "fallbacks": store.fallbacks,
        "subscriber_completed": subscriber.state is QueryState.COMPLETED,
        "subscriber_correct": subscriber.result().table.rows == expected,
    }
    write_json("BENCH_E15", _SUMMARY)

    assert producer.state is QueryState.FAILED
    assert subscriber.state is QueryState.COMPLETED
    assert subscriber.result().table.rows == expected
    assert store.fallbacks == 1
    # The fallback recomputed from the sites -- no artifact shortcut.
    assert subscriber.result().report.rows_fetched > 0

    benchmark(lambda: build(with_artifacts=True))

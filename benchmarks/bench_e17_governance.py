"""E17 -- Compiled governance under the gateway's production mix.

A content-integration deployment serves *competing* trading partners off
one federation, so policy enforcement cannot live in the application: the
gateway must prove that per-tenant RLS, column masks, rate limits and cost
budgets hold under load, and that the enforcement is *compiled* -- priced
by the optimizers, not bolted on as a post-filter.  Three scenarios:

* **Enforcement overhead.**  The E14 steady-state mix (Poisson arrivals
  at 85% of capacity, Zipf tenant skew) run twice over identical
  federations: once ungoverned, once with four of six tenants under RLS
  filters and a mask.  Modeled mean/P95 latency are compared; the
  ``governance.*`` counters show the subsystem actually policed the run.
  Because RLS compiles into scan pushdown, the governed run ships *fewer*
  rows -- overhead is bounded and pushdown-credited.
* **Optimizer-priced policies.**  The same governed statement is planned
  by all three optimizer families (agoric, centralized, policy-driven);
  each plan's modeled price is compared against the ungoverned price.  A
  sargable RLS predicate makes every optimizer's plan *cheaper* -- the
  definitive evidence that policies enter the plan, not the cursor.
* **Budget-capped markets.**  Three budgeted tenants contend for the same
  federation: a well-funded tenant, a shoestring ``reject`` tenant and a
  shoestring ``degrade`` tenant.  The shoestring tenants exhaust their
  credits mid-run; rejections and degradations are tallied and the rich
  tenant is unaffected.  A rate-limited tenant's burst is clipped by the
  token bucket on the same run.

Everything runs on the simulation clock with seeded arrivals; the report
tables are byte-identical across runs (determinism CI relies on this).
"""

import os
import random

from _bench_util import report, write_json
from loadgen import make_arrivals, poisson_times, zipf_weights
from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    AgoricOptimizer,
    CentralizedOptimizer,
    FederatedEngine,
    FederationCatalog,
    Gateway,
    PolicyOptimizer,
    RoundRobinPolicy,
    WorkloadManager,
)
from repro.federation.governance import GovernanceRegistry
from repro.sim import EventLoop, SimClock

SEED = 20017
SITES = [f"s{i}" for i in range(3)]
FRAGMENTS = 6
ROWS_PER_FRAGMENT = 20
TOTAL_ROWS = FRAGMENTS * ROWS_PER_FRAGMENT
SLOTS = 3
QUEUE_LIMIT = 50
TENANTS = [f"t{i}" for i in range(6)]

# Env-overridable so CI can run a smaller smoke configuration.
QUERIES = int(os.environ.get("E17_QUERIES", "40000"))
BUDGET_QUERIES = int(os.environ.get("E17_BUDGET_QUERIES", "300"))

_SUMMARY: dict = {}


# The preparable E14 shapes (the LIKE shape exercises textual binding and
# adds nothing to governance, so it stays out of the comparison mix).


def _threshold_params(rng):
    return (rng.randrange(TOTAL_ROWS),)


def _range_params(rng):
    low = rng.randrange(TOTAL_ROWS - 20)
    return (low, low + 20)


def _point_params(rng):
    return (f"k{rng.randrange(TOTAL_ROWS):04d}",)


STATEMENTS = [
    ("select count(*) from items where v < ?", _threshold_params),
    ("SELECT k, v FROM items WHERE v BETWEEN ? AND ?", _range_params),
    ("select v from items where k = ?", _point_params),
]

# Four of six tenants governed: two share one declared policy (their plans
# and artifacts must too), one sees the other half of the key space, one is
# mask-only.  t4/t5 stay ungoverned and share the unpoliced plan-cache rows.
GOVERNED_MANIFEST = {
    "version": 1,
    "tenants": {
        "t0": {
            "tables": {
                "items": {"row_filter": "v < 60", "masks": {"k": "hash"}}
            }
        },
        "t1": {
            "tables": {
                "items": {"row_filter": "v < 60", "masks": {"k": "hash"}}
            }
        },
        "t2": {"tables": {"items": {"row_filter": "v >= 60"}}},
        "t3": {"tables": {"items": {"masks": {"k": "last4"}}}},
    },
}
DISTINCT_SIGNATURES = 3  # t0==t1, t2, t3 (t4/t5 share the ungoverned key)

BUDGET_MANIFEST = {
    "version": 1,
    "tenants": {
        "rich": {
            "tables": {"items": {"row_filter": "v >= 0"}},
            "budget": {"credits": 1000.0},
        },
        "poor-reject": {
            "tables": {"items": {"row_filter": "v >= 0"}},
            "budget": {"credits": 0.02, "on_exhausted": "reject"},
        },
        "poor-degrade": {
            "tables": {"items": {"row_filter": "v >= 0"}},
            "budget": {"credits": 0.02, "on_exhausted": "degrade"},
        },
        "chatty": {
            "tables": {"items": {"row_filter": "v >= 0"}},
            "rate_limit": {"per_second": 2.0, "burst": 4},
        },
    },
}


def build(manifest=None):
    """items(k, v) hash-fragmented over three sites with RF=2."""
    catalog = FederationCatalog(SimClock())
    for name in SITES:
        catalog.make_site(name)
    schema = Schema(
        "items", (Field("k", DataType.STRING), Field("v", DataType.INTEGER))
    )
    table = Table(schema, [(f"k{i:04d}", i) for i in range(TOTAL_ROWS)])
    placement = [
        [SITES[i % len(SITES)], SITES[(i + 1) % len(SITES)]]
        for i in range(FRAGMENTS)
    ]
    catalog.load_fragmented(table, FRAGMENTS, placement)
    governance = GovernanceRegistry(manifest) if manifest else None
    engine = FederatedEngine(catalog, governance=governance)
    loop = EventLoop(catalog.clock)
    return catalog, engine, loop


def build_gateway(manifest=None, queue_limit=QUEUE_LIMIT, tenants=TENANTS):
    _, engine, loop = build(manifest)
    manager = WorkloadManager(
        engine, loop, scheduler="weighted-fair", max_in_flight=SLOTS
    )
    for name in tenants:
        manager.register_tenant(name, queue_limit=queue_limit)
    return Gateway(manager, max_sessions=32, plan_cache_size=64)


def mix_service_seconds():
    """Mean uncontended modeled response time of the statement mix."""
    rng = random.Random(SEED)
    _, engine, _ = build()
    from repro.federation.gateway import bind_sql_text

    samples = 24
    total = 0.0
    for i in range(samples):
        sql, params_fn = STATEMENTS[i % len(STATEMENTS)]
        bound = bind_sql_text(sql, params_fn(rng))
        total += engine.query(
            bound, advance_clock=False
        ).report.response_seconds
    return total / samples


def run_mix(gateway, arrivals):
    """Open-loop offer; returns (outcomes, handles) after the loop drains."""
    from loadgen import run_open_loop

    return run_open_loop(gateway, arrivals)


def _emit_summary():
    write_json("BENCH_E17", _SUMMARY)


def _latency_stats(outcomes):
    latencies = sorted(
        x for o in outcomes.values() for x in o.latencies
    )
    mean = sum(latencies) / len(latencies)
    p95 = latencies[int(0.95 * (len(latencies) - 1))]
    return mean, p95


# -- enforcement overhead -------------------------------------------------------


def test_e17_enforcement_overhead(benchmark):
    """The governed gateway run polices every statement of four tenants at
    a bounded modeled-latency premium over the identical ungoverned run."""
    service = mix_service_seconds()
    capacity = SLOTS / service
    rng = random.Random(SEED)
    times = poisson_times(rng, 0.85 * capacity, QUERIES)
    arrivals = make_arrivals(
        rng, times, TENANTS, STATEMENTS,
        tenant_weights=zipf_weights(len(TENANTS)),
    )

    plain_gateway = build_gateway()
    plain_outcomes, _ = run_mix(plain_gateway, arrivals)
    governed_gateway = build_gateway(GOVERNED_MANIFEST)
    governed_outcomes, _ = run_mix(governed_gateway, arrivals)

    plain_mean, plain_p95 = _latency_stats(plain_outcomes)
    governed_mean, governed_p95 = _latency_stats(governed_outcomes)
    overhead = governed_mean / plain_mean

    metrics = governed_gateway.engine.metrics
    policed = metrics.counter("governance.queries_policed").value
    rls_rows = metrics.counter("governance.rows_filtered_by_rls").value
    cache = governed_gateway.plan_cache

    governed_completed = sum(
        governed_outcomes[t].completed for t in ("t0", "t1", "t2", "t3")
    )
    report(
        "e17_enforcement_overhead",
        f"E17: enforcement overhead ({QUERIES} queries at 85% capacity, "
        f"4/6 tenants governed, {policed:.0f} statements policed)",
        ["run", "completed", "mean s", "p95 s", "shed", "failed"],
        [
            ["ungoverned",
             sum(o.completed for o in plain_outcomes.values()),
             round(plain_mean, 6), round(plain_p95, 6),
             sum(o.shed for o in plain_outcomes.values()),
             sum(o.failed for o in plain_outcomes.values())],
            ["governed",
             sum(o.completed for o in governed_outcomes.values()),
             round(governed_mean, 6), round(governed_p95, 6),
             sum(o.shed for o in governed_outcomes.values()),
             sum(o.failed for o in governed_outcomes.values())],
        ],
    )

    _SUMMARY.update({
        "config": {
            "queries": QUERIES,
            "tenants": len(TENANTS),
            "governed_tenants": 4,
            "slots": SLOTS,
            "offered_load": 0.85,
            "service_seconds": round(service, 6),
        },
        "enforcement": {
            "plain_mean_s": round(plain_mean, 6),
            "plain_p95_s": round(plain_p95, 6),
            "governed_mean_s": round(governed_mean, 6),
            "governed_p95_s": round(governed_p95, 6),
            "overhead_ratio": round(overhead, 4),
            "queries_policed": int(policed),
            "rows_filtered_by_rls": int(rls_rows),
            "plan_cache_hit_rate": round(cache.hit_rate, 6),
            "plan_cache_misses": cache.misses,
            "error_rate": round(
                sum(o.failed for o in governed_outcomes.values())
                / max(1, sum(o.offered for o in governed_outcomes.values())),
                6,
            ),
        },
    })
    _emit_summary()

    # Every completed governed-tenant statement was policed, none errored.
    assert policed == governed_completed
    assert all(o.failed == 0 for o in governed_outcomes.values())
    # The plan cache still collapses planning: one entry per SQL shape per
    # distinct policy signature (t0/t1 share; t4/t5 share the unpoliced key).
    assert cache.misses == len(STATEMENTS) * (DISTINCT_SIGNATURES + 1)
    assert cache.hit_rate > 0.95
    # Compiled enforcement is cheap: RLS rides the pushdown the sites
    # evaluate anyway, so the modeled premium stays well under 2x -- a
    # post-filtering implementation would ship every row and blow this.
    assert overhead < 2.0

    benchmark(lambda: run_mix(
        build_gateway(GOVERNED_MANIFEST),
        make_arrivals(
            random.Random(SEED),
            poisson_times(random.Random(SEED), 0.5 * capacity, 12),
            TENANTS, STATEMENTS,
        ),
    ))


# -- optimizer-priced policies --------------------------------------------------


def test_e17_policies_are_priced_by_every_optimizer(benchmark):
    """All three optimizer families see the injected RLS predicate and
    price the governed plan cheaper than the ungoverned one."""
    probe = "select k, v from items"
    rows = []
    pricing = {}
    for name, make_optimizer in [
        ("agoric", lambda catalog: AgoricOptimizer(catalog)),
        ("centralized", lambda catalog: CentralizedOptimizer(catalog)),
        ("policy:round-robin",
         lambda catalog: PolicyOptimizer(catalog, RoundRobinPolicy())),
    ]:
        catalog, _, _ = build()
        engine = FederatedEngine(
            catalog,
            optimizer=make_optimizer(catalog),
            governance=GovernanceRegistry(GOVERNED_MANIFEST),
        )
        plain = engine.query(probe)
        governed = engine.query(probe, tenant="t0")
        explain = engine.explain(probe, tenant="t0")
        assert "rls(tenant=t0: v < 60)" in explain
        assert "mask(k)" in explain
        pricing[name] = {
            # Modeled response seconds are the cost currency every
            # optimizer family shares; the agoric market also reports the
            # sum of its winning bids.
            "plain_seconds": round(plain.report.response_seconds, 8),
            "governed_seconds": round(governed.report.response_seconds, 8),
            "plain_price": round(plain.plan.total_price, 8),
            "governed_price": round(governed.plan.total_price, 8),
            "plain_rows": len(plain.table),
            "governed_rows": len(governed.table),
        }
        rows.append([
            name, pricing[name]["plain_seconds"],
            pricing[name]["governed_seconds"],
            pricing[name]["plain_rows"], pricing[name]["governed_rows"],
        ])

    report(
        "e17_optimizer_pricing",
        "E17: the RLS predicate is optimizer-visible -- every family "
        "prices the governed scan below the unrestricted one",
        ["optimizer", "plain s", "governed s",
         "plain rows", "governed rows"],
        rows,
    )
    _SUMMARY["pricing"] = pricing
    _emit_summary()

    for name, stats in pricing.items():
        # The governed plan ships half the table (v < 60 of 120 rows), so
        # its modeled cost must drop -- proof the policy entered the plan
        # before costing, not the cursor after it.
        assert stats["governed_seconds"] < stats["plain_seconds"], name
        assert stats["governed_rows"] == 60
        assert stats["plain_rows"] == TOTAL_ROWS
    # The agoric market's winning-bid total drops with the shipped rows.
    assert pricing["agoric"]["governed_price"] < pricing["agoric"]["plain_price"]

    catalog, _, _ = build()
    engine = FederatedEngine(
        catalog, governance=GovernanceRegistry(GOVERNED_MANIFEST)
    )
    benchmark(lambda: engine.query(probe, tenant="t0", advance_clock=False))


# -- budget-capped markets ------------------------------------------------------


def test_e17_budget_contention(benchmark):
    """Shoestring budgets exhaust mid-run: the reject tenant is turned
    away, the degrade tenant limps on degraded, the funded tenant and the
    federation's other work are untouched; a chatty tenant's burst is
    clipped by the token bucket."""
    from repro.core.errors import QueryRejectedError

    tenants = ["rich", "poor-reject", "poor-degrade"]
    gateway = build_gateway(BUDGET_MANIFEST, tenants=tenants + ["chatty"])
    governance = gateway.engine.governance
    loop = gateway.workload.loop
    sessions = {name: gateway.connect(tenant=name) for name in tenants}
    sql = "select count(*) from items where v < ?"

    completed = {name: 0 for name in tenants}
    rejected = {name: 0 for name in tenants}
    rng = random.Random(SEED + 1)
    # Paced arrivals: round-robin across the budgeted tenants, spaced out
    # so admission decisions happen one at a time on the modeled clock.
    for i in range(BUDGET_QUERIES):
        tenant = tenants[i % len(tenants)]

        def arrive(tenant=tenant, params=(rng.randrange(TOTAL_ROWS),)):
            try:
                sessions[tenant].submit(sql, params)
            except QueryRejectedError:
                rejected[tenant] += 1

        loop.schedule_at(i * 0.05, arrive)
    while loop.pending():
        loop.run_next()
    for name in tenants:
        completed[name] = gateway.workload.tenant(name).completed

    # The chatty tenant fires a 12-query burst into a 4-token bucket.
    chatty = gateway.connect(tenant="chatty")
    chatty_rejected = 0
    for _ in range(12):
        try:
            handle = chatty.submit("select count(*) from items", ())
            gateway.workload.drain(handle)
        except QueryRejectedError:
            chatty_rejected += 1

    metrics = gateway.engine.metrics
    budget_rejections = metrics.counter("governance.budget_rejections").value
    budget_degraded = metrics.counter("governance.budget_degraded").value
    rate_limited = metrics.counter("governance.rate_limited").value

    rows = [
        [name, completed[name], rejected[name],
         round(governance.remaining_budget(name) or 0.0, 6)]
        for name in tenants
    ]
    report(
        "e17_budget_contention",
        f"E17: budget-capped contention ({BUDGET_QUERIES} offered over 3 "
        f"budgeted tenants; {budget_rejections:.0f} budget rejections, "
        f"{budget_degraded:.0f} degraded, {rate_limited:.0f} rate-limited)",
        ["tenant", "completed", "rejected", "remaining credits"],
        rows,
    )

    _SUMMARY["budgets"] = {
        "offered": BUDGET_QUERIES,
        "completed": completed,
        "rejected": rejected,
        "budget_rejections": int(budget_rejections),
        "budget_degraded": int(budget_degraded),
        "rate_limited": int(rate_limited),
        "remaining": {
            name: round(governance.remaining_budget(name) or 0.0, 6)
            for name in tenants
        },
    }
    _emit_summary()

    offered_each = BUDGET_QUERIES // len(tenants)
    # The funded tenant completes its whole share; the reject tenant is
    # turned away once its credits run out -- and the ledger never goes
    # meaningfully negative (the last admitted query may overshoot).
    assert completed["rich"] == offered_each
    assert rejected["rich"] == 0
    assert rejected["poor-reject"] > 0
    assert completed["poor-reject"] < offered_each
    assert budget_rejections == rejected["poor-reject"]
    # The degrade tenant is never turned away: exhaustion flips it to
    # degraded answers instead.
    assert rejected["poor-degrade"] == 0
    assert completed["poor-degrade"] == offered_each
    assert budget_degraded > 0
    # The token bucket clips the burst past its 4-token capacity (tokens
    # trickle back while drained queries advance the clock).
    assert chatty_rejected > 0
    assert rate_limited == chatty_rejected

    benchmark(lambda: governance.effective_budget("rich", None))

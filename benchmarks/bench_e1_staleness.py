"""E1 -- Warehousing breaks on volatile content (§3.2 C5).

Claim: "warehousing systems are built solely around the 'fetch in advance'
paradigm.  To deal with volatile data, they suggest refreshing the warehouse
more frequently, which is neither scalable nor sufficiently close to real
time."

Setup: the hotel market (50 chains) with continuous bookings/rate moves.
We sweep the warehouse refresh interval and measure (a) the error of the
traveler query's answers (phantom offers + missed vacancies) and (b) the
refresh bandwidth spent per hour -- against the federation answering the
same query fetch-on-demand.

Expected shape: warehouse error falls only as refresh cost explodes; the
federation sits at zero error for a flat per-query cost.
"""

import random

import pytest

from _bench_util import report
from repro.connect.source import LiveSource
from repro.federation import FederatedEngine, FederationCatalog
from repro.federation.engine import LIVE_ONLY
from repro.sim import EventLoop, SimClock
from repro.warehouse import EtlJob, Warehouse
from repro.workloads import generate_hotels
from repro.workloads.hotels import AVAILABILITY_SCHEMA, STATIC_SCHEMA

QUERY = (
    "select s.hotel_id from hotel_static s "
    "join hotel_availability a on s.hotel_id = a.hotel_id "
    "where s.miles_to_airport <= 10 and s.has_health_club = true "
    "and a.corporate_rate <= 200 and a.rooms_available > 0"
)

HORIZON = 3600.0  # one simulated hour
QUERY_EVERY = 120.0
UPDATE_INTERVAL = 1.0  # one booking/rate move per simulated second


def truth_ids(market):
    return {
        h["hotel_id"]
        for h in market.hotels
        if h["miles_to_airport"] <= 10
        and h["has_health_club"]
        and h["corporate_rate"] <= 200
        and h["rooms_available"] > 0
    }


def answer_error(table, market):
    answered = set(table.column("hotel_id"))
    truth = truth_ids(market)
    return len(answered - truth) + len(truth - answered)


def run_warehouse(refresh_interval: float) -> tuple[float, float]:
    """Returns (mean answer error, refresh seconds spent per hour)."""
    clock = SimClock()
    loop = EventLoop(clock)
    market = generate_hotels(seed=1, chain_count=50, hotels_per_chain=4)
    market.schedule_volatility(loop, random.Random(2), UPDATE_INTERVAL)

    warehouse = Warehouse(clock)
    warehouse.add_job(
        EtlJob("hotel_static",
               LiveSource("static", STATIC_SCHEMA, market.static_rows, 0.5))
    )
    warehouse.add_job(
        EtlJob("hotel_availability",
               LiveSource("avail", AVAILABILITY_SCHEMA, market.availability_rows, 2.0))
    )
    warehouse.refresh()
    warehouse.schedule_refresh(loop, refresh_interval)

    errors = []
    t = QUERY_EVERY
    while t <= HORIZON:
        loop.run_until(t)
        errors.append(answer_error(warehouse.query(QUERY).table, market))
        t += QUERY_EVERY
    return sum(errors) / len(errors), warehouse.refresh_seconds_total


def run_federation() -> tuple[float, float]:
    """Returns (mean answer error, mean per-query response seconds)."""
    clock = SimClock()
    loop = EventLoop(clock)
    market = generate_hotels(seed=1, chain_count=50, hotels_per_chain=4)
    market.schedule_volatility(loop, random.Random(2), UPDATE_INTERVAL)

    catalog = FederationCatalog(clock)
    chain_sites = {
        chain: catalog.make_site(f"res-{i:02d}").name
        for i, chain in enumerate(market.chains)
    }
    market.register_sources(catalog, chain_sites)
    engine = FederatedEngine(catalog)

    errors = []
    latencies = []
    t = QUERY_EVERY
    while t <= HORIZON:
        loop.run_until(t)
        result = engine.query(QUERY, max_staleness=LIVE_ONLY)
        errors.append(answer_error(result.table, market))
        latencies.append(result.report.response_seconds)
        t += QUERY_EVERY
    return sum(errors) / len(errors), sum(latencies) / len(latencies)


def test_e1_warehouse_staleness_vs_federation(benchmark):
    intervals = [3600.0, 900.0, 300.0, 60.0]
    rows = []
    errors_by_interval = {}
    for interval in intervals:
        error, refresh_cost = run_warehouse(interval)
        errors_by_interval[interval] = error
        rows.append([f"warehouse@{interval:.0f}s", error, refresh_cost, "-"])

    fed_error, fed_latency = run_federation()
    rows.append(["federation (live)", fed_error, 0.0, fed_latency])

    report(
        "e1_staleness",
        "E1: traveler-query error vs refresh policy (1h, 1 update/s, 200 hotels)",
        ["system", "mean answer error", "refresh s/hour", "query latency s"],
        rows,
    )

    # Paper shape: the federation is exactly fresh; the warehouse only
    # approaches freshness by refreshing more, paying proportionally.
    assert fed_error == 0.0
    assert errors_by_interval[3600.0] > errors_by_interval[60.0]
    assert errors_by_interval[900.0] > 0
    cost_frequent = 2.5 * (HORIZON / 60.0)
    cost_rare = 2.5 * (HORIZON / 3600.0)
    assert cost_frequent / cost_rare == pytest.approx(60.0)

    # Benchmark kernel: one live federated query under the running market.
    clock = SimClock()
    market = generate_hotels(seed=1, chain_count=50, hotels_per_chain=4)
    catalog = FederationCatalog(clock)
    chain_sites = {
        chain: catalog.make_site(f"res-{i:02d}").name
        for i, chain in enumerate(market.chains)
    }
    market.register_sources(catalog, chain_sites)
    engine = FederatedEngine(catalog)
    benchmark(lambda: engine.query(QUERY, max_staleness=LIVE_ONLY, advance_clock=False))

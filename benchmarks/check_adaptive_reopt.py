#!/usr/bin/env python3
"""CI gate: adaptive re-optimization must not regress against the committed run.

Usage::

    check_adaptive_reopt.py BASELINE.json FRESH.json

Each file is a ``BENCH_E16.json`` produced by ``bench_e16_adaptive_reopt.py``.
The bench models every latency on the simulation clock, so a fresh run at the
committed scale reproduces the baseline numbers exactly on any hardware; the
gate still compares *shapes* with slack so a scaled-down smoke run
(``E16_QUERIES``) also passes when the mechanism is healthy:

* **Correctness is scale-free.**  ``identical_results`` must be true and
  every configuration's error count exactly zero at any scale -- a migrated
  stage that changes an answer is wrong, full stop.
* **Inertness is scale-free.**  The undisturbed adaptive run must record
  zero replans and zero re-optimization events: the machinery may only wake
  when the cluster actually degrades.
* **The mechanism must fire** under the disturbance schedule: at least one
  mid-flight replan, one re-solicitation, and one migrated stage.
* **The win must hold**: adaptive mean latency below both static baselines
  (speedup > 1), and not more than ``SPEEDUP_SLACK`` (relative) below the
  committed baseline's speedups.

Exits 1 on the first violated bound.
"""

import json
import sys

SPEEDUP_SLACK = 0.15  # relative headroom below the baseline speedups

CONFIGS = ("adaptive", "static_agoric", "static_centralized", "undisturbed")


def load(path: str) -> dict:
    with open(path) as f:
        payload = json.load(f)
    for key in CONFIGS + ("identical_results", "speedup_vs_static_agoric"):
        if key not in payload:
            raise SystemExit(f"{path}: no '{key}' key (full E16 bench not run?)")
    return payload


def main(argv: "list[str]") -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline = load(argv[1])
    fresh = load(argv[2])
    failures = []

    if not fresh.get("identical_results"):
        failures.append("configurations did not return bit-identical answers")
    for config in CONFIGS:
        errors = fresh[config].get("errors", 1)
        if errors != 0:
            failures.append(f"{config}: nonzero error count {errors}")

    undisturbed = fresh["undisturbed"]
    print(
        f"undisturbed replans {undisturbed['replans']}, "
        f"re-opts {undisturbed['reoptimizations']} (bar 0)"
    )
    if undisturbed["replans"] != 0 or undisturbed["reoptimizations"] != 0:
        failures.append("re-opt machinery fired on an undisturbed cluster")

    adaptive = fresh["adaptive"]
    print(
        f"adaptive replans {adaptive['replans']}, "
        f"re-opts {adaptive['reoptimizations']}, "
        f"migrated {adaptive['migrated_stages']} (bar 1 each)"
    )
    if adaptive["replans"] < 1:
        failures.append("no mid-flight replan ever happened")
    if adaptive["reoptimizations"] < 1:
        failures.append("no stage was ever re-solicited")
    if adaptive["migrated_stages"] < 1:
        failures.append("no stage ever migrated")

    for metric in ("speedup_vs_static_agoric", "speedup_vs_static_centralized"):
        bar = baseline[metric] * (1.0 - SPEEDUP_SLACK)
        value = fresh[metric]
        print(f"{metric} {value:.4f} (bar {max(bar, 1.0):.4f})")
        if value <= 1.0:
            failures.append(
                f"{metric} {value:.4f}: adaptive did not beat the baseline"
            )
        elif value < bar:
            failures.append(
                f"{metric} {value:.4f} below committed "
                f"{baseline[metric]:.4f} with {SPEEDUP_SLACK:.0%} slack"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: adaptive re-optimization holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""E16 -- Adaptive mid-query re-optimization under cluster degradation.

A plan frozen at dispatch is a bet that the cluster stays the way the
optimizer saw it.  This experiment breaks that bet mid-run -- an 8x load
spike on one replica site, then a hard kill of another -- under an
open-loop query stream near saturation, and compares three configurations facing the
*identical* disturbance schedule:

* **adaptive (agoric + re-opt)** -- the engine carries a
  :class:`~repro.federation.reopt.ReoptPolicy`; the workload manager's
  disturbance wakeups re-execute affected in-flight queries and the
  re-optimization controller migrates their unstarted stages to healthy
  replicas at live prices.
* **static agoric** -- same wakeups, but the re-execution re-prices the
  *original* assignments: work pinned to the slowed site pays the spike,
  work pinned to the dead site pays failover retries and backoff.
* **static centralized** -- the compile-time baseline with a periodically
  refreshed statistics snapshot; its dispatches between refreshes also
  keep landing work on the degraded sites.

The acceptance bars: every configuration returns bit-identical answers
(replicas hold the same fragment rows, so *where* a stage runs never
changes *what* it returns), the adaptive run completes the stream with
lower modeled mean and p95 latency than both static baselines, and an
undisturbed adaptive run records zero re-optimization events (the
machinery is inert when nothing degrades).

Everything runs on the simulation clock with seeded arrivals, so two runs
produce byte-identical tables (the determinism CI job relies on this).
"""

import math
import os
import random

from _bench_util import report, write_json
from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    CentralizedOptimizer,
    FailureInjector,
    FederatedEngine,
    FederationCatalog,
    ReoptPolicy,
    WorkloadManager,
)
from repro.sim import EventLoop, SimClock

SEED = 20016
SITES = [f"s{i}" for i in range(3)]
FRAGMENTS = 6
ROWS_PER_FRAGMENT = 20
SLOTS = 3
QUERIES = int(os.environ.get("E16_QUERIES", "80"))
QUERY_MIX = [
    "select count(*) from items",
    "select k, v from items where v < 40",
]
# The disturbance schedule, placed as fractions of the arrival horizon:
# a sustained 8x load spike on s0, then a hard kill of s1.  The RF=2 ring
# placement leaves every fragment at least one live replica.
SPIKE_SITE, SPIKE_FRACTION, SPIKE_FACTOR = "s0", 0.25, 8.0
KILL_SITE, KILL_FRACTION = "s1", 0.55
POLICY = ReoptPolicy()


def build(optimizer_factory=None, reopt=None):
    """items(k, v) hash-fragmented with RF=2 ring placement over 3 sites."""
    catalog = FederationCatalog(SimClock())
    for name in SITES:
        catalog.make_site(name, congestion_alpha=0.5)
    schema = Schema(
        "items", (Field("k", DataType.STRING), Field("v", DataType.INTEGER))
    )
    total = FRAGMENTS * ROWS_PER_FRAGMENT
    table = Table(schema, [(f"k{i:04d}", i) for i in range(total)])
    placement = [
        [SITES[i % len(SITES)], SITES[(i + 1) % len(SITES)]]
        for i in range(FRAGMENTS)
    ]
    catalog.load_fragmented(table, FRAGMENTS, placement)
    optimizer = optimizer_factory(catalog) if optimizer_factory else None
    engine = FederatedEngine(catalog, optimizer=optimizer, reopt=reopt)
    loop = EventLoop(catalog.clock)
    return catalog, engine, loop


def poisson_arrivals(rng, rate, count):
    times, now = [], 0.0
    for _ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def percentile(values, q):
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def arrival_schedule():
    """One seeded arrival schedule shared by every configuration."""
    _, engine, _ = build()
    service = engine.query(QUERY_MIX[0]).report.response_seconds
    capacity = SLOTS / service
    times = poisson_arrivals(random.Random(SEED), 0.9 * capacity, QUERIES)
    return [
        (when, QUERY_MIX[i % len(QUERY_MIX)]) for i, when in enumerate(times)
    ]


def run_config(arrivals, optimizer_factory=None, reopt=None, disturb=True):
    """Drive one configuration through the shared stream + disturbances."""
    _, engine, loop = build(optimizer_factory, reopt=reopt)
    manager = WorkloadManager(engine, loop, max_in_flight=SLOTS)
    injector = FailureInjector(
        loop, engine.catalog, mttf=1e9, mttr=1e9, rng=random.Random(SEED + 1)
    )
    manager.watch(injector)
    horizon = arrivals[-1][0]
    if disturb:
        injector.slow_at(
            SPIKE_SITE,
            at=SPIKE_FRACTION * horizon,
            duration=horizon,  # the spike outlasts the stream
            factor=SPIKE_FACTOR,
        )
        injector.fail_at(KILL_SITE, at=KILL_FRACTION * horizon)
    handles = []
    for when, sql in arrivals:
        loop.schedule_at(
            when, lambda sql=sql: handles.append(manager.submit(sql))
        )
    while loop.pending():
        loop.run_next()

    errors = sum(1 for h in handles if h.error is not None)
    results = [h.result() for h in handles if h.error is None]
    reports = [r.report for r in results]
    latency = [h.finished_at - h.submitted_at for h in handles]
    return {
        "answers": [sorted(map(tuple, r.table.rows)) for r in results],
        "mean_s": sum(latency) / len(latency),
        "p95_s": percentile(latency, 95),
        "errors": errors,
        "replans": manager.replans,
        "reoptimizations": sum(r.reoptimizations for r in reports),
        "migrated_stages": sum(r.migrated_stages for r in reports),
        "wasted_seconds": sum(r.reopt_wasted_seconds for r in reports),
        "max_reopts_per_query": max(
            (r.reoptimizations for r in reports), default=0
        ),
    }


def test_e16_adaptive_beats_static_under_degradation(benchmark):
    """The tentpole claim: under a mid-stream load spike and a site kill,
    migrating unstarted stages beats riding out the original plan -- for
    both the agoric and the centralized static baselines -- at identical
    answers; and the machinery is inert on an undisturbed cluster."""
    arrivals = arrival_schedule()
    central = lambda catalog: CentralizedOptimizer(  # noqa: E731
        catalog, stats_refresh_interval=300.0
    )

    adaptive = run_config(arrivals, reopt=POLICY)
    static_agoric = run_config(arrivals)
    static_central = run_config(arrivals, optimizer_factory=central)
    undisturbed = run_config(arrivals, reopt=POLICY, disturb=False)

    identical = (
        adaptive["answers"] == static_agoric["answers"]
        == static_central["answers"] == undisturbed["answers"]
    )
    speedup_agoric = static_agoric["mean_s"] / adaptive["mean_s"]
    speedup_central = static_central["mean_s"] / adaptive["mean_s"]

    rows = [
        [name, stats["mean_s"], stats["p95_s"], stats["replans"],
         stats["reoptimizations"], stats["migrated_stages"], stats["errors"]]
        for name, stats in [
            ("adaptive (agoric+reopt)", adaptive),
            ("static agoric", static_agoric),
            ("static centralized", static_central),
            ("adaptive, undisturbed", undisturbed),
        ]
    ]
    report(
        "e16_adaptive_reopt",
        f"E16: {QUERIES} queries, {SPIKE_FACTOR:.0f}x spike on {SPIKE_SITE} "
        f"at {SPIKE_FRACTION:.0%}, {KILL_SITE} killed at {KILL_FRACTION:.0%} "
        f"of the stream ({SLOTS} slots)",
        ["configuration", "mean s", "p95 s", "replans", "re-opts",
         "migrated", "errors"],
        rows,
    )

    def summarize(stats):
        return {
            "mean_s": round(stats["mean_s"], 6),
            "p95_s": round(stats["p95_s"], 6),
            "errors": stats["errors"],
            "replans": stats["replans"],
            "reoptimizations": stats["reoptimizations"],
            "migrated_stages": stats["migrated_stages"],
            "wasted_seconds": round(stats["wasted_seconds"], 6),
        }

    write_json(
        "BENCH_E16",
        {
            "queries": QUERIES,
            "slots": SLOTS,
            "spike": {
                "site": SPIKE_SITE,
                "fraction": SPIKE_FRACTION,
                "factor": SPIKE_FACTOR,
            },
            "kill": {"site": KILL_SITE, "fraction": KILL_FRACTION},
            "policy": {
                "max_attempts": POLICY.max_attempts,
                "congestion_high": POLICY.congestion_high,
                "congestion_low": POLICY.congestion_low,
                "min_improvement": POLICY.min_improvement,
                "max_replans": POLICY.max_replans,
            },
            "identical_results": identical,
            "speedup_vs_static_agoric": round(speedup_agoric, 4),
            "speedup_vs_static_centralized": round(speedup_central, 4),
            "adaptive": summarize(adaptive),
            "static_agoric": summarize(static_agoric),
            "static_centralized": summarize(static_central),
            "undisturbed": summarize(undisturbed),
        },
    )

    # Correctness first: nobody errors, everybody agrees bit for bit.
    assert identical
    for stats in (adaptive, static_agoric, static_central, undisturbed):
        assert stats["errors"] == 0
    # The adaptive run actually adapted -- and within its budget.
    assert adaptive["replans"] > 0
    assert adaptive["reoptimizations"] > 0
    assert adaptive["migrated_stages"] >= 1
    assert adaptive["max_reopts_per_query"] <= POLICY.max_attempts
    # ... and it paid off against both static baselines.
    assert adaptive["mean_s"] < static_agoric["mean_s"]
    assert adaptive["mean_s"] < static_central["mean_s"]
    assert adaptive["p95_s"] < static_agoric["p95_s"]
    # An undisturbed cluster never wakes the machinery.
    assert undisturbed["replans"] == 0
    assert undisturbed["reoptimizations"] == 0

    smoke = arrivals[: max(4, QUERIES // 10)]
    benchmark(lambda: run_config(smoke, reopt=POLICY))

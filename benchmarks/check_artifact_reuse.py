#!/usr/bin/env python3
"""CI gate: stage-artifact reuse must not regress against the committed run.

Usage::

    check_artifact_reuse.py BASELINE.json FRESH.json

Each file is a ``BENCH_E15.json`` produced by ``bench_e15_artifact_reuse.py``.
The fresh file typically comes from a smoke run (``E15_QUERIES`` scaled far
down), so the gate compares *shapes*, not exact numbers:

* **Correctness is scale-free.**  ``identical_results`` must be true and
  the error count exactly zero at any scale -- a reuse run that answers
  differently from its control is wrong, full stop.  Likewise the
  fault-injection scenario must show the subscriber completing with the
  correct answer after its producer was cancelled.
* **Row and byte reductions** may fall at most ``REDUCTION_SLACK``
  (absolute) below the baseline's.  Hit rates approach 1 as the run
  lengthens, so the smoke run's reduction is a little lower; a hashing or
  admission bug sends it toward zero.
* **In-flight sharing** must happen: at least one join in any run.  Hot
  Zipf-head statements overlap even at smoke scale.
* **Invalidation** must fire: every run schedules writes, and each write
  must find live artifacts to drop -- zero invalidations means the
  write-to-store listener came unhooked.

Exits 1 on the first violated bound.
"""

import json
import sys

REDUCTION_SLACK = 0.15  # absolute headroom below baseline reductions


def load(path: str) -> dict:
    with open(path) as f:
        payload = json.load(f)
    for key in ("totals", "sharing", "invalidation", "fault"):
        if key not in payload:
            raise SystemExit(f"{path}: no '{key}' key (full E15 bench not run?)")
    return payload


def main(argv: "list[str]") -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline = load(argv[1])
    fresh = load(argv[2])
    failures = []

    if not fresh.get("identical_results"):
        failures.append("reuse run is not bit-identical to its control")
    if fresh.get("errors", 1) != 0:
        failures.append(f"nonzero error count {fresh.get('errors')}")

    for metric in ("row_reduction", "byte_reduction"):
        bar = baseline["totals"][metric] - REDUCTION_SLACK
        value = fresh["totals"][metric]
        print(f"{metric} {value:.4f} (bar {bar:.4f})")
        if value <= 0:
            failures.append(f"{metric} {value:.4f} is not a saving at all")
        elif value < bar:
            failures.append(
                f"{metric} {value:.4f} below baseline "
                f"{baseline['totals'][metric]:.4f} - {REDUCTION_SLACK}"
            )

    joins = fresh["sharing"]["inflight_joins"]
    print(f"in-flight joins {joins} (bar 1)")
    if joins < 1:
        failures.append("no in-flight stage was ever shared")

    invalidations = fresh["invalidation"]["invalidations"]
    print(f"invalidations {invalidations} (bar 1)")
    if invalidations < 1:
        failures.append("writes invalidated nothing (listener unhooked?)")

    fault = fresh["fault"]
    print(
        f"fault injection: fallbacks {fault['fallbacks']}, "
        f"subscriber correct {fault['subscriber_correct']}"
    )
    if fault["fallbacks"] < 1:
        failures.append("cancelled producer triggered no subscriber fallback")
    if not (fault["subscriber_completed"] and fault["subscriber_correct"]):
        failures.append("fallback subscriber did not complete correctly")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: stage-artifact reuse holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
